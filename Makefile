# Developer entry points.  Everything runs from the repo root with the
# in-tree package (PYTHONPATH=src); no install required.

PYTHON  ?= python
WORKERS ?= 4
ENV      = PYTHONPATH=src

.PHONY: check lint analyze test test-engine test-coding bench bench-baseline \
        profile docs-check sweep-smoke fault-smoke figures examples clean

# The pre-merge gate: lint, the static invariant analyzer, the engine
# differential tests (fail fast on a hot-path regression), then the full
# tier-1 suite.
check: lint analyze test-engine test

# Style/correctness lint: `ruff check` when ruff is installed, the
# repro.analysis style rules (syntax, line length, trailing whitespace,
# unused imports) otherwise.  Configuration lives in pyproject.toml.
lint:
	$(ENV) $(PYTHON) scripts/lint.py

# repro-check: the repo-specific static invariant analyzer (determinism,
# engine parity, config threading, hot-path hygiene, style) plus the
# strict-mypy typed-core gate when mypy is installed.  Rules and
# suppression syntax are catalogued in docs/invariants.md.
analyze:
	$(ENV) $(PYTHON) -m repro.analysis

# Tier-1 verification: the full suite (tests/ + benchmarks/), fail-fast.
test:
	$(ENV) $(PYTHON) -m pytest -x -q

# The engine hot-path gate alone: scheduler unit/property tests plus the
# fast-vs-legacy full-run differential (bit-identical traces).
test-engine:
	$(ENV) $(PYTHON) -m pytest -x -q tests/sim/test_events.py \
		tests/sim/test_engine_differential.py

# The coding/GF gate alone: every buffer engine and elimination kernel
# against the scalar reference (property streams, edge cases, differential
# suites).  The CI coverage job runs the same selection under pytest-cov.
test-coding:
	$(ENV) $(PYTHON) -m pytest -x -q tests/coding tests/gf

# The paper-evaluation benchmarks only (add PYTEST_ARGS=--paper-scale for
# the full 5 MB transfers).
bench:
	$(ENV) $(PYTHON) -m pytest -q benchmarks $(PYTEST_ARGS)

# Re-measure the perf baseline and rewrite BENCH_coding.json (kernel MB/s,
# packets/s per pipeline stage, medium frames/s vectorized-vs-scalar,
# wall-clock per protocol).  Not part of tier-1; run before/after perf work
# to quantify the change.
bench-baseline:
	$(ENV) $(PYTHON) scripts/bench_baseline.py

# cProfile one preset flow and print the hot spots (PROFILE_ARGS passes
# --preset/--protocol/--engine/--top through to scripts/profile_run.py).
profile:
	$(ENV) $(PYTHON) scripts/profile_run.py $(PROFILE_ARGS)

# Every repro.* name referenced in README.md and docs/ must resolve.
docs-check:
	$(ENV) $(PYTHON) scripts/docs_check.py README.md docs/paper-map.md \
		docs/scenarios.md docs/performance.md docs/invariants.md \
		docs/sweeps.md docs/faults.md

# End-to-end sweep-service smoke: a multi-worker CLI sweep SIGKILLed
# mid-flight must resume computing only the missing cells and aggregate
# bit-identically to an uninterrupted run.
sweep-smoke:
	$(ENV) $(PYTHON) scripts/sweep_smoke.py

# End-to-end fault-injection smoke through the real CLI: all-relays-crashed
# runs abort with structured reasons (never hang), the monitor's stall
# diagnosis is loud, and crash/recover sweeps stay parallel == serial.
fault-smoke:
	$(ENV) $(PYTHON) scripts/fault_smoke.py

# Run (and cache under results/) every paper-figure scenario preset.
figures:
	$(ENV) $(PYTHON) -m repro sweep --preset fig_4_2 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro sweep --preset fig_4_4 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro sweep --preset fig_4_5 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro sweep --preset fig_4_6 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro sweep --preset fig_4_7 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro sweep --preset fig_5_1 --workers $(WORKERS)
	$(ENV) $(PYTHON) -m repro report

# The narrated walk-throughs.
examples:
	$(ENV) $(PYTHON) examples/quickstart.py
	$(ENV) $(PYTHON) examples/metric_analysis.py
	$(ENV) $(PYTHON) examples/testbed_throughput.py
	$(ENV) $(PYTHON) examples/multi_flow.py

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
