#!/usr/bin/env python3
"""Concurrent flows: how opportunistic routing behaves under contention.

Reproduces the Figure 4-5 experiment at example scale: 1 to 4 concurrent
flows between random node pairs, per-flow average throughput for MORE, ExOR
and Srcr.  The take-away from the paper holds here: opportunistic routing
exploits receptions but does not create capacity, so all protocols lose
per-flow throughput as flows are added and the gaps narrow.

Run:  python examples/multi_flow.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import RunConfig, default_testbed, multiflow_sets, run_flows


def main() -> None:
    testbed = default_testbed()
    config = RunConfig(total_packets=64, batch_size=32, packet_size=1500, seed=3)
    protocols = ("MORE", "ExOR", "Srcr")

    # One base set of 4 flows per run; the 1..4-flow points use its prefixes
    # so the series is comparable across flow counts.
    base_sets = multiflow_sets(testbed, 4, set_count=2, seed=31)
    print(f"{'flows':<6}" + "".join(f"{name:>10}" for name in protocols))
    for flow_count in range(1, 5):
        averages = []
        flow_sets = [base[:flow_count] for base in base_sets]
        for protocol in protocols:
            throughputs = []
            for pairs in flow_sets:
                results = run_flows(testbed, protocol, pairs, config=config)
                throughputs.extend(r.throughput_pkts for r in results)
            averages.append(float(np.mean(throughputs)))
        print(f"{flow_count:<6}" + "".join(f"{value:10.1f}" for value in averages))

    print("\nPer-flow throughput (pkt/s) drops for every protocol as flows are "
          "added; MORE keeps its edge but the margins shrink, exactly as in "
          "Figure 4-5 of the paper.")


if __name__ == "__main__":
    main()
