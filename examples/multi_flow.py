#!/usr/bin/env python3
"""Concurrent flows: how opportunistic routing behaves under contention.

Reproduces the Figure 4-5 experiment at example scale by sweeping the
``fig_4_5`` preset's ``workload.flow_count`` axis through the parallel
sweep runner — each flow-count cell is an independent simulation, so the
cells fan across worker processes and still match a serial run bit for bit.

Run:  python examples/multi_flow.py [workers]
"""

from __future__ import annotations

import sys

from repro.experiments.parallel import run_sweep
from repro.scenarios import get_preset


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    spec = get_preset("fig_4_5").with_overrides({
        "workload.set_count": 2,
        "workload.seed": 31,  # the pair draw this example has always used
        "run.total_packets": 64,
    })
    result = run_sweep(spec, workers=workers, results_dir=None)

    protocols = spec.protocols
    print(f"{'flows':<6}" + "".join(f"{name:>10}" for name in protocols))
    for cell in result.cells:
        flow_count = cell.axes["workload.flow_count"]
        means = [cell.summary[f"{protocol}_mean"] for protocol in protocols]
        print(f"{flow_count:<6}" + "".join(f"{value:10.1f}" for value in means))

    print(f"\n({len(result.cells)} cells in {result.elapsed:.1f}s on "
          f"{result.workers} workers)")
    print("Per-flow throughput (pkt/s) drops for every protocol as flows are "
          "added and the protocol gaps collapse: opportunistic routing "
          "exploits receptions but does not create capacity, exactly the "
          "Figure 4-5 take-away.\n"
          "Same sweep, from the shell:  python -m repro sweep --preset fig_4_5")


if __name__ == "__main__":
    main()
