#!/usr/bin/env python3
"""Quickstart: send a file over a lossy mesh with MORE and verify it arrives.

This walks through the whole public API in one sitting:

1. build a small lossy topology (the paper's Figure 1-1 relay scenario,
   extended to a 3-hop chain with weak "skip" links);
2. inspect the routing metrics a MORE source computes (ETX distances, the
   forwarder list, TX credits from Algorithm 1 / Eq. 3.3);
3. run the discrete-event 802.11 simulator with a MORE flow carrying a real
   file and check bit-exact delivery;
4. compare against the Srcr (best-path) and ExOR baselines through the
   declarative scenario layer (the same path as ``python -m repro run``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.metrics import etx_to_destination, eotx_dijkstra, forwarding_plan
from repro.protocols.more import setup_more_flow
from repro.scenarios import get_preset, run_cell
from repro.sim import SimConfig, Simulator
from repro.topology import chain


def main() -> None:
    # 1. A 3-hop chain with 70% links plus weak 20% skip links: lossy enough
    #    that opportunistic receptions matter.
    topology = chain(3, link_delivery=0.7, skip_delivery=0.2)
    source, destination = 0, 3
    print("topology:", topology)

    # 2. Routing metrics: ETX (what Srcr minimises), EOTX (the Chapter 5
    #    optimum) and the MORE forwarding plan.
    etx = etx_to_destination(topology, destination)
    eotx = eotx_dijkstra(topology, destination)
    print(f"ETX  of the source: {etx[source]:.2f} transmissions/packet")
    print(f"EOTX of the source: {eotx[source]:.2f} transmissions/packet (optimal)")

    plan = forwarding_plan(topology, source, destination)
    print("MORE forwarder list (closest to destination first):",
          plan.forwarder_list())
    for node in plan.participants:
        print(f"  node {node}: expected transmissions/packet z={plan.z[node]:.2f} "
              f"TX credit={plan.tx_credit[node]:.2f}")

    # 3. Transfer a real file with MORE and verify integrity end to end.
    payload = np.random.default_rng(7).integers(0, 256, 64 * 256, dtype=np.uint8).tobytes()
    sim = Simulator(topology, SimConfig(seed=1))
    flow = setup_more_flow(sim, topology, source, destination,
                           file_bytes=payload, batch_size=16, packet_size=256)
    sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)
    record = sim.stats.flows[flow.flow_id]
    intact = flow.decoded_bytes()[: len(payload)] == payload
    print(f"\nMORE transfer: {record.delivered_packets} packets in "
          f"{record.duration:.2f}s -> {record.throughput_pkts():.1f} pkt/s, "
          f"file intact: {intact}")
    per_packet = sim.stats.total_data_transmissions() / record.total_packets
    print(f"data transmissions used: {sim.stats.total_data_transmissions()} "
          f"({per_packet:.2f} per packet)")

    # 4. The same transfer under the baselines, as a declarative scenario:
    #    the chain_smoke preset describes this exact chain + flow, and one
    #    cell of it runs all three protocols.
    spec = get_preset("chain_smoke")
    spec.run.update({"total_packets": 64, "batch_size": 16})
    cell_result = run_cell(spec.expand()[0])
    for protocol, values in cell_result.series.items():
        print(f"{protocol:<5} throughput: {values[0]:7.1f} pkt/s")
    print("(same experiment from the shell: python -m repro run --preset chain_smoke)")


if __name__ == "__main__":
    main()
