#!/usr/bin/env python3
"""Chapter 5 analysis: EOTX vs ETX, the min-cost flow LP and the ordering gap.

This example exercises the theory layer of the library without running the
packet-level simulator:

* computes ETX and EOTX for every node of the testbed toward one gateway and
  shows where opportunism saves transmissions;
* verifies Proposition 4 (EOTX equals the LP optimum) on a small mesh;
* reproduces the Figure 5-1 unbounded-gap construction and the Section 5.7
  conclusion that the gap is negligible on a real topology.

Run:  python examples/metric_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import random_pairs
from repro.metrics import (
    cost_gap,
    eotx_dijkstra,
    etx_to_destination,
    figure_5_1_gap,
    gap_survey,
    solve_min_cost_flow,
    summarize_gaps,
)
from repro.scenarios import build_topology, get_preset
from repro.topology import cost_gap_topology, random_mesh


def main() -> None:
    # The Chapter 4 testbed, resolved from the scenario preset registry.
    testbed = build_topology(get_preset("fig_4_2").topology)
    gateway = 0

    print("=== ETX vs EOTX toward node 0 (the gateway) ===")
    etx = etx_to_destination(testbed, gateway)
    eotx = eotx_dijkstra(testbed, gateway)
    print(f"{'node':>4} {'ETX':>8} {'EOTX':>8} {'saving':>8}")
    for node in range(testbed.node_count):
        if node == gateway or not np.isfinite(etx[node]):
            continue
        saving = (1 - eotx[node] / etx[node]) * 100
        print(f"{node:>4} {etx[node]:8.2f} {eotx[node]:8.2f} {saving:7.1f}%")

    print("\n=== Proposition 4: EOTX equals the min-cost flow LP optimum ===")
    mesh = random_mesh(7, density=0.6, seed=4)
    lp = solve_min_cost_flow(mesh, source=6, destination=0, prefix_constraints_only=True)
    eotx_mesh = eotx_dijkstra(mesh, 0)
    print(f"LP optimum: {lp.total_cost:.6f}   EOTX(source): {eotx_mesh[6]:.6f}")

    print("\n=== Figure 5-1: the unbounded ETX-vs-EOTX ordering gap ===")
    for p in (0.3, 0.1, 0.05, 0.02):
        topo = cost_gap_topology(bridge_delivery=max(p, 0.06), branch_count=8)
        result = cost_gap(topo, 0, topo.node_count - 1)
        print(f"  bridge delivery {p:5.2f}: measured gap {result.gap:5.2f} "
              f"(paper closed form {figure_5_1_gap(max(p, 0.06), 8):5.2f})")

    print("\n=== Section 5.7: the gap on the testbed is marginal ===")
    pairs = random_pairs(testbed, 30, seed=5)
    summary = summarize_gaps(gap_survey(testbed, pairs))
    print(f"  flows unaffected by the ordering: {summary['fraction_unaffected'] * 100:.0f}%")
    print(f"  median gap among affected flows:  {summary['median_gap_affected'] * 100:.2f}%")
    print(f"  worst observed gap:               {(summary['max_gap'] - 1) * 100:.1f}%")


if __name__ == "__main__":
    main()
