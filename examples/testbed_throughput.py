#!/usr/bin/env python3
"""Testbed throughput comparison: the paper's headline experiment (Fig 4-2).

Builds the synthetic 20-node / 3-floor indoor testbed, picks random
source-destination pairs, transfers a file between each pair under MORE,
ExOR and Srcr, and prints the throughput distribution plus the median-gain
figures the paper quotes (MORE ~1.2x over ExOR, ~1.95x over Srcr, with the
largest gains on challenged flows).

Run:  python examples/testbed_throughput.py [pair_count]
"""

from __future__ import annotations

import sys

from repro.experiments import RunConfig, default_testbed, figure_4_2, figure_4_4


def main() -> None:
    pair_count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    testbed = default_testbed()
    config = RunConfig(total_packets=96, batch_size=32, packet_size=1500, seed=1)

    print(f"=== Figure 4-2: unicast throughput over {pair_count} random pairs ===")
    result = figure_4_2(testbed, pair_count=pair_count, seed=1, config=config)
    print(result.report)

    print("\n=== Figure 4-4: 4-hop flows with spatial reuse ===")
    reuse = figure_4_4(testbed, pair_count=max(4, pair_count // 2), seed=2, config=config)
    print(reuse.report)

    print("\nInterpretation: MORE and ExOR beat best-path routing because they "
          "exploit every fortunate reception; MORE additionally beats ExOR "
          "because it needs no transmission schedule and can therefore use "
          "spatial reuse, which the 4-hop experiment isolates.")


if __name__ == "__main__":
    main()
