#!/usr/bin/env python3
"""Testbed throughput comparison: the paper's headline experiment (Fig 4-2).

Runs the ``fig_4_2`` and ``fig_4_4`` scenario presets through the scenario
layer — the same path the ``python -m repro`` CLI takes — instead of
hand-building topology, pairs and config.  Overrides show how any preset
knob (here the pair count) is one dotted-path assignment away.

Run:  python examples/testbed_throughput.py [pair_count] [workers]
"""

from __future__ import annotations

import sys

from repro.experiments.parallel import run_scenario
from repro.scenarios import get_preset


def main() -> None:
    pair_count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(f"=== Figure 4-2: unicast throughput over {pair_count} random pairs ===")
    fig_4_2 = get_preset("fig_4_2").with_overrides({"workload.count": pair_count})
    result = run_scenario(fig_4_2, workers=workers, results_dir=None)
    print(result.report())

    print("\n=== Figure 4-4: 4-hop flows with spatial reuse ===")
    fig_4_4 = get_preset("fig_4_4").with_overrides(
        {"workload.count": max(4, pair_count // 2)})
    reuse = run_scenario(fig_4_4, workers=workers, results_dir=None)
    print(reuse.report())

    print("\nInterpretation: MORE and ExOR beat best-path routing because they "
          "exploit every fortunate reception; MORE additionally beats ExOR "
          "because it needs no transmission schedule and can therefore use "
          "spatial reuse, which the 4-hop experiment isolates.\n"
          "The same runs, from the shell:  python -m repro run --preset fig_4_2")


if __name__ == "__main__":
    main()
