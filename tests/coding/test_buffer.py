"""Tests for the row-echelon batch buffer (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.buffer import BatchBuffer
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import CodedPacket, make_batch
from repro.gf.matrix import rank


def coded(vector, payload=None, k=None):
    k = k if k is not None else len(vector)
    payload = payload if payload is not None else np.zeros(4, dtype=np.uint8)
    return CodedPacket(code_vector=np.asarray(vector, dtype=np.uint8), payload=payload)


class TestInnovationCheck:
    def test_first_packet_is_innovative(self):
        buffer = BatchBuffer(4, 4)
        assert buffer.add(coded([1, 2, 3, 4])) is True
        assert buffer.rank == 1

    def test_duplicate_is_not_innovative(self):
        buffer = BatchBuffer(4, 4)
        packet = coded([1, 2, 3, 4])
        assert buffer.add(packet)
        assert buffer.add(packet.copy()) is False
        assert buffer.rank == 1

    def test_scaled_copy_is_not_innovative(self):
        buffer = BatchBuffer(3, 4)
        buffer.add(coded([2, 4, 6]))
        # 3 * (2,4,6) in GF(2^8) is linearly dependent on the first row.
        from repro.gf.arithmetic import vec_scale
        scaled = vec_scale(np.array([2, 4, 6], dtype=np.uint8), 3)
        assert buffer.add(coded(scaled)) is False

    def test_zero_vector_is_never_innovative(self):
        buffer = BatchBuffer(4, 4)
        assert buffer.add(coded([0, 0, 0, 0])) is False
        assert buffer.rank == 0
        assert buffer.received == 1
        assert buffer.innovative == 0

    def test_rank_bounded_by_batch_size(self, rng):
        buffer = BatchBuffer(5, 8)
        for _ in range(50):
            vector = rng.integers(0, 256, 5, dtype=np.uint8)
            payload = rng.integers(0, 256, 8, dtype=np.uint8)
            buffer.add(coded(vector, payload))
        assert buffer.rank <= 5
        assert buffer.is_full

    def test_is_innovative_does_not_mutate(self):
        buffer = BatchBuffer(3, 4)
        buffer.add(coded([1, 0, 0]))
        probe = np.array([0, 1, 0], dtype=np.uint8)
        assert buffer.is_innovative(probe)
        assert buffer.rank == 1
        buffer.add(coded([0, 1, 0]))
        assert not buffer.is_innovative(np.array([1, 1, 0], dtype=np.uint8))

    def test_mismatched_vector_length_rejected(self):
        buffer = BatchBuffer(4, 4)
        with pytest.raises(ValueError):
            buffer.add(coded([1, 2, 3]))

    def test_mismatched_payload_length_rejected(self):
        buffer = BatchBuffer(3, 4)
        with pytest.raises(ValueError):
            buffer.add(coded([1, 2, 3], payload=np.zeros(5, dtype=np.uint8)))


class TestEchelonStructure:
    def test_stored_matrix_rank_equals_reported_rank(self, rng):
        buffer = BatchBuffer(6, 4)
        for _ in range(4):
            buffer.add(coded(rng.integers(0, 256, 6, dtype=np.uint8)))
        stored = buffer.coefficient_matrix()
        assert rank(stored) == buffer.rank

    def test_occupied_pivots_sorted(self, rng):
        buffer = BatchBuffer(6, 4)
        for _ in range(3):
            buffer.add(coded(rng.integers(0, 256, 6, dtype=np.uint8)))
        pivots = buffer.occupied_pivots()
        assert pivots == sorted(pivots)
        assert len(pivots) == buffer.rank

    def test_full_rank_buffer_holds_identity(self, rng):
        batch = make_batch(batch_size=5, packet_size=12, rng=rng)
        encoder = SourceEncoder(batch, rng)
        buffer = BatchBuffer(5, 12)
        while not buffer.is_full:
            buffer.add(encoder.next_packet())
        assert np.array_equal(buffer.coefficient_matrix(), np.eye(5, dtype=np.uint8))

    def test_clear(self, rng):
        buffer = BatchBuffer(4, 4)
        buffer.add(coded(rng.integers(0, 256, 4, dtype=np.uint8)))
        buffer.clear()
        assert buffer.rank == 0
        assert buffer.stored_packets() == []


class TestDecodeViaBuffer:
    def test_decode_recovers_native_payloads(self, rng):
        batch = make_batch(batch_size=6, packet_size=50, rng=rng)
        encoder = SourceEncoder(batch, rng)
        buffer = BatchBuffer(6, 50)
        while not buffer.is_full:
            buffer.add(encoder.next_packet())
        decoded = buffer.decode()
        assert np.array_equal(decoded, batch.payload_matrix())

    def test_decode_before_full_raises(self):
        buffer = BatchBuffer(3, 4)
        buffer.add(coded([1, 0, 0]))
        with pytest.raises(RuntimeError):
            buffer.decode()

    def test_payload_free_buffer_cannot_decode(self):
        buffer = BatchBuffer(2, 4, track_payloads=False)
        buffer.add(coded([1, 0]))
        buffer.add(coded([0, 1]))
        with pytest.raises(RuntimeError):
            buffer.decode()


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_property_rank_matches_gaussian_elimination(batch_size, seed):
    """The buffer's incremental rank always equals batch Gaussian elimination."""
    rng = np.random.default_rng(seed)
    buffer = BatchBuffer(batch_size, 1)
    vectors = []
    for _ in range(batch_size + 3):
        vector = rng.integers(0, 256, batch_size, dtype=np.uint8)
        vectors.append(vector)
        buffer.add(CodedPacket(code_vector=vector, payload=np.zeros(1, dtype=np.uint8)))
    assert buffer.rank == rank(np.stack(vectors))


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_property_innovative_count_never_exceeds_k(batch_size, seed):
    """No matter what arrives, at most K packets are ever admitted (Section 3.2.3a)."""
    rng = np.random.default_rng(seed)
    buffer = BatchBuffer(batch_size, 1)
    admitted = 0
    for _ in range(3 * batch_size):
        vector = rng.integers(0, 2, batch_size, dtype=np.uint8) * rng.integers(0, 256)
        if buffer.add(CodedPacket(code_vector=vector, payload=np.zeros(1, dtype=np.uint8))):
            admitted += 1
    assert admitted == buffer.rank <= batch_size
