"""Differential tests: the vectorized coding engine vs the scalar path.

The production encoders and :class:`~repro.coding.buffer.BatchBuffer` run on
the kernels in :mod:`repro.gf.kernels`.  These tests re-implement the
pre-vectorization scalar algorithms (K-iteration ``scale_and_add`` loops,
row-by-row Gauss–Jordan) and drive both implementations with identical
inputs across K in {8, 16, 32}, packet sizes {0, 1, 1500} and several
seeds, asserting bit-identical behaviour end to end: the same coded
packets, the same per-arrival innovative verdicts and rank trajectory, and
the same decoded payloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.buffer import BatchBuffer
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import CodedPacket, make_batch
from repro.gf.arithmetic import random_code_vector, scale_and_add, vec_scale
from repro.gf.tables import INV

BATCH_SIZES = (8, 16, 32)
PACKET_SIZES = (0, 1, 1500)
SEEDS = (0, 1, 17)


class ScalarBatchBuffer:
    """The pre-vectorization BatchBuffer: per-row Python-loop Gauss–Jordan."""

    def __init__(self, batch_size: int, packet_size: int) -> None:
        self.batch_size = batch_size
        self.packet_size = packet_size
        self._vectors: list[np.ndarray | None] = [None] * batch_size
        self._payloads: list[np.ndarray | None] = [None] * batch_size
        self.rank = 0

    def add(self, packet: CodedPacket) -> bool:
        vector = packet.code_vector.copy()
        payload = packet.payload.copy()
        for column in range(self.batch_size):
            existing = self._vectors[column]
            if existing is None:
                continue
            coefficient = int(vector[column])
            if coefficient == 0:
                continue
            scale_and_add(vector, existing, coefficient)
            scale_and_add(payload, self._payloads[column], coefficient)
        pivot_columns = np.nonzero(vector)[0]
        if pivot_columns.size == 0:
            return False
        column = int(pivot_columns[0])
        inverse = int(INV[int(vector[column])])
        vector = vec_scale(vector, inverse)
        payload = vec_scale(payload, inverse)
        for other in range(self.batch_size):
            other_vector = self._vectors[other]
            if other == column or other_vector is None:
                continue
            factor = int(other_vector[column])
            if factor:
                scale_and_add(other_vector, vector, factor)
                scale_and_add(self._payloads[other], payload, factor)
        self._vectors[column] = vector
        self._payloads[column] = payload
        self.rank += 1
        return True

    def coefficient_matrix(self) -> np.ndarray:
        rows = [v for v in self._vectors if v is not None]
        if not rows:
            return np.zeros((0, self.batch_size), dtype=np.uint8)
        return np.stack(rows)

    def payload_matrix(self) -> np.ndarray:
        rows = [p for p in self._payloads if p is not None]
        if not rows:
            return np.zeros((0, self.packet_size), dtype=np.uint8)
        return np.stack(rows)


def scalar_source_packets(payloads: np.ndarray, rng: np.random.Generator,
                          count: int) -> list[CodedPacket]:
    """The pre-vectorization SourceEncoder loop, drawing like the real one."""
    packets = []
    for _ in range(count):
        coefficients = random_code_vector(payloads.shape[0], rng)
        payload = np.zeros(payloads.shape[1], dtype=np.uint8)
        for index, coefficient in enumerate(coefficients):
            scale_and_add(payload, payloads[index], int(coefficient))
        packets.append(CodedPacket(code_vector=coefficients, payload=payload))
    return packets


def _mixed_packet_stream(batch_size: int, packet_size: int,
                         seed: int) -> list[CodedPacket]:
    """Coded packets with duplicates, scalings and zero vectors mixed in."""
    rng = np.random.default_rng(seed)
    batch = make_batch(batch_size=batch_size, packet_size=packet_size, rng=rng)
    fresh = scalar_source_packets(batch.payload_matrix(), rng,
                                  batch_size + 4)
    stream: list[CodedPacket] = []
    for index, packet in enumerate(fresh):
        stream.append(packet)
        if index % 3 == 0:
            stream.append(packet.copy())  # exact duplicate: never innovative
        if index % 4 == 0:
            factor = int(rng.integers(1, 256))
            stream.append(CodedPacket(
                code_vector=vec_scale(packet.code_vector, factor),
                payload=vec_scale(packet.payload, factor)))  # dependent
    stream.append(CodedPacket(code_vector=np.zeros(batch_size, dtype=np.uint8),
                              payload=np.zeros(packet_size, dtype=np.uint8)))
    return stream


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("packet_size", PACKET_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_source_encoder_bit_identical_to_scalar(batch_size, packet_size, seed):
    """Batched and scalar encoding produce byte-for-byte identical packets."""
    batch = make_batch(batch_size=batch_size, packet_size=packet_size,
                       rng=np.random.default_rng(seed))
    encoder = SourceEncoder(batch, np.random.default_rng(seed + 1000))
    reference_rng = np.random.default_rng(seed + 1000)

    batched = encoder.next_packets(batch_size + 3)
    reference = scalar_source_packets(batch.payload_matrix(), reference_rng,
                                      batch_size + 3)
    for new, old in zip(batched, reference):
        assert np.array_equal(new.code_vector, old.code_vector)
        assert np.array_equal(new.payload, old.payload)

    # Interleaving single-packet calls continues the identical stream.
    single = encoder.next_packet()
    old = scalar_source_packets(batch.payload_matrix(), reference_rng, 1)[0]
    assert np.array_equal(single.code_vector, old.code_vector)
    assert np.array_equal(single.payload, old.payload)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("packet_size", PACKET_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_buffer_trajectory_bit_identical_to_scalar(batch_size, packet_size, seed):
    """Vectorized and scalar buffers agree on every verdict, rank and byte."""
    stream = _mixed_packet_stream(batch_size, packet_size, seed)
    vectorized = BatchBuffer(batch_size, packet_size)
    scalar = ScalarBatchBuffer(batch_size, packet_size)
    for packet in stream:
        expected = scalar.add(packet.copy())
        # The dry-run check must agree with the insertion verdict.
        assert vectorized.is_innovative(packet.code_vector) == expected
        assert vectorized.add(packet.copy()) == expected
        assert vectorized.rank == scalar.rank
        assert np.array_equal(vectorized.coefficient_matrix(),
                              scalar.coefficient_matrix())
        assert np.array_equal(vectorized.payload_matrix(),
                              scalar.payload_matrix())


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_decode_recovers_natives_for_all_sizes(batch_size, seed):
    """Full-rank decode returns the native payloads for every packet size."""
    for packet_size in PACKET_SIZES:
        rng = np.random.default_rng(seed)
        batch = make_batch(batch_size=batch_size, packet_size=packet_size, rng=rng)
        encoder = SourceEncoder(batch, rng)
        buffer = BatchBuffer(batch_size, packet_size)
        attempts = 0
        while not buffer.is_full:
            buffer.add(encoder.next_packet())
            attempts += 1
            assert attempts < 20 * batch_size + 50
        decoded = buffer.decode()
        assert decoded.shape == (batch_size, packet_size)
        assert np.array_equal(decoded, batch.payload_matrix())
