"""Property-based differential tests of the coding-buffer engines.

The insertion engines of :class:`repro.coding.buffer.BatchBuffer` —
``vectorized`` (deferred transform, any elimination kernel), ``eager``
(the PR 2–4 fast path) and ``scalar`` (the reference) — implement the same
incremental Gauss–Jordan over GF(2^8), which is exact arithmetic: every
engine must agree **bit for bit** on every observable at every step, not
merely converge to the same decode.

The harness replays ≥200 deterministic seeded-random insertion streams
(8 parametrized groups x 25 seeds) through one buffer per engine/kernel
configuration in lockstep.  Streams are drawn adversarially: batch sizes
down to K=1, payload widths including S=0 and S=1, rank-deficient streams
confined to a random d-dimensional subspace (d < K never reaches full
rank), duplicate re-insertions of earlier packets, linear combinations of
earlier packets (non-innovative but non-zero) and all-zero code vectors.
Payloads are always consistent codewords of one ground-truth native set,
so full-rank streams additionally check ``decode()`` against the natives
— the end-to-end correctness anchor.

Asserted per insertion: the innovative verdict.  Asserted per stream:
rank, received/innovative counters, the reduced coefficient matrix, the
payload matrix and (at full rank) the decoded natives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.buffer import BatchBuffer
from repro.coding.packet import CodedPacket
from repro.gf.kernels import gf_vecmat_reference

#: (engine, kernel) configurations differentially tested against "scalar".
CONFIGURATIONS = (
    ("vectorized", "mul"),
    ("vectorized", "nibble"),
    ("vectorized", "logexp"),
    ("eager", "mul"),
)

GROUPS = 8
SEEDS_PER_GROUP = 25  # 8 x 25 = 200 cases per run


def _make_stream(rng: np.random.Generator):
    """One adversarial insertion stream with consistent codeword payloads.

    Returns ``(batch_size, packet_size, natives, packets)`` where every
    packet's payload equals ``code_vector @ natives`` and the code vectors
    span a random d-dimensional subspace (d <= K).
    """
    batch_size = int(rng.choice([1, 2, 3, 8, 16, 32]))
    packet_size = int(rng.choice([0, 1, 17]))
    natives = rng.integers(0, 256, size=(batch_size, packet_size), dtype=np.uint8)
    dimension = int(rng.integers(1, batch_size + 1))
    basis = rng.integers(0, 256, size=(dimension, batch_size), dtype=np.uint8)

    packets: list[CodedPacket] = []
    length = dimension + int(rng.integers(2, 7))
    while len(packets) < length:
        kind = rng.random()
        if kind < 0.1 and packets:
            # Exact duplicate of an earlier packet (already-seen row).
            earlier = packets[int(rng.integers(0, len(packets)))]
            packets.append(CodedPacket(code_vector=earlier.code_vector,
                                       payload=earlier.payload))
            continue
        if kind < 0.2 and len(packets) >= 2:
            # GF-sum of two earlier packets: non-zero yet non-innovative.
            first = packets[int(rng.integers(0, len(packets)))]
            second = packets[int(rng.integers(0, len(packets)))]
            vector = first.code_vector ^ second.code_vector
            payload = first.payload ^ second.payload
            packets.append(CodedPacket(code_vector=vector, payload=payload))
            continue
        if kind < 0.3:
            coefficients = np.zeros(dimension, dtype=np.uint8)  # zero vector
        else:
            coefficients = rng.integers(0, 256, size=dimension, dtype=np.uint8)
        vector = gf_vecmat_reference(coefficients, basis)
        payload = gf_vecmat_reference(vector, natives)
        packets.append(CodedPacket(code_vector=vector, payload=payload))
    return batch_size, packet_size, natives, packets


def _run_stream(buffer: BatchBuffer, packets) -> list[bool]:
    return [buffer.add(packet) for packet in packets]


@pytest.mark.parametrize("group", range(GROUPS))
def test_engines_bit_identical_on_seeded_random_streams(group):
    for index in range(SEEDS_PER_GROUP):
        rng = np.random.default_rng((4100, group, index))
        batch_size, packet_size, natives, packets = _make_stream(rng)

        reference = BatchBuffer(batch_size=batch_size, packet_size=packet_size,
                                engine="scalar")
        expected_verdicts = _run_stream(reference, packets)

        for engine, kernel in CONFIGURATIONS:
            buffer = BatchBuffer(batch_size=batch_size, packet_size=packet_size,
                                 engine=engine, kernel=kernel)
            verdicts = _run_stream(buffer, packets)
            label = f"{engine}/{kernel} seed (4100, {group}, {index})"
            assert verdicts == expected_verdicts, label
            assert buffer.rank == reference.rank, label
            assert buffer.received == reference.received, label
            assert buffer.innovative == reference.innovative, label
            assert buffer.is_full == reference.is_full, label
            np.testing.assert_array_equal(
                buffer.coefficient_matrix(), reference.coefficient_matrix(),
                err_msg=f"coefficient matrix diverged: {label}")
            np.testing.assert_array_equal(
                buffer.payload_matrix(), reference.payload_matrix(),
                err_msg=f"payload matrix diverged: {label}")
            if buffer.is_full:
                decoded = buffer.decode()
                np.testing.assert_array_equal(
                    decoded, reference.decode(),
                    err_msg=f"decode diverged: {label}")
                np.testing.assert_array_equal(
                    decoded, natives,
                    err_msg=f"decode != ground-truth natives: {label}")


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_vector_only_engines_track_identical_rank(engine, kernel):
    """track_payloads=False streams: rank trajectories match the reference."""
    for seed in range(12):
        rng = np.random.default_rng((4200, seed))
        batch_size, _, _, packets = _make_stream(rng)
        reference = BatchBuffer(batch_size=batch_size, packet_size=0,
                                track_payloads=False, engine="scalar")
        buffer = BatchBuffer(batch_size=batch_size, packet_size=0,
                             track_payloads=False, engine=engine, kernel=kernel)
        stripped = [CodedPacket(code_vector=p.code_vector,
                                payload=np.zeros(0, dtype=np.uint8))
                    for p in packets]
        assert _run_stream(buffer, stripped) == _run_stream(reference, stripped)
        assert buffer.rank == reference.rank
        np.testing.assert_array_equal(buffer.coefficient_matrix(),
                                      reference.coefficient_matrix())


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_clear_resets_state_identically(engine, kernel):
    """After clear(), a second stream behaves exactly like a fresh buffer."""
    rng = np.random.default_rng(4300)
    batch_size, packet_size, _, first = _make_stream(rng)
    while True:
        batch_size2, packet_size2, _, second = _make_stream(rng)
        if (batch_size2, packet_size2) == (batch_size, packet_size):
            break
    recycled = BatchBuffer(batch_size=batch_size, packet_size=packet_size,
                           engine=engine, kernel=kernel)
    _run_stream(recycled, first)
    recycled.clear()
    fresh = BatchBuffer(batch_size=batch_size, packet_size=packet_size,
                        engine=engine, kernel=kernel)
    assert _run_stream(recycled, second) == _run_stream(fresh, second)
    assert recycled.rank == fresh.rank
    np.testing.assert_array_equal(recycled.coefficient_matrix(),
                                  fresh.coefficient_matrix())
    np.testing.assert_array_equal(recycled.payload_matrix(),
                                  fresh.payload_matrix())
    # Cumulative counters survive clear() — they count the buffer lifetime.
    assert recycled.received == len(first) + len(second)
