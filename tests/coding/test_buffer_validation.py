"""Constructor and input validation of the coding buffer, per engine.

The property/differential suites drive well-formed streams; these tests
pin the rejection paths — bad constructor arguments, mismatched operand
shapes, payload access on payload-free buffers — which every engine must
refuse identically (same exception type, before any state mutation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.buffer import ENGINES, BatchBuffer
from repro.coding.packet import CodedPacket

K = 8
S = 16


def _packet(vector_bytes, payload_size=S):
    vector = np.zeros(K, dtype=np.uint8)
    for index, value in vector_bytes.items():
        vector[index] = value
    return CodedPacket(code_vector=vector,
                       payload=np.arange(payload_size, dtype=np.uint8))


def test_engine_roster_is_the_documented_one():
    assert ENGINES == ("vectorized", "eager", "scalar")


def test_batch_size_must_be_positive():
    with pytest.raises(ValueError, match="batch_size"):
        BatchBuffer(batch_size=0, packet_size=S)


def test_packet_size_must_be_non_negative():
    with pytest.raises(ValueError, match="packet_size"):
        BatchBuffer(batch_size=K, packet_size=-1)


def test_unknown_engine_is_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        BatchBuffer(batch_size=K, packet_size=S, engine="gpu")


def test_unknown_kernel_is_rejected():
    with pytest.raises(ValueError, match="unknown"):
        BatchBuffer(batch_size=K, packet_size=S, kernel="simd")


def test_explicit_engine_overrides_fast_flag():
    assert BatchBuffer(K, S, fast=False, engine="vectorized").engine == "vectorized"
    assert BatchBuffer(K, S, fast=True, engine="scalar").engine == "scalar"
    assert BatchBuffer(K, S, fast=True).engine == "vectorized"
    assert BatchBuffer(K, S, fast=False).engine == "scalar"


@pytest.mark.parametrize("engine", ENGINES)
def test_mismatched_payload_length_is_rejected(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=S, engine=engine)
    bad = _packet({0: 1}, payload_size=S + 3)
    with pytest.raises(ValueError, match="payload length"):
        buffer.add(bad)
    assert buffer.rank == 0  # rejected before any state mutation


@pytest.mark.parametrize("engine", ENGINES)
def test_payload_matrix_requires_payload_tracking(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=0, track_payloads=False,
                         engine=engine)
    with pytest.raises(RuntimeError, match="without payload tracking"):
        buffer.payload_matrix()
    with pytest.raises(RuntimeError):
        buffer.decode()


@pytest.mark.parametrize("engine", ENGINES)
def test_decode_before_full_rank_is_an_error(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=S, engine=engine)
    buffer.add(_packet({0: 1}))
    with pytest.raises(RuntimeError):
        buffer.decode()


@pytest.mark.parametrize("engine", ENGINES)
def test_is_innovative_validates_vector_length(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=S, engine=engine)
    with pytest.raises(ValueError, match="length"):
        buffer.is_innovative(np.ones(K + 1, dtype=np.uint8))


@pytest.mark.parametrize("engine", ENGINES)
def test_is_innovative_without_insertion(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=S, engine=engine)
    zero = np.zeros(K, dtype=np.uint8)
    assert not buffer.is_innovative(zero)
    assert buffer.is_innovative(np.ones(K, dtype=np.uint8))

    buffer.add(_packet({0: 1}))
    seen = buffer.coefficient_matrix()[0]
    assert not buffer.is_innovative(seen)
    assert buffer.is_innovative(np.ones(K, dtype=np.uint8))
    assert buffer.rank == 1  # the probe inserted nothing


@pytest.mark.parametrize("engine", ENGINES)
def test_stored_packets_without_payload_tracking_are_zero_padded(engine):
    buffer = BatchBuffer(batch_size=K, packet_size=S, track_payloads=False,
                         engine=engine)
    vector = np.zeros(K, dtype=np.uint8)
    vector[2] = 7
    buffer.add(CodedPacket(code_vector=vector,
                           payload=np.zeros(0, dtype=np.uint8)))
    (stored,) = buffer.stored_packets()
    assert stored.payload.shape == (S,)
    assert not stored.payload.any()


def test_code_vector_must_be_one_dimensional():
    with pytest.raises(ValueError, match="1-D"):
        CodedPacket(code_vector=np.zeros((2, 2), dtype=np.uint8),
                    payload=np.zeros(4, dtype=np.uint8))
