"""Tests for packet/batch abstractions and file splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.packet import (
    Batch,
    CodedPacket,
    NativePacket,
    make_batch,
    split_file,
)


class TestNativePacket:
    def test_accepts_bytes_and_arrays(self):
        from_bytes = NativePacket(index=0, payload=b"\x01\x02\x03")
        from_array = NativePacket(index=0, payload=np.array([1, 2, 3], dtype=np.uint8))
        assert np.array_equal(from_bytes.payload, from_array.payload)
        assert from_bytes.size == 3
        assert from_bytes.to_bytes() == b"\x01\x02\x03"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            NativePacket(index=-1, payload=b"x")

    def test_payload_is_copied(self):
        data = np.array([1, 2, 3], dtype=np.uint8)
        packet = NativePacket(index=0, payload=data)
        data[0] = 99
        assert packet.payload[0] == 1

    def test_rejects_non_1d_payload(self):
        with pytest.raises(ValueError):
            NativePacket(index=0, payload=np.zeros((2, 2), dtype=np.uint8))


class TestCodedPacket:
    def test_basic_properties(self):
        packet = CodedPacket(code_vector=np.array([1, 0, 2], dtype=np.uint8),
                             payload=b"abcd", batch_id=3)
        assert packet.batch_size == 3
        assert packet.size == 4
        assert packet.batch_id == 3
        assert not packet.is_zero()

    def test_zero_vector_detection(self):
        packet = CodedPacket(code_vector=np.zeros(4, dtype=np.uint8), payload=b"1234")
        assert packet.is_zero()

    def test_copy_is_independent(self):
        packet = CodedPacket(code_vector=np.array([1, 2], dtype=np.uint8), payload=b"xy")
        clone = packet.copy()
        clone.code_vector[0] = 9
        assert packet.code_vector[0] == 1


class TestBatch:
    def test_payload_matrix_shape(self, rng):
        batch = make_batch(batch_size=4, packet_size=10, rng=rng)
        matrix = batch.payload_matrix()
        assert matrix.shape == (4, 10)
        assert batch.size == 4
        assert batch.packet_size == 10

    def test_empty_batch(self):
        batch = Batch(batch_id=0)
        assert batch.size == 0
        assert batch.packet_size == 0
        assert batch.payload_matrix().shape == (0, 0)


class TestSplitFile:
    def test_exact_multiple(self):
        data = bytes(range(256)) * 6  # 1536 bytes
        batches = split_file(data, batch_size=4, packet_size=128)
        assert len(batches) == 3
        assert all(batch.size == 4 for batch in batches)
        assert sum(batch.size for batch in batches) == 12

    def test_padding_of_last_packet(self):
        data = b"\xaa" * 100
        batches = split_file(data, batch_size=8, packet_size=64)
        assert len(batches) == 1
        assert batches[0].size == 2
        assert batches[0].packets[1].size == 64
        assert batches[0].packets[1].payload[36:].sum() == 0  # zero padding

    def test_roundtrip_content(self):
        data = np.random.default_rng(0).integers(0, 256, 1000, dtype=np.uint8).tobytes()
        batches = split_file(data, batch_size=4, packet_size=100)
        joined = b"".join(p.to_bytes() for batch in batches for p in batch.packets)
        assert joined[: len(data)] == data

    def test_last_batch_may_be_short(self):
        data = b"z" * (128 * 10)
        batches = split_file(data, batch_size=4, packet_size=128)
        assert [b.size for b in batches] == [4, 4, 2]

    def test_batch_ids_are_sequential(self):
        data = b"q" * 1000
        batches = split_file(data, batch_size=2, packet_size=100)
        assert [b.batch_id for b in batches] == list(range(len(batches)))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            split_file(b"abc", batch_size=0)
        with pytest.raises(ValueError):
            split_file(b"abc", packet_size=0)

    def test_empty_file(self):
        assert split_file(b"") == []


class TestMakeBatch:
    def test_deterministic_with_seed(self):
        a = make_batch(batch_size=3, packet_size=16, rng=np.random.default_rng(5))
        b = make_batch(batch_size=3, packet_size=16, rng=np.random.default_rng(5))
        assert np.array_equal(a.payload_matrix(), b.payload_matrix())
