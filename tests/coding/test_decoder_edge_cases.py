"""Decoder edge cases every insertion engine must handle identically.

The four corners the property streams only brush in passing, pinned down
explicitly for each engine/kernel configuration:

* re-insertion of an already-seen packet (non-innovative, no state drift);
* insertion after the buffer reached full rank (rejected, counters still
  advance, decode unchanged);
* the payload-free ``vector_only`` mode decoding at K=64 — double the
  usual batch size, zero payload bytes end to end;
* a forwarder pre-coding a rank-deficient buffer: the pre-coded packet
  must stay inside the heard subspace and be byte-identical across
  engines (including the RNG draws it consumes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.decoder import BatchDecoder, decode_by_inversion
from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import make_batch
from repro.gf.matrix import rank as matrix_rank

CONFIGURATIONS = (
    ("vectorized", "mul"),
    ("vectorized", "nibble"),
    ("vectorized", "logexp"),
    ("eager", "mul"),
    ("scalar", "mul"),
)

K = 16
PACKET_SIZE = 64


def _coded_packets(count: int, batch_size: int = K,
                   packet_size: int = PACKET_SIZE, seed: int = 7):
    batch = make_batch(batch_size=batch_size, packet_size=packet_size,
                       rng=np.random.default_rng(seed))
    encoder = SourceEncoder(batch, np.random.default_rng(seed + 1))
    return batch, encoder.next_packets(count)


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_reinserting_a_seen_packet_is_not_innovative(engine, kernel):
    _, packets = _coded_packets(K // 2)
    decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE,
                           engine=engine, kernel=kernel)
    assert decoder.add_packets(packets) == [True] * len(packets)
    before = decoder.buffer.coefficient_matrix()

    verdicts = decoder.add_packets(packets)  # replay every packet
    assert verdicts == [False] * len(packets)
    assert decoder.rank == len(packets)
    assert decoder.buffer.received == 2 * len(packets)
    assert decoder.buffer.innovative == len(packets)
    np.testing.assert_array_equal(decoder.buffer.coefficient_matrix(), before)


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_insertion_after_full_rank_is_rejected(engine, kernel):
    batch, packets = _coded_packets(K + 4)
    decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE,
                           engine=engine, kernel=kernel)
    for coded in packets[:K]:
        decoder.add_packet(coded)
    assert decoder.is_complete
    decoded_before = np.stack([p.payload for p in decoder.decode()])

    for coded in packets[K:]:
        assert decoder.add_packet(coded) is False
    assert decoder.rank == K
    assert decoder.missing() == 0
    assert decoder.buffer.received == K + 4
    decoded_after = np.stack([p.payload for p in decoder.decode()])
    np.testing.assert_array_equal(decoded_after, decoded_before)
    np.testing.assert_array_equal(decoded_after, batch.payload_matrix())


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_vector_only_decode_at_k64(engine, kernel):
    """Zero-byte payloads at K=64: rank machinery alone drives completion."""
    _, packets = _coded_packets(64, batch_size=64, packet_size=0, seed=11)
    decoder = BatchDecoder(batch_size=64, packet_size=0,
                           engine=engine, kernel=kernel)
    verdicts = decoder.add_packets(packets)
    assert all(verdicts)
    assert decoder.is_complete
    natives = decoder.decode()
    assert len(natives) == 64
    assert all(p.payload.size == 0 for p in natives)
    # The coefficient matrix still fully reduced to the identity.
    np.testing.assert_array_equal(decoder.buffer.coefficient_matrix(),
                                  np.eye(64, dtype=np.uint8))


@pytest.mark.parametrize("engine,kernel", CONFIGURATIONS)
def test_forwarder_precodes_rank_deficient_buffer(engine, kernel):
    """Pre-coding from r < K innovative packets stays in the heard subspace."""
    _, packets = _coded_packets(K // 4)
    forwarder = ForwarderEncoder(batch_size=K, packet_size=PACKET_SIZE,
                                 rng=np.random.default_rng(23),
                                 engine=engine, kernel=kernel)
    for coded in packets:
        forwarder.add_packet(coded)
    assert forwarder.buffer.rank == len(packets)

    recoded = forwarder.next_packet()
    heard = forwarder.buffer.coefficient_matrix()
    stacked = np.vstack([heard, recoded.code_vector])
    assert matrix_rank(stacked) == len(packets)  # no rank inflation
    assert recoded.code_vector.any()

    # Byte-identical across engines, RNG draws included: the scalar engine
    # given the same seed produces the same pre-coded packet.
    reference = ForwarderEncoder(batch_size=K, packet_size=PACKET_SIZE,
                                 rng=np.random.default_rng(23), engine="scalar")
    for coded in packets:
        reference.add_packet(coded)
    expected = reference.next_packet()
    np.testing.assert_array_equal(recoded.code_vector, expected.code_vector)
    np.testing.assert_array_equal(recoded.payload, expected.payload)


def test_full_batch_matches_inversion_reference():
    """The incremental decode equals the paper's explicit-inversion decode."""
    batch, packets = _coded_packets(K)
    decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE)
    decoder.add_packets(packets)
    incremental = np.stack([p.payload for p in decoder.decode()])
    np.testing.assert_array_equal(incremental, decode_by_inversion(packets))
    np.testing.assert_array_equal(incremental, batch.payload_matrix())
