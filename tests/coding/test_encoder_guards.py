"""Regression tests for encoder ownership and degenerate-draw guards.

Two classes of bug are pinned down here:

* **Aliasing**: a packet handed out by an encoder must never change when
  the encoder's internal state is later updated in place (the forwarder
  folds new arrivals into its pre-coded combination with ``scale_and_add``).
* **Degenerate draws**: the all-zero coefficient vector must be re-drawn
  wherever random combinations are formed — source coding, forwarder
  pre-coding — via the single shared guard
  :func:`repro.gf.arithmetic.random_code_vector`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import make_batch
from repro.gf.arithmetic import random_code_vector, vec_scale


class StubRng:
    """Serves pre-canned draws; delegates anything unexpected to a real rng."""

    def __init__(self, canned: list[np.ndarray], seed: int = 0) -> None:
        self.canned = list(canned)
        self.fallback = np.random.default_rng(seed)
        self.calls = 0

    def integers(self, low, high=None, size=None, dtype=np.int64, endpoint=False):
        self.calls += 1
        if self.canned:
            draw = self.canned.pop(0)
            if size is not None and np.shape(draw) != (np.prod(size),) \
                    and np.shape(draw) != tuple(np.atleast_1d(size)):
                raise AssertionError(
                    f"stub draw shape {np.shape(draw)} does not match size {size}")
            return np.asarray(draw, dtype=dtype) if size is not None else draw
        return self.fallback.integers(low, high, size=size, dtype=dtype,
                                      endpoint=endpoint)


class TestRandomCodeVectorGuard:
    def test_redraws_all_zero_vector(self):
        zero = np.zeros(4, dtype=np.uint8)
        real = np.array([3, 0, 7, 1], dtype=np.uint8)
        rng = StubRng([zero, zero, real])
        drawn = random_code_vector(4, rng)
        assert np.array_equal(drawn, real)
        assert rng.calls == 3

    def test_source_encoder_skips_zero_draw(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        zero = np.zeros(3, dtype=np.uint8)
        real = np.array([0, 5, 0], dtype=np.uint8)
        encoder = SourceEncoder(batch, StubRng([zero, real]))
        packet = encoder.next_packet()
        assert np.array_equal(packet.code_vector, real)

    def test_forwarder_precode_skips_zero_draw(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        first = source.next_packet()
        # The stub drives only the forwarder: its first pre-code draw (over
        # the single buffered packet) comes up all-zero and must be re-drawn.
        zero = np.zeros(1, dtype=np.uint8)
        combo = np.array([9], dtype=np.uint8)
        forwarder = ForwarderEncoder(batch_size=3, packet_size=8,
                                     rng=StubRng([zero, combo]))
        assert forwarder.add_packet(first)
        assert forwarder._precoded_vector is not None
        assert forwarder._precoded_vector.any()
        recoded = forwarder.next_packet()
        assert recoded.code_vector.any()

    def test_forwarder_fold_guard_recovers_from_cancellation(self, rng):
        """If an in-place fold ever cancels the combination, it is rebuilt.

        The cancellation cannot arise from a genuinely innovative arrival
        (independence forbids it), so the internal pre-coded state is
        forced into the pathological position directly.
        """
        batch = make_batch(batch_size=4, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=4, packet_size=8,
                                     rng=np.random.default_rng(5))
        forwarder.add_packet(source.next_packet())
        incoming = source.next_packet()
        # Pin the next fold coefficient, then plant a pre-coded vector that
        # the fold will cancel exactly.
        coefficient = 7
        forwarder.rng = StubRng([coefficient])
        forwarder._precoded_vector = vec_scale(incoming.code_vector, coefficient)
        forwarder._precoded_payload = vec_scale(incoming.payload, coefficient)
        assert forwarder.add_packet(incoming)
        assert forwarder._precoded_vector is not None
        assert forwarder._precoded_vector.any()


class TestHandedOutPacketsAreImmutable:
    def test_forwarder_packet_unchanged_by_later_arrivals(self, rng):
        batch = make_batch(batch_size=4, packet_size=16, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=4, packet_size=16, rng=rng)
        forwarder.add_packet(source.next_packet())
        forwarder.add_packet(source.next_packet())

        handed_out = forwarder.next_packet()
        vector_snapshot = handed_out.code_vector.copy()
        payload_snapshot = handed_out.payload.copy()

        # Every subsequent arrival folds into the (new) pre-coded packet in
        # place; none of it may reach the packet already handed out.
        for _ in range(6):
            forwarder.add_packet(source.next_packet())
        forwarder.next_packet()

        assert np.array_equal(handed_out.code_vector, vector_snapshot)
        assert np.array_equal(handed_out.payload, payload_snapshot)

    def test_forwarder_drops_references_on_handout(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=3, packet_size=8, rng=rng)
        forwarder.add_packet(source.next_packet())
        packet = forwarder.next_packet()
        # The freshly pre-coded internal arrays must be distinct objects
        # from the ones inside the handed-out packet.
        assert forwarder._precoded_vector is not packet.code_vector
        assert forwarder._precoded_payload is not packet.payload

    def test_source_packets_independent_of_each_other(self, rng):
        batch = make_batch(batch_size=4, packet_size=16, rng=rng)
        encoder = SourceEncoder(batch, rng)
        packets = encoder.next_packets(4)
        snapshots = [(p.code_vector.copy(), p.payload.copy()) for p in packets]
        # Mutating one packet's arrays must not leak into its siblings
        # (they are disjoint rows of per-call matrices).
        packets[0].payload[:] = 0
        packets[0].code_vector[:] = 0
        for packet, (vector, payload) in zip(packets[1:], snapshots[1:]):
            assert np.array_equal(packet.code_vector, vector)
            assert np.array_equal(packet.payload, payload)

    def test_buffer_does_not_alias_inserted_packets(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=3, packet_size=8, rng=rng)
        packet = source.next_packet()
        forwarder.add_packet(packet)
        stored = forwarder.buffer.stored_packets()[0]
        packet.payload[:] = 0
        assert stored.payload.any() or not stored.payload.size


@pytest.mark.parametrize("count", [0, -3])
def test_next_packets_rejects_non_positive_count(count, rng):
    batch = make_batch(batch_size=3, packet_size=8, rng=rng)
    encoder = SourceEncoder(batch, rng)
    with pytest.raises(ValueError):
        encoder.next_packets(count)
