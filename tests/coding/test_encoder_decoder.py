"""Tests for the source/forwarder encoders and the destination decoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.decoder import BatchDecoder, decode_by_inversion
from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import Batch, make_batch
from repro.gf.matrix import SingularMatrixError


class TestSourceEncoder:
    def test_code_vector_length_matches_batch(self, rng):
        batch = make_batch(batch_size=7, packet_size=20, rng=rng)
        encoder = SourceEncoder(batch, rng)
        packet = encoder.next_packet()
        assert packet.batch_size == 7
        assert packet.size == 20
        assert packet.batch_id == batch.batch_id

    def test_payload_is_consistent_linear_combination(self, rng):
        batch = make_batch(batch_size=4, packet_size=30, rng=rng)
        encoder = SourceEncoder(batch, rng)
        packet = encoder.next_packet()
        from repro.gf.arithmetic import scale_and_add
        expected = np.zeros(30, dtype=np.uint8)
        for index, coefficient in enumerate(packet.code_vector):
            scale_and_add(expected, batch.packets[index].payload, int(coefficient))
        assert np.array_equal(packet.payload, expected)

    def test_never_emits_zero_vector(self, rng):
        batch = make_batch(batch_size=2, packet_size=4, rng=rng)
        encoder = SourceEncoder(batch, rng)
        for _ in range(200):
            assert encoder.next_packet().code_vector.any()

    def test_empty_batch_rejected(self, rng):
        with pytest.raises(ValueError):
            SourceEncoder(Batch(batch_id=0), rng)

    def test_counts_generated_packets(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        encoder = SourceEncoder(batch, rng)
        for _ in range(5):
            encoder.next_packet()
        assert encoder.packets_generated == 5


class TestForwarderEncoder:
    def test_recoded_packets_stay_in_source_span(self, rng):
        """A forwarder's output is always a linear combination of the natives
        it has (indirectly) heard — Section 3.1.2's algebra."""
        batch = make_batch(batch_size=5, packet_size=16, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=5, packet_size=16, rng=rng)
        for _ in range(3):
            forwarder.add_packet(source.next_packet())
        recoded = forwarder.next_packet()
        # Verify the payload equals the combination implied by the code vector.
        from repro.gf.arithmetic import scale_and_add
        expected = np.zeros(16, dtype=np.uint8)
        for index, coefficient in enumerate(recoded.code_vector):
            scale_and_add(expected, batch.packets[index].payload, int(coefficient))
        assert np.array_equal(recoded.payload, expected)

    def test_has_data_and_rank(self, rng):
        forwarder = ForwarderEncoder(batch_size=4, packet_size=8, rng=rng)
        assert not forwarder.has_data()
        batch = make_batch(batch_size=4, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder.add_packet(source.next_packet())
        assert forwarder.has_data()
        assert forwarder.rank == 1

    def test_next_packet_without_data_raises(self, rng):
        forwarder = ForwarderEncoder(batch_size=4, packet_size=8, rng=rng)
        with pytest.raises(RuntimeError):
            forwarder.next_packet()

    def test_non_innovative_packets_do_not_grow_rank(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=3, packet_size=8, rng=rng)
        packet = source.next_packet()
        assert forwarder.add_packet(packet) is True
        assert forwarder.add_packet(packet.copy()) is False
        assert forwarder.rank == 1

    def test_precoding_reflects_latest_arrival(self, rng):
        """Section 3.2.3(c): the pre-coded packet is updated with new arrivals
        so a transmission reflects everything the node knows."""
        batch = make_batch(batch_size=4, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=4, packet_size=8, rng=rng)
        forwarder.add_packet(source.next_packet())
        forwarder.add_packet(source.next_packet())
        packet = forwarder.next_packet()
        assert packet.code_vector.any()

    def test_reset_flushes_state(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        source = SourceEncoder(batch, rng)
        forwarder = ForwarderEncoder(batch_size=3, packet_size=8, rng=rng)
        forwarder.add_packet(source.next_packet())
        forwarder.reset(batch_id=5)
        assert forwarder.rank == 0
        assert forwarder.batch_id == 5
        assert not forwarder.has_data()


class TestBatchDecoder:
    def test_decode_direct_from_source(self, rng):
        batch = make_batch(batch_size=8, packet_size=64, rng=rng)
        encoder = SourceEncoder(batch, rng)
        decoder = BatchDecoder(batch_size=8, packet_size=64)
        innovative = 0
        while not decoder.is_complete:
            if decoder.add_packet(encoder.next_packet()):
                innovative += 1
        assert innovative == 8
        natives = decoder.decode()
        for expected, recovered in zip(batch.packets, natives):
            assert np.array_equal(expected.payload, recovered.payload)
            assert expected.index == recovered.index

    def test_decode_through_forwarder_chain(self, rng):
        """Source -> forwarder -> forwarder -> destination, all re-coding."""
        batch = make_batch(batch_size=6, packet_size=32, rng=rng)
        source = SourceEncoder(batch, rng)
        hop1 = ForwarderEncoder(batch_size=6, packet_size=32, rng=rng)
        hop2 = ForwarderEncoder(batch_size=6, packet_size=32, rng=rng)
        decoder = BatchDecoder(batch_size=6, packet_size=32)
        for _ in range(8):
            hop1.add_packet(source.next_packet())
        for _ in range(8):
            hop2.add_packet(hop1.next_packet())
        while not decoder.is_complete:
            decoder.add_packet(hop2.next_packet())
        recovered = decoder.decode()
        for expected, native in zip(batch.packets, recovered):
            assert np.array_equal(expected.payload, native.payload)

    def test_missing_counts_down(self, rng):
        batch = make_batch(batch_size=4, packet_size=8, rng=rng)
        encoder = SourceEncoder(batch, rng)
        decoder = BatchDecoder(batch_size=4, packet_size=8)
        assert decoder.missing() == 4
        decoder.add_packet(encoder.next_packet())
        assert decoder.missing() == 3

    def test_decode_incomplete_raises(self):
        decoder = BatchDecoder(batch_size=4, packet_size=8)
        with pytest.raises(RuntimeError):
            decoder.decode()


class TestDecodeByInversion:
    def test_matches_incremental_decoder(self, rng):
        batch = make_batch(batch_size=5, packet_size=16, rng=rng)
        encoder = SourceEncoder(batch, rng)
        packets = []
        decoder = BatchDecoder(batch_size=5, packet_size=16)
        while len(packets) < 5:
            packet = encoder.next_packet()
            if decoder.add_packet(packet):
                packets.append(packet)
        recovered = decode_by_inversion(packets)
        assert np.array_equal(recovered, batch.payload_matrix())

    def test_wrong_packet_count_rejected(self, rng):
        batch = make_batch(batch_size=4, packet_size=8, rng=rng)
        encoder = SourceEncoder(batch, rng)
        with pytest.raises(ValueError):
            decode_by_inversion([encoder.next_packet()])

    def test_dependent_packets_raise(self, rng):
        batch = make_batch(batch_size=3, packet_size=8, rng=rng)
        encoder = SourceEncoder(batch, rng)
        packet = encoder.next_packet()
        with pytest.raises(SingularMatrixError):
            decode_by_inversion([packet, packet.copy(), packet.copy()])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            decode_by_inversion([])


@given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_end_to_end_decoding(batch_size, packet_size, seed):
    """Random coding at the source always lets the destination recover the
    batch once K innovative packets arrive (Ho et al.'s result in practice)."""
    rng = np.random.default_rng(seed)
    batch = make_batch(batch_size=batch_size, packet_size=packet_size, rng=rng)
    encoder = SourceEncoder(batch, rng)
    decoder = BatchDecoder(batch_size=batch_size, packet_size=packet_size)
    attempts = 0
    while not decoder.is_complete:
        decoder.add_packet(encoder.next_packet())
        attempts += 1
        assert attempts < 20 * batch_size + 50
    assert np.array_equal(np.stack([n.payload for n in decoder.decode()]),
                          batch.payload_matrix())
