"""Integration tests for the MORE protocol on small topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.more import setup_more_flow
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.topology.generator import chain, diamond, two_hop_relay


def run_flow(topology, source, destination, seed=1, until=60.0, **flow_kwargs):
    sim = Simulator(topology, SimConfig(seed=seed))
    handle = setup_more_flow(sim, topology, source, destination, seed=seed, **flow_kwargs)
    sim.run(until=until, stop_condition=sim.stats.all_flows_complete)
    return sim, handle


class TestEndToEndTransfer:
    def test_file_integrity_over_lossy_chain(self, rng):
        """The destination reconstructs the exact file bytes (Section 3.1.3)."""
        topo = chain(3, link_delivery=0.7, skip_delivery=0.2)
        data = rng.integers(0, 256, 16 * 200, dtype=np.uint8).tobytes()
        sim, handle = run_flow(topo, 0, 3, file_bytes=data, batch_size=8, packet_size=200)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        assert handle.decoded_bytes()[: len(data)] == data

    def test_one_hop_flow(self):
        topo = chain(1, link_delivery=0.8)
        sim, handle = run_flow(topo, 0, 1, total_packets=32, batch_size=16, packet_size=400)
        assert sim.stats.flows[handle.flow_id].completed

    def test_relay_topology_uses_opportunistic_receptions(self):
        """Figure 1-1: the destination overhears some source transmissions, so
        the relay forwards noticeably fewer packets than the source sends."""
        topo = two_hop_relay()
        sim, handle = run_flow(topo, 0, 2, total_packets=64, batch_size=32, packet_size=800)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        tx = sim.stats.data_transmissions
        assert tx.get(1, 0) < tx.get(0, 1)  # relay sends less than the source

    def test_diamond_multiple_forwarders(self):
        topo = diamond(0.5, 0.6, relay_count=3)
        destination = topo.node_count - 1
        sim, handle = run_flow(topo, 0, destination, total_packets=32, batch_size=16,
                               packet_size=400)
        assert sim.stats.flows[handle.flow_id].completed

    def test_multi_batch_transfer_advances_batches(self):
        topo = chain(2, link_delivery=0.8)
        sim, handle = run_flow(topo, 0, 2, total_packets=48, batch_size=16, packet_size=200)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        assert record.delivered_batches == 3
        # Let the final batch ACK drain back to the source, then it is done.
        sim.run(until=sim.now + 2.0)
        source_state = handle.source_agent.source_flows[handle.flow_id]
        assert source_state.done

    def test_eotx_ordering_also_works(self):
        topo = diamond(0.4, 0.6, relay_count=2)
        destination = topo.node_count - 1
        sim, handle = run_flow(topo, 0, destination, total_packets=16, batch_size=8,
                               packet_size=200, metric="eotx")
        assert sim.stats.flows[handle.flow_id].completed


class TestProtocolBehaviour:
    def test_source_stops_after_final_ack(self):
        topo = chain(1, link_delivery=0.9)
        sim, handle = run_flow(topo, 0, 1, total_packets=16, batch_size=16, packet_size=200)
        completion_time = sim.stats.flows[handle.flow_id].end_time
        transmissions_at_completion = sim.stats.total_data_transmissions()
        sim.run(until=sim.now + 0.2)
        # A few in-flight frames may still drain, but the source must not keep
        # pumping the medium long after the ACK.
        assert sim.stats.total_data_transmissions() <= transmissions_at_completion + 3
        assert completion_time is not None

    def test_forwarder_flushes_acked_batch(self):
        topo = chain(2, link_delivery=0.9)
        sim, handle = run_flow(topo, 0, 2, total_packets=32, batch_size=16, packet_size=200)
        forwarder_state = sim.nodes[1].agent.forward_flows[handle.flow_id]
        # After the transfer, the forwarder has moved past batch 0.
        assert forwarder_state.current_batch >= 1

    def test_destination_counts_duplicates(self):
        topo = two_hop_relay()
        sim, handle = run_flow(topo, 0, 2, total_packets=32, batch_size=32, packet_size=400)
        record = sim.stats.flows[handle.flow_id]
        agent = handle.destination_agent
        assert agent.innovative_received == record.delivered_packets
        assert record.duplicate_packets == agent.non_innovative_received

    def test_forwarder_only_transmits_with_credit(self):
        """A node not in the forwarder list never transmits for the flow."""
        topo = diamond(0.5, 0.6, relay_count=2, direct=0.4)
        destination = topo.node_count - 1
        sim, handle = run_flow(topo, 0, destination, total_packets=16, batch_size=8,
                               packet_size=200)
        forwarders = set(handle.spec.distances) | {0}
        for node, count in sim.stats.data_transmissions.items():
            assert node in forwarders
            assert node != destination or count == 0

    def test_throughput_positive_and_bounded(self):
        topo = chain(2, link_delivery=0.8)
        sim, handle = run_flow(topo, 0, 2, total_packets=32, batch_size=16, packet_size=1500)
        record = sim.stats.flows[handle.flow_id]
        throughput = record.throughput_pkts()
        assert 0 < throughput < 500  # can't beat the channel capacity


class TestFlowSetupValidation:
    def test_requires_exactly_one_payload_spec(self):
        topo = chain(1)
        sim = Simulator(topo, SimConfig())
        with pytest.raises(ValueError):
            setup_more_flow(sim, topo, 0, 1)
        with pytest.raises(ValueError):
            setup_more_flow(sim, topo, 0, 1, total_packets=8, file_bytes=b"x")

    def test_agent_reuse_across_flows(self):
        topo = chain(2, link_delivery=0.9)
        sim = Simulator(topo, SimConfig(seed=2))
        first = setup_more_flow(sim, topo, 0, 2, total_packets=16, batch_size=8,
                                packet_size=200)
        second = setup_more_flow(sim, topo, 2, 0, total_packets=16, batch_size=8,
                                 packet_size=200)
        assert sim.nodes[0].agent is first.source_agent
        assert first.flow_id != second.flow_id
        sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)
        assert sim.stats.all_flows_complete()

    def test_mixing_protocols_on_a_node_rejected(self):
        from repro.protocols.srcr import setup_srcr_flow
        topo = chain(2, link_delivery=0.9)
        sim = Simulator(topo, SimConfig())
        setup_more_flow(sim, topo, 0, 2, total_packets=8, batch_size=8, packet_size=200)
        with pytest.raises(TypeError):
            setup_srcr_flow(sim, topo, 0, 2, total_packets=8, packet_size=200)

    def test_control_topology_changes_plan(self):
        from repro.topology.estimation import probe_estimated_topology
        topo = diamond(0.4, 0.5, relay_count=2)
        destination = topo.node_count - 1
        sim = Simulator(topo, SimConfig())
        estimated = probe_estimated_topology(topo, seed=1)
        handle = setup_more_flow(sim, topo, 0, destination, total_packets=8, batch_size=8,
                                 packet_size=200, control_topology=estimated)
        # Distances in the spec come from the estimated topology.
        assert handle.spec.distances[0] != pytest.approx(
            float(np.inf), abs=0)  # sanity: finite
