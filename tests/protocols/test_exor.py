"""Tests for the ExOR implementation (strict schedule + batch maps)."""

from __future__ import annotations

import numpy as np

from repro.protocols.exor import ExorAgent, setup_exor_flow
from repro.protocols.exor.agent import ExorDataPayload
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.topology.generator import chain, diamond, two_hop_relay


def run_exor(topology, source, destination, seed=1, until=90.0, **kwargs):
    sim = Simulator(topology, SimConfig(seed=seed))
    handle = setup_exor_flow(sim, topology, source, destination, **kwargs)
    sim.run(until=until, stop_condition=sim.stats.all_flows_complete)
    return sim, handle


class TestTransfer:
    def test_single_hop(self):
        topo = chain(1, link_delivery=0.8)
        sim, handle = run_exor(topo, 0, 1, total_packets=16, batch_size=8, packet_size=400)
        assert sim.stats.flows[handle.flow_id].completed

    def test_lossy_chain(self):
        topo = chain(3, link_delivery=0.7, skip_delivery=0.2)
        sim, handle = run_exor(topo, 0, 3, total_packets=24, batch_size=8, packet_size=400)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        assert record.delivered_packets == 24

    def test_relay_topology(self):
        topo = two_hop_relay()
        sim, handle = run_exor(topo, 0, 2, total_packets=32, batch_size=16, packet_size=400)
        assert sim.stats.flows[handle.flow_id].completed

    def test_diamond(self):
        topo = diamond(0.5, 0.6, relay_count=3)
        destination = topo.node_count - 1
        sim, handle = run_exor(topo, 0, destination, total_packets=16, batch_size=8,
                               packet_size=400)
        assert sim.stats.flows[handle.flow_id].completed

    def test_multi_batch(self):
        topo = chain(2, link_delivery=0.8)
        sim, handle = run_exor(topo, 0, 2, total_packets=24, batch_size=8, packet_size=400)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        # Let the final batch ACK drain back to the source.
        sim.run(until=sim.now + 2.0)
        source_agent = sim.nodes[0].agent
        assert source_agent.source_progress[handle.flow_id] == handle.spec.batch_count


class TestStrictSchedule:
    def test_one_transmitter_at_a_time(self):
        """ExOR's defining property: the flow's forwarders never transmit
        concurrently, so the medium never sees two overlapping data frames of
        the flow (this is what forfeits spatial reuse)."""
        topo = chain(4, link_delivery=0.7, skip_delivery=0.15)
        sim = Simulator(topo, SimConfig(seed=2))
        handle = setup_exor_flow(sim, topo, 0, 4, total_packets=16, batch_size=8,
                                 packet_size=400)
        intervals = []
        original_begin = sim.medium.begin

        def tracking_begin(frame, now, airtime, bitrate):
            if isinstance(frame.payload, ExorDataPayload):
                intervals.append((now, now + airtime))
            return original_begin(frame, now, airtime, bitrate)

        sim.medium.begin = tracking_begin
        sim.run(until=90.0, stop_condition=sim.stats.all_flows_complete)
        intervals.sort()
        for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
            assert start_b >= end_a - 1e-12

    def test_scheduler_rotates_turns(self):
        topo = chain(2, link_delivery=0.8)
        sim = Simulator(topo, SimConfig(seed=3))
        handle = setup_exor_flow(sim, topo, 0, 2, total_packets=8, batch_size=8,
                                 packet_size=400)
        sim.run(until=90.0, stop_condition=sim.stats.all_flows_complete)
        assert handle.scheduler.round >= 0
        assert not handle.scheduler.active  # stopped once the batch completed

    def test_batch_map_merging(self):
        """Receivers merge heard batch maps element-wise (minimum rank)."""
        topo = chain(2, link_delivery=1.0)
        sim = Simulator(topo, SimConfig(seed=1))
        handle = setup_exor_flow(sim, topo, 0, 2, total_packets=8, batch_size=8,
                                 packet_size=400)
        agent = sim.nodes[1].agent
        assert isinstance(agent, ExorAgent)
        state = agent.flows[handle.flow_id]
        incoming = np.full(8, 0, dtype=np.int32)  # destination claims everything
        state.merge_map(incoming)
        assert (state.batch_map == 0).all()

    def test_forwarder_responsibility_excludes_higher_priority_holders(self):
        topo = chain(2, link_delivery=1.0)
        sim = Simulator(topo, SimConfig(seed=1))
        handle = setup_exor_flow(sim, topo, 0, 2, total_packets=8, batch_size=8,
                                 packet_size=400)
        agent = sim.nodes[1].agent
        state = agent.flows[handle.flow_id]
        state.note_reception(0, 0)
        state.note_reception(1, 0)
        # Another (higher-priority) node claims packet 1.
        claim = state.batch_map.copy()
        claim[1] = 0
        state.merge_map(claim)
        assert state.responsibility() == [0]


class TestCompletionThreshold:
    def test_cleanup_phase_delivers_the_tail(self):
        """With a 70% threshold the last packets travel via traditional
        routing and the batch still completes."""
        topo = chain(2, link_delivery=0.7)
        sim, handle = run_exor(topo, 0, 2, total_packets=16, batch_size=16,
                               packet_size=400, completion_threshold=0.7)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        destination_agent = sim.nodes[2].agent
        assert handle.flow_id in destination_agent.cleanup_requested
