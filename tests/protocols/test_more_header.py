"""Tests for the MORE header (Section 3.3.1 / Figure 3-1 / Section 4.6(c))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.more.header import (
    CREDIT_SCALE,
    MAX_FORWARDERS,
    ForwarderEntry,
    MoreHeader,
    MorePacketType,
)


def data_header(batch_size=32, forwarders=3):
    return MoreHeader(
        packet_type=MorePacketType.DATA,
        source=1,
        destination=9,
        flow_id=42,
        batch_id=7,
        code_vector=np.arange(batch_size, dtype=np.uint8),
        forwarders=[ForwarderEntry(node_id=i + 2, tx_credit=0.5 + i) for i in range(forwarders)],
    )


class TestPackUnpack:
    def test_roundtrip_data_header(self):
        header = data_header()
        parsed = MoreHeader.unpack(header.pack())
        assert parsed.packet_type is MorePacketType.DATA
        assert parsed.source == 1 and parsed.destination == 9
        assert parsed.flow_id == 42 and parsed.batch_id == 7
        assert np.array_equal(parsed.code_vector, header.code_vector)
        assert parsed.forwarder_ids() == header.forwarder_ids()

    def test_roundtrip_ack_header(self):
        header = MoreHeader(packet_type=MorePacketType.ACK, source=3, destination=4,
                            flow_id=5, batch_id=6)
        parsed = MoreHeader.unpack(header.pack())
        assert parsed.packet_type is MorePacketType.ACK
        assert parsed.code_vector is None
        assert parsed.forwarders == []

    def test_credit_quantisation(self):
        header = data_header(forwarders=1)
        header.forwarders[0].tx_credit = 1.37
        parsed = MoreHeader.unpack(header.pack())
        assert parsed.forwarders[0].tx_credit == pytest.approx(1.37, abs=1.0 / CREDIT_SCALE)

    def test_credit_saturates(self):
        entry = ForwarderEntry(node_id=1, tx_credit=1000.0)
        assert entry.quantized_credit() == 255

    def test_truncated_buffer_rejected(self):
        with pytest.raises(ValueError):
            MoreHeader.unpack(b"\x00\x01")

    def test_size_matches_serialisation(self):
        for batch_size in (8, 32, 128):
            for forwarders in (0, 3, 10):
                header = data_header(batch_size=batch_size, forwarders=forwarders)
                assert header.size_bytes() == len(header.pack())


class TestPaperBounds:
    def test_forwarder_list_capped_at_ten(self):
        header = data_header(forwarders=15)
        assert len(header.forwarders) == MAX_FORWARDERS

    def test_header_overhead_below_five_percent(self):
        """Section 4.6(c): for 1500 B packets the header overhead is < 5%."""
        header = data_header(batch_size=32, forwarders=MAX_FORWARDERS)
        assert header.overhead_fraction(1500) < 0.05

    def test_k32_header_is_about_70_bytes(self):
        header = data_header(batch_size=32, forwarders=MAX_FORWARDERS)
        assert header.size_bytes() <= 75


@given(st.integers(min_value=1, max_value=128), st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=65535))
@settings(max_examples=60, deadline=None)
def test_property_pack_unpack_roundtrip(batch_size, forwarder_count, batch_id, flow_id):
    rng = np.random.default_rng(batch_size * 1000 + forwarder_count)
    header = MoreHeader(
        packet_type=MorePacketType.DATA,
        source=int(rng.integers(0, 2**32 - 1)),
        destination=int(rng.integers(0, 2**32 - 1)),
        flow_id=flow_id,
        batch_id=batch_id,
        code_vector=rng.integers(0, 256, batch_size, dtype=np.uint8),
        forwarders=[ForwarderEntry(node_id=int(rng.integers(0, 255)),
                                   tx_credit=float(rng.uniform(0, 10)))
                    for _ in range(forwarder_count)],
    )
    parsed = MoreHeader.unpack(header.pack())
    assert parsed.flow_id == flow_id
    assert parsed.batch_id == batch_id
    assert np.array_equal(parsed.code_vector, header.code_vector)
    assert len(parsed.forwarders) == forwarder_count
