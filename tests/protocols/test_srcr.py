"""Tests for the Srcr best-path baseline."""

from __future__ import annotations

import numpy as np

from repro.metrics.etx import best_path
from repro.protocols.srcr import SrcrAgent, SrcrFlowSpec, setup_srcr_flow
from repro.sim.radio import RATE_11MBPS, SimConfig
from repro.sim.simulator import Simulator
from repro.topology.generator import chain, two_hop_relay


def run_srcr(topology, source, destination, seed=1, until=60.0, **kwargs):
    sim = Simulator(topology, SimConfig(seed=seed))
    handle = setup_srcr_flow(sim, topology, source, destination, **kwargs)
    sim.run(until=until, stop_condition=sim.stats.all_flows_complete)
    return sim, handle


class TestFlowSpec:
    def test_next_hop(self):
        spec = SrcrFlowSpec(flow_id=1, source=0, destination=3, route=[0, 1, 3],
                            packet_size=1500, total_packets=10)
        assert spec.next_hop(0) == 1
        assert spec.next_hop(1) == 3
        assert spec.next_hop(3) is None
        assert spec.next_hop(7) is None

    def test_frame_size_includes_header(self):
        spec = SrcrFlowSpec(flow_id=1, source=0, destination=1, route=[0, 1],
                            packet_size=1500, total_packets=10)
        assert spec.frame_size() > 1500


class TestTransfer:
    def test_single_hop_delivery(self):
        topo = chain(1, link_delivery=0.9)
        sim, handle = run_srcr(topo, 0, 1, total_packets=20, packet_size=500)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        assert record.delivered_packets == 20

    def test_multi_hop_delivery_over_lossy_links(self):
        topo = chain(3, link_delivery=0.6)
        sim, handle = run_srcr(topo, 0, 3, total_packets=20, packet_size=500)
        assert sim.stats.flows[handle.flow_id].completed

    def test_route_follows_best_etx_path(self, relay_topology):
        sim, handle = run_srcr(relay_topology, 0, 2, total_packets=10, packet_size=500)
        assert handle.spec.route == best_path(relay_topology, 0, 2)
        # Nodes not on the route never transmit data for the flow.
        assert set(sim.stats.data_transmissions) <= set(handle.spec.route)

    def test_ignores_overheard_packets(self):
        """Traditional routing discards fortunate receptions (Section 2.1)."""
        topo = two_hop_relay()
        sim, handle = run_srcr(topo, 0, 2, total_packets=30, packet_size=500)
        record = sim.stats.flows[handle.flow_id]
        assert record.completed
        # Every delivered packet crossed both hops: the relay transmits at
        # least once per packet even though the destination overhears ~49%.
        assert sim.stats.data_transmissions.get(1, 0) >= record.total_packets

    def test_transmission_count_tracks_path_etx(self):
        topo = chain(2, link_delivery=0.5)
        sim, handle = run_srcr(topo, 0, 2, total_packets=40, packet_size=500, seed=5)
        total_tx = sim.stats.total_data_transmissions()
        expected = 40 * 4.0  # path ETX = 2 + 2
        assert expected * 0.7 < total_tx < expected * 1.4

    def test_duplicates_counted_not_delivered_twice(self):
        topo = chain(1, link_delivery=0.9)
        sim, handle = run_srcr(topo, 0, 1, total_packets=10, packet_size=500)
        record = sim.stats.flows[handle.flow_id]
        assert record.delivered_packets == 10


class TestAutorateIntegration:
    def test_autorate_flow_completes(self):
        topo = chain(2, link_delivery=0.6)
        sim, handle = run_srcr(topo, 0, 2, total_packets=20, packet_size=500,
                               use_autorate=True)
        assert sim.stats.flows[handle.flow_id].completed
        agent = sim.nodes[0].agent
        assert isinstance(agent, SrcrAgent)
        assert agent.rate_controller is not None

    def test_fixed_bitrate_override(self):
        topo = chain(1, link_delivery=0.9)
        sim = Simulator(topo, SimConfig(seed=1))
        handle = setup_srcr_flow(sim, topo, 0, 1, total_packets=5, packet_size=500,
                                 bitrate=RATE_11MBPS)
        agent = sim.nodes[0].agent
        frame = None
        agent.enqueue_source_packets(handle.flow_id)
        frame = agent.on_transmit_opportunity(0.0)
        assert agent.select_bitrate(frame) == RATE_11MBPS


class TestControlPlaneEstimates:
    def test_optimistic_estimates_can_pick_a_worse_route(self):
        """The control plane routes on its (estimated) view, not ground truth."""
        from repro.topology.graph import Topology
        # True: direct link poor (0.3), relay path strong (0.9 * 0.9).
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.9
        matrix[1, 2] = matrix[2, 1] = 0.9
        matrix[0, 2] = matrix[2, 0] = 0.3
        true_topo = Topology(matrix)
        # Estimates: the direct link looks great (0.95).
        est = np.array(matrix)
        est[0, 2] = est[2, 0] = 0.95
        estimated = Topology(est)
        sim = Simulator(true_topo, SimConfig(seed=1))
        handle = setup_srcr_flow(sim, true_topo, 0, 2, total_packets=10, packet_size=500,
                                 control_topology=estimated)
        assert handle.spec.route == [0, 2]
        sim.run(until=60, stop_condition=sim.stats.all_flows_complete)
        assert sim.stats.flows[handle.flow_id].completed
