"""Tests for the EOTX metric: the three formulations must agree (Chapter 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.eotx import (
    eotx_bellman_ford,
    eotx_dijkstra,
    eotx_order,
    eotx_recursive,
)
from repro.metrics.etx import etx_to_destination
from repro.topology.generator import chain, diamond, random_mesh
from repro.topology.graph import Topology


def assert_costs_close(a, b, tol=1e-9):
    a = np.nan_to_num(np.asarray(a), posinf=1e18)
    b = np.nan_to_num(np.asarray(b), posinf=1e18)
    assert np.allclose(a, b, rtol=1e-7, atol=tol)


class TestAnalyticCases:
    def test_single_link(self):
        topo = chain(1, link_delivery=0.5)
        costs = eotx_dijkstra(topo, 1)
        assert costs[1] == 0.0
        assert costs[0] == pytest.approx(2.0)

    def test_figure_1_1_relay(self, relay_topology):
        """src->R and src->dst at 0.49: EOTX uses both receptions.

        d(src) = (1 + 0.49*0 + 0.51*1) / 1 = 1.51, below the ETX of 2.
        """
        costs = eotx_dijkstra(relay_topology, 2)
        assert costs[1] == pytest.approx(1.0)
        assert costs[0] == pytest.approx(1.51)

    def test_diamond_closed_form(self):
        """Source -> k relays (p each) -> destination (q each).

        d(relay) = 1/q; d(src) = (1 + (1-(1-p)^k)/q) / (1-(1-p)^k).
        """
        p, q, k = 0.5, 0.5, 3
        topo = diamond(p, q, relay_count=k)
        destination = topo.node_count - 1
        costs = eotx_dijkstra(topo, destination)
        reach = 1 - (1 - p) ** k
        expected_src = (1 + reach * (1 / q)) / reach
        for relay in range(1, k + 1):
            assert costs[relay] == pytest.approx(1 / q)
        assert costs[0] == pytest.approx(expected_src)

    def test_opportunism_beats_etx(self):
        """EOTX is never above ETX: using extra forwarders can only help."""
        for seed in range(5):
            topo = random_mesh(9, density=0.45, seed=seed)
            destination = 0
            etx = etx_to_destination(topo, destination)
            eotx = eotx_dijkstra(topo, destination)
            for node in range(topo.node_count):
                if math.isinf(etx[node]):
                    continue
                assert eotx[node] <= etx[node] + 1e-9

    def test_destination_cost_is_zero(self, small_mesh):
        assert eotx_dijkstra(small_mesh, 4)[4] == 0.0

    def test_disconnected_node_is_infinite(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.8
        topo = Topology(matrix)
        costs = eotx_dijkstra(topo, 0)
        assert math.isinf(costs[2])


class TestFormulationEquivalence:
    def test_bellman_ford_matches_dijkstra_small(self, relay_topology, diamond_topology):
        for topo, destination in [(relay_topology, 2),
                                  (diamond_topology, diamond_topology.node_count - 1)]:
            assert_costs_close(eotx_bellman_ford(topo, destination),
                               eotx_dijkstra(topo, destination))

    def test_recursive_matches_dijkstra_small(self, relay_topology, diamond_topology):
        for topo, destination in [(relay_topology, 2),
                                  (diamond_topology, diamond_topology.node_count - 1)]:
            assert_costs_close(eotx_recursive(topo, destination),
                               eotx_dijkstra(topo, destination))

    @pytest.mark.parametrize("seed", range(6))
    def test_bellman_ford_matches_dijkstra_random(self, seed):
        topo = random_mesh(10, density=0.45, seed=seed)
        destination = seed % topo.node_count
        assert_costs_close(eotx_bellman_ford(topo, destination),
                           eotx_dijkstra(topo, destination))

    @pytest.mark.parametrize("seed", range(4))
    def test_recursive_matches_dijkstra_random(self, seed):
        topo = random_mesh(8, density=0.5, seed=seed)
        destination = 0
        assert_costs_close(eotx_recursive(topo, destination),
                           eotx_dijkstra(topo, destination))

    def test_testbed_costs_finite_and_consistent(self, testbed):
        destination = 5
        dijkstra = eotx_dijkstra(testbed, destination)
        bellman = eotx_bellman_ford(testbed, destination)
        assert_costs_close(dijkstra, bellman, tol=1e-6)
        assert np.isfinite(dijkstra).all()


class TestEotxOrder:
    def test_order_is_by_cost(self, small_mesh):
        destination = 2
        order = eotx_order(small_mesh, destination)
        costs = eotx_dijkstra(small_mesh, destination)
        assert order[0] == destination
        assert all(costs[a] <= costs[b] + 1e-12 for a, b in zip(order, order[1:]))

    def test_order_can_differ_from_etx_order(self, gap_topology):
        """On the Figure 5-1 topology node B is useless under ETX ordering but
        ranks ahead of the source under EOTX."""
        destination = gap_topology.node_count - 1
        etx = etx_to_destination(gap_topology, destination)
        eotx = eotx_dijkstra(gap_topology, destination)
        source, node_b = 0, 2
        assert etx[node_b] >= etx[source]          # ETX: B no closer than src
        assert eotx[node_b] < eotx[source]          # EOTX: B strictly closer


@given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_property_dijkstra_equals_bellman_ford(size, seed):
    """Algorithm 5 and Algorithms 3+4 agree on arbitrary random meshes."""
    topo = random_mesh(size, density=0.5, seed=seed)
    destination = seed % size
    assert_costs_close(eotx_bellman_ford(topo, destination),
                       eotx_dijkstra(topo, destination))


@given(st.integers(min_value=4, max_value=9), st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_property_eotx_never_exceeds_etx(size, seed):
    """Opportunistic cost is a lower bound on single-path cost."""
    topo = random_mesh(size, density=0.5, seed=seed)
    destination = 0
    etx = etx_to_destination(topo, destination)
    eotx = eotx_dijkstra(topo, destination)
    for node in range(size):
        if not math.isinf(etx[node]):
            assert eotx[node] <= etx[node] + 1e-9
