"""Tests for the min-cost information flow LP and Proposition 4 (EOTX = LP)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.eotx import eotx_dijkstra
from repro.metrics.lp import solve_min_cost_flow, verify_flow_conservation
from repro.topology.generator import chain, diamond, random_mesh, two_hop_relay


class TestLpBasics:
    def test_single_link(self):
        topo = chain(1, link_delivery=0.5)
        solution = solve_min_cost_flow(topo, 0, 1)
        assert solution.total_cost == pytest.approx(2.0, abs=1e-6)
        assert solution.z[0] == pytest.approx(2.0, abs=1e-6)

    def test_relay_topology(self, relay_topology):
        solution = solve_min_cost_flow(relay_topology, 0, 2)
        assert solution.total_cost == pytest.approx(1.51, abs=1e-6)

    def test_scaling_property(self, relay_topology):
        """Proposition 1: the optimum scales linearly with demand."""
        one = solve_min_cost_flow(relay_topology, 0, 2, demand=1.0)
        five = solve_min_cost_flow(relay_topology, 0, 2, demand=5.0)
        assert five.total_cost == pytest.approx(5 * one.total_cost, rel=1e-6)

    def test_flow_conservation(self, diamond_topology):
        destination = diamond_topology.node_count - 1
        solution = solve_min_cost_flow(diamond_topology, 0, destination)
        assert verify_flow_conservation(solution, 0, destination)

    def test_same_source_destination_rejected(self, relay_topology):
        with pytest.raises(ValueError):
            solve_min_cost_flow(relay_topology, 1, 1)

    def test_unreachable_rejected(self):
        import numpy as np
        from repro.topology.graph import Topology
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.9
        with pytest.raises(ValueError):
            solve_min_cost_flow(Topology(matrix), 0, 2)

    def test_prefix_constraints_match_full_enumeration(self, diamond_topology):
        """Propositions 2-3: the cheapest-prefix constraints are sufficient."""
        destination = diamond_topology.node_count - 1
        full = solve_min_cost_flow(diamond_topology, 0, destination)
        prefix = solve_min_cost_flow(diamond_topology, 0, destination,
                                     prefix_constraints_only=True)
        assert prefix.total_cost == pytest.approx(full.total_cost, rel=1e-6)


class TestProposition4:
    """EOTX equals the LP optimum (Proposition 4, "Equivalence")."""

    @pytest.mark.parametrize("topo_builder,destination", [
        (lambda: two_hop_relay(), 2),
        (lambda: chain(3, link_delivery=0.6, skip_delivery=0.3), 3),
        (lambda: diamond(0.4, 0.7, relay_count=3), 4),
        (lambda: diamond(0.3, 0.3, relay_count=2, direct=0.1), 3),
    ])
    def test_eotx_equals_lp_on_analytic_topologies(self, topo_builder, destination):
        topo = topo_builder()
        eotx = eotx_dijkstra(topo, destination)
        lp = solve_min_cost_flow(topo, 0, destination)
        assert lp.total_cost == pytest.approx(eotx[0], rel=1e-6, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_eotx_equals_lp_on_random_meshes(self, seed):
        topo = random_mesh(7, density=0.55, seed=seed)
        destination = 0
        source = topo.node_count - 1
        eotx = eotx_dijkstra(topo, destination)
        lp = solve_min_cost_flow(topo, source, destination,
                                 prefix_constraints_only=True)
        assert lp.total_cost == pytest.approx(eotx[source], rel=1e-5, abs=1e-6)


@given(st.integers(min_value=4, max_value=7), st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_property_lp_optimum_equals_eotx(size, seed):
    """Proposition 4 as a property over random connected meshes."""
    topo = random_mesh(size, density=0.6, seed=seed)
    destination = 0
    source = size - 1
    eotx = eotx_dijkstra(topo, destination)
    lp = solve_min_cost_flow(topo, source, destination, prefix_constraints_only=True)
    assert lp.total_cost == pytest.approx(eotx[source], rel=1e-5, abs=1e-6)
