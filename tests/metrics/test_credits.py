"""Tests for Algorithm 1, TX credits (Eq. 3.3), pruning and Algorithm 6."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.credits import (
    candidate_forwarders,
    expected_transmissions,
    forwarding_plan,
    load_distribution,
    prune_forwarders,
)
from repro.metrics.eotx import eotx_dijkstra
from repro.metrics.etx import etx_to_destination
from repro.topology.generator import chain, random_mesh, two_hop_relay


def naive_algorithm_1(topology, order):
    """Literal transcription of Algorithm 1 used as a reference."""
    eps = topology.loss_matrix()
    load = {node: 0.0 for node in order}
    z = {node: 0.0 for node in order}
    load[order[-1]] = 1.0
    for position in range(len(order) - 1, 0, -1):
        node = order[position]
        closer = order[:position]
        success = 1 - np.prod([eps[node, k] for k in closer])
        z[node] = load[node] / success if success > 0 else 0.0
        for j_position in range(1, position):
            j = closer[j_position]
            prefix = np.prod([eps[node, k] for k in closer[:j_position]])
            load[j] += z[node] * prefix * (1 - eps[node, j])
    return z


class TestCandidateForwarders:
    def test_relay(self, relay_topology):
        participants, distances = candidate_forwarders(relay_topology, 0, 2)
        assert participants == [2, 1, 0]
        assert distances[2] == 0.0

    def test_only_closer_nodes_included(self, small_mesh):
        source, destination = small_mesh.node_count - 1, 0
        participants, distances = candidate_forwarders(small_mesh, source, destination)
        assert participants[0] == destination
        assert participants[-1] == source
        for node in participants[1:-1]:
            assert distances[node] < distances[source]

    def test_unreachable_source_rejected(self):
        import numpy as np
        from repro.topology.graph import Topology
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.9
        with pytest.raises(ValueError):
            candidate_forwarders(Topology(matrix), 2, 0)


class TestAlgorithm1:
    def test_relay_topology_values(self, relay_topology):
        """Hand-computed values for Figure 1-1: z_src = 1, z_R = 0.51."""
        plan = expected_transmissions(relay_topology, 0, 2)
        assert plan.z[0] == pytest.approx(1.0)
        assert plan.z[1] == pytest.approx(0.51)
        assert plan.total_cost == pytest.approx(1.51)

    def test_matches_naive_reference(self, small_mesh):
        source, destination = small_mesh.node_count - 1, 0
        plan = expected_transmissions(small_mesh, source, destination)
        reference = naive_algorithm_1(small_mesh, plan.participants)
        for node in plan.participants:
            assert plan.z[node] == pytest.approx(reference[node], abs=1e-9)

    def test_source_load_is_one(self, diamond_topology):
        destination = diamond_topology.node_count - 1
        plan = expected_transmissions(diamond_topology, 0, destination)
        assert plan.load[0] == pytest.approx(1.0)

    def test_chain_equals_etx(self):
        """On a pure chain there is no opportunism: total cost equals path ETX."""
        topo = chain(3, link_delivery=0.5)
        plan = expected_transmissions(topo, 0, 3)
        assert plan.total_cost == pytest.approx(etx_to_destination(topo, 3)[0])

    def test_total_cost_at_least_eotx(self, small_mesh):
        """ETX-ordered opportunistic cost is lower-bounded by EOTX (optimal)."""
        source, destination = small_mesh.node_count - 1, 0
        plan = expected_transmissions(small_mesh, source, destination, metric="etx")
        eotx = eotx_dijkstra(small_mesh, destination)
        assert plan.total_cost >= eotx[source] - 1e-9

    def test_eotx_order_achieves_eotx(self, small_mesh):
        """Section 5.6.2: with the EOTX order, Algorithm 1 sums to the EOTX."""
        source, destination = small_mesh.node_count - 1, 0
        plan = expected_transmissions(small_mesh, source, destination, metric="eotx")
        eotx = eotx_dijkstra(small_mesh, destination)
        assert plan.total_cost == pytest.approx(eotx[source], rel=1e-9)


class TestTxCredits:
    def test_relay_credit(self, relay_topology):
        plan = expected_transmissions(relay_topology, 0, 2)
        # Eq. 3.3: credit_R = z_R / (z_src * (1 - eps_src,R)) = 0.51 / 1.0
        assert plan.tx_credit[1] == pytest.approx(0.51)
        assert plan.tx_credit[0] == 0.0  # the source is clocked by ACKs

    def test_credits_non_negative(self, small_mesh):
        plan = expected_transmissions(small_mesh, small_mesh.node_count - 1, 0)
        assert (plan.tx_credit >= 0).all()

    def test_destination_has_no_credit(self, diamond_topology):
        destination = diamond_topology.node_count - 1
        plan = expected_transmissions(diamond_topology, 0, destination)
        assert plan.tx_credit[destination] == 0.0


class TestPruning:
    def test_low_contribution_forwarders_removed(self):
        """A relay with a tiny z must be pruned (10% rule)."""
        topo = two_hop_relay(source_to_relay=1.0, relay_to_destination=1.0,
                             source_to_destination=0.95)
        plan = expected_transmissions(topo, 0, 2)
        pruned = prune_forwarders(topo, plan)
        # Direct link dominates; the relay's z is ~5% of total -> pruned.
        assert 1 not in pruned.forwarder_list()
        assert 0 in pruned.participants and 2 in pruned.participants

    def test_source_and_destination_never_pruned(self, small_mesh):
        source, destination = small_mesh.node_count - 1, 0
        plan = expected_transmissions(small_mesh, source, destination)
        pruned = prune_forwarders(topology=small_mesh, plan=plan, fraction=0.99)
        assert pruned.participants[0] == destination
        assert pruned.participants[-1] == source

    def test_pruned_plan_is_self_consistent(self):
        """Pruned nodes lose z, load AND distance (regression).

        The old implementation zeroed ``z``/``load`` but returned pruned
        nodes still carrying finite ``distances``, so a participant check
        keyed off distances disagreed with ``participants``.
        """
        topo = two_hop_relay(source_to_relay=1.0, relay_to_destination=1.0,
                             source_to_destination=0.95)
        plan = expected_transmissions(topo, 0, 2)
        assert math.isfinite(plan.distances[1])  # a participant pre-prune
        pruned = prune_forwarders(topo, plan)
        assert 1 not in pruned.participants
        assert math.isinf(pruned.distances[1])
        assert pruned.z[1] == 0.0 and pruned.load[1] == 0.0
        # Distance-keyed and participant-keyed views now agree for every
        # node of the original plan.
        for node in plan.participants:
            assert (node in pruned.participants) == \
                math.isfinite(pruned.distances[node])
        # The original plan is untouched (its own distances stay finite).
        assert math.isfinite(plan.distances[1])
        # Surviving participants keep their distances bit for bit.
        for node in pruned.participants:
            assert pruned.distances[node] == plan.distances[node]

    def test_forwarding_plan_wrapper(self, testbed):
        plan = forwarding_plan(testbed, 17, 2)
        unpruned = forwarding_plan(testbed, 17, 2, prune=False)
        assert len(plan.participants) <= len(unpruned.participants)
        assert plan.total_cost <= unpruned.total_cost + 1e-9


class TestAlgorithm6:
    def test_load_distribution_total_equals_eotx(self, small_mesh):
        """The flow method's total cost equals the EOTX of the source."""
        source, destination = small_mesh.node_count - 1, 0
        plan = load_distribution(small_mesh, source, destination)
        eotx = eotx_dijkstra(small_mesh, destination)
        assert plan.total_cost == pytest.approx(eotx[source], rel=1e-9)

    def test_flow_method_matches_algorithm_1_under_eotx_order(self, small_mesh):
        """Section 5.6.2: Algorithm 6 and Algorithm 1 agree when the EOTX
        order is used and losses are independent."""
        source, destination = small_mesh.node_count - 1, 0
        flow_plan = load_distribution(small_mesh, source, destination)
        eotx_plan = expected_transmissions(small_mesh, source, destination, metric="eotx")
        for node in flow_plan.participants:
            assert flow_plan.z[node] == pytest.approx(eotx_plan.z[node], abs=1e-9)

    def test_edge_flows_conserve_load(self, diamond_topology):
        destination = diamond_topology.node_count - 1
        plan = load_distribution(diamond_topology, 0, destination)
        inflow_at_destination = sum(flow for (_, j), flow in plan.x.items()
                                    if j == destination)
        assert inflow_at_destination == pytest.approx(1.0, abs=1e-9)

    def test_flows_only_go_downhill(self, small_mesh):
        """Proposition 2 (water filling): flow never goes to a costlier node."""
        source, destination = small_mesh.node_count - 1, 0
        plan = load_distribution(small_mesh, source, destination)
        for (i, j), flow in plan.x.items():
            if flow > 1e-12:
                assert plan.distances[j] < plan.distances[i]


@given(st.integers(min_value=4, max_value=9), st.integers(min_value=0, max_value=300))
@settings(max_examples=25, deadline=None)
def test_property_total_cost_bracketed_by_eotx_and_etx(size, seed):
    """EOTX <= Algorithm-1 cost (ETX order) <= path ETX, for any mesh."""
    topo = random_mesh(size, density=0.55, seed=seed)
    source, destination = size - 1, 0
    etx = etx_to_destination(topo, destination)
    if math.isinf(etx[source]):
        return
    plan = expected_transmissions(topo, source, destination, metric="etx")
    eotx = eotx_dijkstra(topo, destination)
    assert eotx[source] - 1e-9 <= plan.total_cost <= etx[source] + 1e-9


@given(st.integers(min_value=4, max_value=9), st.integers(min_value=0, max_value=300))
@settings(max_examples=25, deadline=None)
def test_property_credits_reproduce_z_in_expectation(size, seed):
    """Eq. 3.3 inverted: credit_i times expected upstream receptions equals z_i."""
    topo = random_mesh(size, density=0.55, seed=seed)
    source, destination = size - 1, 0
    plan = expected_transmissions(topo, source, destination)
    delivery = topo.delivery_matrix()
    order = plan.participants
    for position, node in enumerate(order[:-1]):
        expected_receptions = sum(plan.z[up] * delivery[up, node]
                                  for up in order[position + 1:])
        if plan.tx_credit[node] > 0:
            assert plan.tx_credit[node] * expected_receptions == pytest.approx(
                plan.z[node], rel=1e-9)
