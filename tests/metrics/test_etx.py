"""Tests for the ETX metric and best-path routing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics.etx import (
    best_path,
    etx_order,
    etx_to_destination,
    hop_count,
    link_etx,
    path_etx,
)
from repro.topology.generator import chain, two_hop_relay
from repro.topology.graph import Topology


class TestLinkEtx:
    def test_forward_only(self, relay_topology):
        assert link_etx(relay_topology, 0, 1) == pytest.approx(1.0)
        assert link_etx(relay_topology, 0, 2) == pytest.approx(1 / 0.49)

    def test_ack_aware(self):
        topo = Topology(np.array([[0, 0.8], [0.5, 0]]))
        assert link_etx(topo, 0, 1, ack_aware=True) == pytest.approx(1 / (0.8 * 0.5))

    def test_unusable_link_is_infinite(self, relay_topology):
        assert math.isinf(link_etx(relay_topology, 0, 1, threshold=1.1))
        topo = Topology(np.zeros((2, 2)))
        assert math.isinf(link_etx(topo, 0, 1))


class TestEtxToDestination:
    def test_figure_1_1_values(self, relay_topology):
        distances = etx_to_destination(relay_topology, 2)
        assert distances[2] == 0.0
        assert distances[1] == pytest.approx(1.0)
        # Path through R (cost 2) beats the direct link (cost 2.04).
        assert distances[0] == pytest.approx(2.0)

    def test_chain(self):
        topo = chain(3, link_delivery=0.5)
        distances = etx_to_destination(topo, 3)
        assert distances[0] == pytest.approx(6.0)
        assert distances[2] == pytest.approx(2.0)

    def test_unreachable_node(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.9
        topo = Topology(matrix)
        distances = etx_to_destination(topo, 0)
        assert math.isinf(distances[2])

    def test_monotone_in_link_quality(self):
        good = chain(2, link_delivery=0.9)
        bad = chain(2, link_delivery=0.5)
        assert etx_to_destination(good, 2)[0] < etx_to_destination(bad, 2)[0]


class TestBestPath:
    def test_relay_preferred_over_direct(self, relay_topology):
        assert best_path(relay_topology, 0, 2) == [0, 1, 2]

    def test_direct_when_better(self):
        topo = two_hop_relay(source_to_relay=0.5, relay_to_destination=0.5,
                             source_to_destination=0.9)
        assert best_path(topo, 0, 2) == [0, 2]

    def test_path_etx_consistent_with_distance(self, small_mesh):
        destination = small_mesh.node_count - 1
        distances = etx_to_destination(small_mesh, destination)
        for source in range(small_mesh.node_count - 1):
            if math.isinf(distances[source]):
                continue
            path = best_path(small_mesh, source, destination)
            assert path[0] == source and path[-1] == destination
            assert path_etx(small_mesh, path) == pytest.approx(distances[source])

    def test_no_path_raises(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = matrix[1, 0] = 0.9
        topo = Topology(matrix)
        with pytest.raises(ValueError):
            best_path(topo, 0, 2)

    def test_hop_count(self, relay_topology):
        assert hop_count(relay_topology, 0, 2) == 2
        assert hop_count(relay_topology, 1, 2) == 1


class TestEtxOrder:
    def test_destination_first_source_reachable(self, chain_topology):
        order = etx_order(chain_topology, 3)
        assert order[0] == 3
        assert set(order) == {0, 1, 2, 3}
        distances = etx_to_destination(chain_topology, 3)
        assert all(distances[a] <= distances[b] for a, b in zip(order, order[1:]))

    def test_unreachable_nodes_omitted(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = matrix[1, 0] = 0.9
        topo = Topology(matrix)
        assert set(etx_order(topo, 0)) == {0, 1}
