"""Tests for the ETX-vs-EOTX ordering gap (Section 5.7, Proposition 6)."""

from __future__ import annotations

import pytest

from repro.metrics.gap import (
    cost_gap,
    figure_5_1_eotx_cost,
    figure_5_1_etx_cost,
    figure_5_1_gap,
    gap_survey,
    summarize_gaps,
)
from repro.topology.generator import chain, cost_gap_topology


class TestClosedForms:
    def test_etx_cost_formula(self):
        assert figure_5_1_etx_cost(0.1) == pytest.approx(11.0)
        assert figure_5_1_etx_cost(0.5) == pytest.approx(3.0)

    def test_eotx_cost_formula(self):
        assert figure_5_1_eotx_cost(0.5, 1) == pytest.approx(4.0)
        assert figure_5_1_eotx_cost(0.1, 8) == pytest.approx(1 / (1 - 0.9 ** 8) + 2)

    def test_gap_grows_as_bridge_weakens(self):
        gaps = [figure_5_1_gap(p, 8) for p in (0.3, 0.2, 0.1, 0.05, 0.01)]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_gap_limit_is_branch_count(self):
        """Proposition 6: the gap tends to k as p -> 0."""
        for k in (2, 5, 10):
            assert figure_5_1_gap(1e-4, k) == pytest.approx(k, rel=0.05)


class TestMeasuredGap:
    def test_figure_5_1_topology_measured_gap_matches_closed_form(self):
        # Bridge deliveries stay above the 5% routing threshold so the lossy
        # links remain usable by the metric computations.
        for p, k in [(0.1, 8), (0.2, 4), (0.06, 6)]:
            topo = cost_gap_topology(bridge_delivery=p, branch_count=k)
            destination = topo.node_count - 1
            result = cost_gap(topo, 0, destination)
            # ETX ordering can only use node A: exactly the paper's 1/p + 1.
            assert result.etx_cost == pytest.approx(figure_5_1_etx_cost(p), rel=1e-6)
            # The paper's EOTX expression counts only the route through B and
            # is therefore a (slightly conservative) upper bound: the real
            # EOTX-ordered cost also exploits the direct src->A receptions.
            assert result.eotx_cost <= figure_5_1_eotx_cost(p, k) + 1e-9
            assert result.gap >= figure_5_1_gap(p, k) - 1e-9
            assert result.affected

    def test_gap_is_one_when_orderings_agree(self):
        topo = chain(3, link_delivery=0.7)
        result = cost_gap(topo, 0, 3)
        assert result.gap == pytest.approx(1.0)
        assert not result.affected

    def test_gap_at_least_one(self, small_mesh):
        """The EOTX ordering never costs more than the ETX ordering."""
        for source in range(1, small_mesh.node_count):
            result = cost_gap(small_mesh, source, 0)
            assert result.gap >= 1.0 - 1e-9

    def test_testbed_gap_is_small(self, testbed):
        """Section 5.7's empirical conclusion: the ordering rarely matters in
        practice (>40% of flows unaffected, median affected gap ~0.2%)."""
        pairs = [(s, d) for s in range(0, 20, 3) for d in range(1, 20, 5) if s != d]
        survey = gap_survey(testbed, pairs)
        summary = summarize_gaps(survey)
        # The synthetic testbed is somewhat more ordering-sensitive than the
        # paper's (which reports >40% unaffected, 0.2% median gap); the
        # qualitative conclusion — the gap is marginal in practice, nowhere
        # near the contrived worst case — still holds.
        assert summary["fraction_unaffected"] >= 0.05
        assert summary["median_gap_affected"] <= 0.15
        assert summary["max_gap"] < 2.0


class TestSummary:
    def test_empty_survey(self):
        summary = summarize_gaps([])
        assert summary["fraction_unaffected"] == 1.0
        assert summary["max_gap"] == 1.0

    def test_summary_fields(self, gap_topology):
        destination = gap_topology.node_count - 1
        summary = summarize_gaps(gap_survey(gap_topology, [(0, destination)]))
        assert summary["fraction_unaffected"] == 0.0
        assert summary["max_gap"] > 2.0
