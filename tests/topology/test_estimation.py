"""Tests for probe-based link quality estimation (control-plane view)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.estimation import (
    perfect_estimates,
    probe_estimated_topology,
)
from repro.topology.generator import grid, two_hop_relay


class TestProbeEstimates:
    def test_optimism_raises_probabilities(self):
        topo = two_hop_relay(source_to_relay=0.5, relay_to_destination=0.5,
                             source_to_destination=0.3)
        estimated = probe_estimated_topology(topo, optimism_exponent=0.5, probe_count=0)
        assert estimated.delivery(0, 1) == pytest.approx(0.5 ** 0.5)
        assert estimated.delivery(0, 2) == pytest.approx(0.3 ** 0.5)

    def test_zero_links_stay_zero(self):
        topo = two_hop_relay(source_to_destination=0.49)
        topo.set_delivery(0, 2, 0.0, symmetric=True)
        estimated = probe_estimated_topology(topo, probe_count=0)
        assert estimated.delivery(0, 2) == 0.0

    def test_exponent_one_without_sampling_is_identity(self, testbed):
        estimated = probe_estimated_topology(testbed, optimism_exponent=1.0, probe_count=0)
        assert np.allclose(estimated.delivery_matrix(), testbed.delivery_matrix())

    def test_perfect_estimates_helper(self, testbed):
        assert np.allclose(perfect_estimates(testbed).delivery_matrix(),
                           testbed.delivery_matrix())

    def test_sampling_noise_is_bounded_and_deterministic(self, testbed):
        a = probe_estimated_topology(testbed, probe_count=100, seed=3)
        b = probe_estimated_topology(testbed, probe_count=100, seed=3)
        assert np.allclose(a.delivery_matrix(), b.delivery_matrix())
        c = probe_estimated_topology(testbed, probe_count=100, seed=4)
        assert not np.allclose(a.delivery_matrix(), c.delivery_matrix())
        assert a.delivery_matrix().max() <= 1.0
        assert a.delivery_matrix().min() >= 0.0

    def test_estimates_are_optimistic_on_average(self, testbed):
        estimated = probe_estimated_topology(testbed, seed=1)
        true_matrix = testbed.delivery_matrix()
        est_matrix = estimated.delivery_matrix()
        mask = true_matrix > 0.05
        assert est_matrix[mask].mean() > true_matrix[mask].mean()

    def test_preserves_names_and_positions(self, testbed):
        estimated = probe_estimated_topology(testbed, seed=0)
        assert estimated.node_count == testbed.node_count
        assert estimated.nodes[5].name == testbed.nodes[5].name
        assert estimated.nodes[5].position == testbed.nodes[5].position

    def test_positions_carried_iff_every_node_has_one(self):
        # Node 0 lacking a position must not decide for everyone (the old
        # truthiness check inspected node 0 only), and a partially
        # positioned topology must drop positions for all nodes rather
        # than carrying a ragged mix — the mobility layer depends on
        # positions either fully surviving estimation or cleanly absent.
        from repro.topology.graph import Node

        full = grid(2, 2)
        estimated = probe_estimated_topology(full, seed=1)
        assert estimated.node_positions() is not None
        assert [n.position for n in estimated.nodes] == \
            [n.position for n in full.nodes]

        ragged = grid(2, 2)
        ragged.nodes[0] = Node(0, name=ragged.nodes[0].name, position=())
        assert ragged.node_positions() is None
        estimated = probe_estimated_topology(ragged, seed=1)
        assert estimated.node_positions() is None

        # The inverse mix: node 0 positioned, a later node not — the old
        # node-0-only check carried a ragged position list.
        ragged_tail = grid(2, 2)
        ragged_tail.nodes[3] = Node(3, name=ragged_tail.nodes[3].name, position=())
        estimated = probe_estimated_topology(ragged_tail, seed=1)
        assert estimated.node_positions() is None

    def test_tuple_seed_gives_independent_refresh_noise(self, testbed):
        a = probe_estimated_topology(testbed, probe_count=100, seed=(3, 1))
        b = probe_estimated_topology(testbed, probe_count=100, seed=(3, 1))
        c = probe_estimated_topology(testbed, probe_count=100, seed=(3, 2))
        assert np.allclose(a.delivery_matrix(), b.delivery_matrix())
        assert not np.allclose(a.delivery_matrix(), c.delivery_matrix())

    def test_invalid_arguments(self, testbed):
        with pytest.raises(ValueError):
            probe_estimated_topology(testbed, optimism_exponent=0.0)
        with pytest.raises(ValueError):
            probe_estimated_topology(testbed, optimism_exponent=1.5)
        with pytest.raises(ValueError):
            probe_estimated_topology(testbed, probe_count=-1)
