"""Tests for the Topology data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.graph import Node, Topology


def square_matrix(values):
    return np.asarray(values, dtype=float)


class TestConstruction:
    def test_basic(self):
        topo = Topology(square_matrix([[0, 0.5], [0.5, 0]]))
        assert topo.node_count == 2
        assert topo.delivery(0, 1) == 0.5
        assert topo.loss(0, 1) == 0.5

    def test_diagonal_zeroed(self):
        topo = Topology(square_matrix([[0.9, 0.5], [0.5, 0.9]]))
        assert topo.delivery(0, 0) == 0.0
        assert topo.delivery(1, 1) == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 3)))

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ValueError):
            Topology(square_matrix([[0, 1.5], [0.5, 0]]))

    def test_names_and_positions(self):
        topo = Topology(square_matrix([[0, 1], [1, 0]]),
                        positions=[(0, 0), (1, 1)], names=["a", "b"])
        assert topo.nodes[0].name == "a"
        assert topo.nodes[1].position == (1.0, 1.0)

    def test_default_node_names(self):
        topo = Topology(np.zeros((3, 3)))
        assert [n.name for n in topo.nodes] == ["n0", "n1", "n2"]

    def test_mismatched_metadata_lengths(self):
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 2)), positions=[(0, 0)])
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 2)), names=["only-one"])


class TestAccessors:
    def test_loss_matrix_diagonal_is_one(self):
        topo = Topology(square_matrix([[0, 0.8], [0.8, 0]]))
        eps = topo.loss_matrix()
        assert eps[0, 0] == 1.0
        assert eps[0, 1] == pytest.approx(0.2)

    def test_neighbors_and_links(self):
        topo = Topology(square_matrix([[0, 0.8, 0.0], [0.8, 0, 0.3], [0.0, 0.3, 0]]))
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(1) == [0, 2]
        links = topo.links(threshold=0.5)
        assert (0, 1, 0.8) in links and (1, 0, 0.8) in links
        assert all(p > 0.5 for _, _, p in links)

    def test_set_delivery(self):
        topo = Topology(np.zeros((3, 3)))
        topo.set_delivery(0, 2, 0.4, symmetric=True)
        assert topo.delivery(0, 2) == 0.4
        assert topo.delivery(2, 0) == 0.4
        with pytest.raises(ValueError):
            topo.set_delivery(0, 0, 0.5)
        with pytest.raises(ValueError):
            topo.set_delivery(0, 1, 1.5)

    def test_delivery_matrix_is_a_copy(self):
        topo = Topology(square_matrix([[0, 0.8], [0.8, 0]]))
        matrix = topo.delivery_matrix()
        matrix[0, 1] = 0.0
        assert topo.delivery(0, 1) == 0.8

    def test_average_loss_rate(self):
        topo = Topology(square_matrix([[0, 0.8, 0], [0.8, 0, 0.6], [0, 0.6, 0]]))
        assert topo.average_loss_rate() == pytest.approx(0.3)
        empty = Topology(np.zeros((2, 2)))
        assert empty.average_loss_rate() == 0.0


class TestConnectivity:
    def test_connected_chain(self):
        topo = Topology(square_matrix([[0, 0.9, 0], [0.9, 0, 0.9], [0, 0.9, 0]]))
        assert topo.connectivity_check()

    def test_disconnected(self):
        topo = Topology(square_matrix([[0, 0.9, 0], [0.9, 0, 0], [0, 0, 0]]))
        assert not topo.connectivity_check()

    def test_one_way_link_is_not_strongly_connected(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 0.9
        assert not Topology(matrix).connectivity_check()


class TestSampling:
    def test_sample_receivers_respects_probabilities(self, rng):
        topo = Topology(square_matrix([[0, 1.0, 0.0], [1.0, 0, 0], [0.0, 0, 0]]))
        for _ in range(20):
            receivers = topo.sample_receivers(0, rng)
            assert receivers == [1]

    def test_sample_receivers_statistics(self):
        topo = Topology(square_matrix([[0, 0.5], [0.5, 0]]))
        rng = np.random.default_rng(0)
        hits = sum(1 in topo.sample_receivers(0, rng) for _ in range(4000))
        assert 0.45 < hits / 4000 < 0.55

    def test_subtopology(self):
        matrix = square_matrix([[0, 0.8, 0.1], [0.8, 0, 0.5], [0.1, 0.5, 0]])
        topo = Topology(matrix, names=["a", "b", "c"])
        sub = topo.subtopology([0, 2])
        assert sub.node_count == 2
        assert sub.delivery(0, 1) == 0.1
        assert sub.nodes[1].name == "c"


def test_node_default_name():
    assert Node(node_id=7).name == "n7"
