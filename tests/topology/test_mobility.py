"""Mobility / link-churn models: determinism, epoch purity, physics sanity.

The load-bearing property (mirroring the PR 3 channel models) is that a
realisation is a *pure function of (seed, epoch)*: two instances at one
seed must agree at every epoch no matter in which order each was queried —
that is what keeps back-to-back protocol runs on the same dynamic topology
and parallel sweep cells bit-identical to serial ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.generator import chain, grid, random_geometric
from repro.topology.mobility import (
    MOBILITY_KINDS,
    MOBILITY_MODELS,
    MarkovLinkChurn,
    MobilitySpec,
    RandomWaypoint,
    build_mobility_model,
)


def _bound(kind: str, seed: int = 3, **params):
    model = MOBILITY_MODELS[kind](seed=seed, **params)
    topology = chain(4, link_delivery=0.8) if kind == "link_churn" \
        else random_geometric(node_count=10, area=80.0, seed=1)
    model.bind(topology)
    return model


class TestSpec:
    def test_round_trip(self):
        spec = MobilitySpec("random_waypoint", {"speed_max": 4.0})
        clone = MobilitySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert not spec.is_static
        assert MobilitySpec().is_static

    def test_build_dispatch_and_none(self):
        assert build_mobility_model(None) is None
        assert build_mobility_model(MobilitySpec()) is None
        model = build_mobility_model(MobilitySpec("link_churn"), seed=5)
        assert isinstance(model, MarkovLinkChurn)
        assert model.seed == 5
        with pytest.raises(ValueError, match="unknown mobility kind"):
            build_mobility_model(MobilitySpec("teleport"))
        with pytest.raises(ValueError, match="bad parameter"):
            build_mobility_model(MobilitySpec("link_churn", {"warp": 1}))
        with pytest.raises(ValueError, match="no parameters"):
            build_mobility_model(MobilitySpec("none", {"speed": 1.0}))

    def test_kinds_cover_models(self):
        assert set(MOBILITY_KINDS) == {"none"} | set(MOBILITY_MODELS)


@pytest.mark.parametrize("kind", sorted(MOBILITY_MODELS))
class TestEpochPurity:
    def test_query_order_does_not_matter(self, kind):
        sequential = _bound(kind)
        scattered = _bound(kind)
        # One instance walks epochs in order, the other jumps around
        # (including backwards); realisations must match exactly.
        forward = {epoch: np.array(sequential.delivery_at(epoch))
                   for epoch in range(9)}
        for epoch in (7, 2, 8, 0, 5, 2):
            np.testing.assert_array_equal(scattered.delivery_at(epoch),
                                          forward[epoch])

    def test_seed_changes_realisation(self, kind):
        a = _bound(kind, seed=3)
        b = _bound(kind, seed=4)
        assert any(not np.array_equal(a.delivery_at(e), b.delivery_at(e))
                   for e in range(1, 8))

    def test_delivery_stays_probability(self, kind):
        model = _bound(kind)
        for epoch in range(6):
            matrix = model.delivery_at(epoch)
            assert matrix.min() >= 0.0 and matrix.max() <= 1.0
            assert np.all(np.diag(matrix) == 0.0)


class TestRandomWaypoint:
    def test_positions_move_and_stay_in_arena(self):
        model = _bound("random_waypoint", speed_min=2.0, speed_max=6.0,
                       epoch_length=1.0, area=80.0)
        first = model.positions_at(0)
        later = model.positions_at(10)
        assert not np.allclose(first[:, :2], later[:, :2])
        for epoch in range(12):
            coords = model.positions_at(epoch)[:, :2]
            assert coords.min() >= 0.0 and coords.max() <= 80.0

    def test_epoch_zero_is_the_initial_layout(self):
        topology = random_geometric(node_count=10, area=80.0, seed=1)
        model = RandomWaypoint(seed=3)
        model.bind(topology)
        expected = np.array([node.position for node in topology.nodes])
        np.testing.assert_allclose(model.positions_at(0), expected)

    def test_needs_positions(self):
        model = RandomWaypoint(seed=1)
        with pytest.raises(ValueError, match="needs node coordinates"):
            model.bind(chain(3))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(speed_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(pause_time=-1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(epoch_length=0.0)


class TestRandomWalk:
    def test_step_size_bounded_by_speed(self):
        model = _bound("random_walk", speed_min=1.0, speed_max=2.0,
                       epoch_length=0.5)
        a = model.positions_at(3)[:, :2]
        b = model.positions_at(4)[:, :2]
        step = np.linalg.norm(b - a, axis=1)
        # Reflection can only shorten the displacement, never lengthen it.
        assert step.max() <= 2.0 * 0.5 + 1e-9

    def test_reflection_keeps_nodes_in_arena(self):
        model = _bound("random_walk", speed_min=30.0, speed_max=60.0,
                       epoch_length=1.0, area=80.0)
        for epoch in range(8):
            coords = model.positions_at(epoch)[:, :2]
            assert coords.min() >= -1e-9 and coords.max() <= 80.0 + 1e-9


class TestMarkovLinkChurn:
    def test_down_links_scaled(self):
        topology = chain(4, link_delivery=0.8)
        model = MarkovLinkChurn(seed=2, epoch_length=0.5, mean_up_time=1.0,
                                mean_down_time=1.0, down_scale=0.25)
        model.bind(topology)
        base = topology.delivery_matrix()
        saw_down = False
        for epoch in range(30):
            up = model.up_mask(epoch)
            matrix = model.delivery_at(epoch)
            expected = base * np.where(up, 1.0, 0.25)
            np.testing.assert_allclose(matrix, expected)
            saw_down = saw_down or not up.all()
        assert saw_down

    def test_symmetric_churn_flaps_both_directions_together(self):
        model = MarkovLinkChurn(seed=2, epoch_length=0.5, mean_up_time=1.0,
                                mean_down_time=1.0)
        model.bind(grid(3, 3))
        for epoch in range(12):
            up = model.up_mask(epoch)
            np.testing.assert_array_equal(up, up.T)

    def test_stationary_up_fraction(self):
        # Long-run fraction of up time should track Tu / (Tu + Td).
        model = MarkovLinkChurn(seed=7, epoch_length=1.0, mean_up_time=3.0,
                                mean_down_time=1.0)
        model.bind(grid(4, 4))
        samples = [model.up_mask(epoch).mean() for epoch in range(400)]
        assert np.mean(samples) == pytest.approx(0.75, abs=0.08)

    def test_positions_unmoved(self):
        model = _bound("link_churn")
        assert model.positions_at(5) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MarkovLinkChurn(mean_up_time=0.0)
        with pytest.raises(ValueError):
            MarkovLinkChurn(down_scale=1.5)
