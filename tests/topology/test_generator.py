"""Tests for topology generators, including the synthetic testbed calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.etx import best_path, etx_to_destination
from repro.topology.generator import (
    chain,
    cost_gap_topology,
    diamond,
    grid,
    indoor_testbed,
    random_mesh,
    two_hop_relay,
)
from repro.experiments.workloads import reachable_pairs


class TestTwoHopRelay:
    def test_matches_figure_1_1(self):
        topo = two_hop_relay()
        assert topo.node_count == 3
        assert topo.delivery(0, 1) == 1.0
        assert topo.delivery(1, 2) == 1.0
        assert topo.delivery(0, 2) == pytest.approx(0.49)
        # Section 2.1.1: path ETX 2 vs direct ETX 1/0.49.
        etx = etx_to_destination(topo, 2)
        assert etx[0] == pytest.approx(2.0)


class TestChain:
    def test_structure(self):
        topo = chain(4, link_delivery=0.8)
        assert topo.node_count == 5
        assert topo.delivery(0, 1) == 0.8
        assert topo.delivery(0, 2) == 0.0

    def test_skip_links(self):
        topo = chain(4, link_delivery=0.8, skip_delivery=0.2)
        assert topo.delivery(0, 2) == 0.2
        assert topo.delivery(2, 4) == 0.2

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain(0)


class TestDiamond:
    def test_structure(self):
        topo = diamond(0.5, 0.6, relay_count=3)
        destination = topo.node_count - 1
        assert topo.node_count == 5
        for relay in (1, 2, 3):
            assert topo.delivery(0, relay) == 0.5
            assert topo.delivery(relay, destination) == 0.6
        assert topo.delivery(0, destination) == 0.0

    def test_direct_link(self):
        topo = diamond(0.5, 0.5, relay_count=2, direct=0.1)
        assert topo.delivery(0, topo.node_count - 1) == 0.1

    def test_invalid(self):
        with pytest.raises(ValueError):
            diamond(relay_count=0)


class TestGrid:
    def test_shape_and_links(self):
        topo = grid(3, 4, link_delivery=0.7, diagonal_delivery=0.0)
        assert topo.node_count == 12
        assert topo.delivery(0, 1) == 0.7
        assert topo.delivery(0, 4) == 0.7
        assert topo.delivery(0, 5) == 0.0

    def test_diagonals(self):
        topo = grid(2, 2, link_delivery=0.7, diagonal_delivery=0.3)
        assert topo.delivery(0, 3) == 0.3


class TestRandomMesh:
    def test_connected_and_symmetric(self):
        topo = random_mesh(10, density=0.5, seed=1)
        assert topo.connectivity_check()
        matrix = topo.delivery_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_deterministic(self):
        a = random_mesh(8, density=0.4, seed=5)
        b = random_mesh(8, density=0.4, seed=5)
        assert np.array_equal(a.delivery_matrix(), b.delivery_matrix())

    def test_single_node(self):
        assert random_mesh(1, density=0.5).node_count == 1


class TestCostGapTopology:
    def test_structure(self):
        topo = cost_gap_topology(bridge_delivery=0.1, branch_count=4)
        destination = topo.node_count - 1
        assert topo.node_count == 8
        assert topo.delivery(0, 1) == 0.1       # src -> A
        assert topo.delivery(0, 2) == 1.0        # src -> B
        assert topo.delivery(1, destination) == 1.0
        for branch in range(4):
            assert topo.delivery(2, 3 + branch) == 0.1
            assert topo.delivery(3 + branch, destination) == 1.0

    def test_etx_ranks_b_no_closer_than_source(self):
        """The property Proposition 6 relies on: ETX-order discards B."""
        topo = cost_gap_topology(bridge_delivery=0.1, branch_count=8)
        destination = topo.node_count - 1
        etx = etx_to_destination(topo, destination)
        assert etx[2] >= etx[0]  # B is not closer than the source under ETX

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cost_gap_topology(bridge_delivery=0.0)
        with pytest.raises(ValueError):
            cost_gap_topology(bridge_delivery=1.0)
        with pytest.raises(ValueError):
            cost_gap_topology(branch_count=0)


class TestIndoorTestbed:
    def test_size_and_connectivity(self, testbed):
        assert testbed.node_count == 20
        assert testbed.connectivity_check()
        assert testbed.nodes[0].position != ()

    def test_symmetric_links(self, testbed):
        matrix = testbed.delivery_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_link_statistics_match_paper(self, testbed):
        """Loss rates of links on best paths: 0-60% range, average about 27%
        (Section 4.1(a)); we accept a calibrated band around those values."""
        losses = []
        hops = []
        for source, destination in reachable_pairs(testbed)[::5]:
            path = best_path(testbed, source, destination)
            hops.append(len(path) - 1)
            losses.extend(1 - testbed.delivery(a, b) for a, b in zip(path[:-1], path[1:]))
        mean_loss = float(np.mean(losses))
        assert 0.15 <= mean_loss <= 0.45
        assert max(losses) <= 0.85
        assert 1 <= max(hops) <= 7
        assert min(hops) == 1

    def test_no_perfect_links(self, testbed):
        """Urban 802.11 links always lose some frames (ambient interference)."""
        assert testbed.delivery_matrix().max() <= 0.90 + 1e-9

    def test_deterministic_for_seed(self):
        a = indoor_testbed(seed=3)
        b = indoor_testbed(seed=3)
        assert np.array_equal(a.delivery_matrix(), b.delivery_matrix())

    def test_different_seed_differs(self):
        a = indoor_testbed(seed=3)
        b = indoor_testbed(seed=4)
        assert not np.array_equal(a.delivery_matrix(), b.delivery_matrix())

    def test_smaller_testbed_still_connected(self):
        topo = indoor_testbed(node_count=10, floors=2, seed=11)
        assert topo.node_count == 10
        assert topo.connectivity_check()
