"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.generator import (
    chain,
    cost_gap_topology,
    diamond,
    indoor_testbed,
    random_mesh,
    two_hop_relay,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def relay_topology():
    """The Figure 1-1 motivating example (src, R, dst)."""
    return two_hop_relay()


@pytest.fixture
def chain_topology():
    """A lossy 3-hop chain with weak skip links."""
    return chain(3, link_delivery=0.7, skip_delivery=0.2)


@pytest.fixture
def diamond_topology():
    """Source -> three lossy relays -> destination."""
    return diamond(source_to_relays=0.5, relays_to_destination=0.5, relay_count=3)


@pytest.fixture
def small_mesh():
    """A connected 8-node random mesh."""
    return random_mesh(8, density=0.5, seed=3)


@pytest.fixture(scope="session")
def testbed():
    """The synthetic 20-node indoor testbed (session-scoped: it is static)."""
    return indoor_testbed()


@pytest.fixture
def gap_topology():
    """The Figure 5-1 ETX-vs-EOTX gap topology."""
    return cost_gap_topology(bridge_delivery=0.1, branch_count=8)
