"""Style-rule fixtures, including the TYPE_CHECKING F401 regression."""

from __future__ import annotations

from repro.analysis import STYLE_RULES, run_rules


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def style(tmp_path, body, name="src/repro/mod.py"):
    write(tmp_path, name, body)
    return run_rules(tmp_path, select=STYLE_RULES)


def test_syn001_reports_syntax_errors(tmp_path):
    findings = style(tmp_path, "def broken(:\n")
    assert [f.rule for f in findings] == ["SYN001"]


def test_e501_flags_long_lines(tmp_path):
    findings = style(tmp_path, "x = 1  # " + "y" * 100 + "\n")
    assert [f.rule for f in findings] == ["E501"]
    assert "109 > 100" in findings[0].message


def test_w191_flags_tab_indentation(tmp_path):
    findings = style(tmp_path, "if True:\n\tx = 1\n")
    assert [f.rule for f in findings] == ["W191"]


def test_w291_w293_flag_trailing_whitespace(tmp_path):
    findings = style(tmp_path, "x = 1 \n   \ny = 2\n")
    assert [(f.rule, f.line) for f in findings] == [("W291", 1), ("W293", 2)]


def test_f401_flags_unused_import(tmp_path):
    findings = style(tmp_path, "import os\nx = 1\n")
    assert [f.rule for f in findings] == ["F401"]
    assert "'os'" in findings[0].message


def test_f401_accepts_used_and_reexport_idioms(tmp_path):
    assert style(tmp_path,
                 "import os\n"
                 "import repro.gf as gf  # noqa used below\n"
                 "print(os.sep, gf)\n") == []


def test_f401_exempts_init_hubs(tmp_path):
    assert style(tmp_path, "import os\n", name="src/repro/__init__.py") == []


def test_f401_exempts_import_as_same_name(tmp_path):
    assert style(tmp_path, "import os as os\n") == []


def test_f401_exempts_all_listed_names(tmp_path):
    assert style(tmp_path,
                 "from os import sep\n__all__ = [\"sep\"]\n") == []


def test_f401_exempts_type_checking_imports(tmp_path):
    """The lint fallback bug: type-only imports must not be flagged."""
    assert style(tmp_path,
                 "from typing import TYPE_CHECKING\n"
                 "if TYPE_CHECKING:\n"
                 "    from os.path import join\n"
                 "def use(path: \"join\") -> None:\n"
                 "    pass\n") == []


def test_f401_exempts_qualified_type_checking_guard(tmp_path):
    assert style(tmp_path,
                 "import typing\n"
                 "if typing.TYPE_CHECKING:\n"
                 "    import os\n") == []


def test_f401_still_flags_unused_imports_outside_the_guard(tmp_path):
    findings = style(tmp_path,
                     "from typing import TYPE_CHECKING\n"
                     "import os\n"
                     "if TYPE_CHECKING:\n"
                     "    import sys\n")
    assert [(f.rule, f.line) for f in findings] == [("F401", 2)]


def test_style_rules_cover_every_target_not_just_src(tmp_path):
    write(tmp_path, "scripts/tool.py", "import os\n")
    findings = run_rules(tmp_path, select=STYLE_RULES)
    assert [f.path for f in findings] == ["scripts/tool.py"]
