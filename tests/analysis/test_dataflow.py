"""The dataflow substrate: atom propagation, stored streams, origins."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.dataflow import MAIN_ATOM, get_dataflow
from repro.analysis.framework import AnalysisConfig, Project


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def flow_for(tmp_path, **overrides):
    config = replace(AnalysisConfig(), **overrides)
    project = Project(tmp_path, ("src",))
    return get_dataflow(project, config)


def test_generator_atom_flows_local_to_attr_to_param(tmp_path):
    write(tmp_path, "src/repro/maker.py",
          "import numpy as np\n"
          "class Holder:\n"
          "    def __init__(self):\n"
          "        rng = np.random.default_rng(7)\n"
          "        self.rng = rng\n"
          "def consume(value):\n"
          "    return value\n"
          "def hand_over():\n"
          "    h = Holder()\n"
          "    return consume(h.rng)\n")
    flow = flow_for(tmp_path)
    attr_tags = flow.tags(("attr", "repro.maker:Holder", "rng"))
    assert any(tag[0] == "gen" and tag[3] for tag in attr_tags)
    param_tags = flow.tags(("local", "repro.maker:consume", "value"))
    assert any(tag[0] == "gen" for tag in param_tags)


def test_main_atom_injected_at_configured_root(tmp_path):
    write(tmp_path, "src/repro/sim.py",
          "import numpy as np\n"
          "class Sim:\n"
          "    def __init__(self, seed):\n"
          "        self.rng = np.random.default_rng(seed)\n"
          "    def share(self):\n"
          "        return self.rng\n"
          "def borrower(sim: Sim):\n"
          "    value = sim.share()\n"
          "    return value\n")
    flow = flow_for(tmp_path, rng_main_root=("src/repro/sim.py", "Sim", "rng"))
    assert MAIN_ATOM in flow.tags(("attr", "repro.sim:Sim", "rng"))
    assert MAIN_ATOM in flow.tags(("local", "repro.sim:borrower", "value"))


def test_stored_atom_marks_counter_module_attributes(tmp_path):
    write(tmp_path, "src/repro/chan.py",
          "import numpy as np\n"
          "class Window:\n"
          "    def __init__(self, rng):\n"
          "        self.rng = rng\n"
          "def build():\n"
          "    return Window(np.random.default_rng(3))\n")
    flow = flow_for(tmp_path, purity_modules=("src/repro/chan.py",),
                    fault_modules=())
    tags = flow.tags(("attr", "repro.chan:Window", "rng"))
    assert ("stored", "repro.chan:Window", "rng") in tags


def test_direct_attr_atoms_exclude_parameter_injection(tmp_path):
    write(tmp_path, "src/repro/enc.py",
          "import numpy as np\n"
          "class Direct:\n"
          "    def __init__(self):\n"
          "        self.rng = np.random.default_rng(1)\n"
          "    def reseed(self):\n"
          "        self.rng = np.random.default_rng(2)\n"
          "class Injected:\n"
          "    def __init__(self, rng):\n"
          "        self.rng = rng\n"
          "def make_two():\n"
          "    return (Injected(np.random.default_rng(1)),\n"
          "            Injected(np.random.default_rng(2)))\n")
    flow = flow_for(tmp_path)
    direct = flow.direct_attr_atoms.get(("attr", "repro.enc:Direct", "rng"), set())
    assert len({(a[1], a[2]) for a in direct}) == 2
    injected = flow.direct_attr_atoms.get(
        ("attr", "repro.enc:Injected", "rng"), set())
    assert injected == set()
    # ...while full propagation still sees both construction sites arrive.
    arrived = flow.tags(("attr", "repro.enc:Injected", "rng"))
    assert len([tag for tag in arrived if tag[0] == "gen"]) == 2


def test_origins_walks_flow_backwards(tmp_path):
    write(tmp_path, "src/repro/pipe.py",
          "class Box:\n"
          "    def __init__(self):\n"
          "        self.item = None\n"
          "def fill(box: Box, thing):\n"
          "    box.item = thing\n"
          "def read(box: Box):\n"
          "    got = box.item\n"
          "    return got\n")
    flow = flow_for(tmp_path)
    origins = flow.origins([("local", "repro.pipe:read", "got")])
    assert ("attr", "repro.pipe:Box", "item") in origins
    assert ("local", "repro.pipe:fill", "thing") in origins


def test_unresolvable_expressions_contribute_nothing(tmp_path):
    write(tmp_path, "src/repro/dark.py",
          "def use(mystery):\n"
          "    value = mystery.spawn()\n"
          "    return value.random()\n")
    flow = flow_for(tmp_path)
    assert flow.tags(("local", "repro.dark:use", "value")) == frozenset()
