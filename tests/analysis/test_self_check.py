"""Self-check: the shipped repository passes its own analyzer."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import STYLE_RULES, all_rules, run_rules
from repro.analysis.__main__ import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def test_repository_is_clean_under_every_rule():
    findings = run_rules(REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_the_repository(capsys):
    assert main(["--no-mypy"]) == 0
    out = capsys.readouterr().out
    assert "analyze: clean" in out


def test_cli_select_subset(capsys):
    assert main(["--select", "det001,CFG001"]) == 0
    assert "analyze: clean" in capsys.readouterr().out


def test_cli_rejects_unknown_rules(capsys):
    try:
        main(["--select", "NOPE999"])
    except SystemExit as error:
        assert error.code == 2
    else:  # pragma: no cover - argparse always raises
        raise AssertionError("unknown rule must be a usage error")


def test_cli_list_rules_names_every_registered_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in all_rules():
        assert name in out


def test_style_subset_matches_lint_contract():
    # make lint's fallback runs exactly these rules through the framework.
    assert set(STYLE_RULES) == {"SYN001", "E501", "W191", "W291", "W293",
                                "F401"}
    assert run_rules(REPO_ROOT, select=STYLE_RULES) == []
