"""The call-graph substrate: indexing, type-lite inference, reachability."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    CallGraph,
    get_callgraph,
    module_name_for,
    walk_unit,
)
from repro.analysis.framework import AnalysisConfig, Project


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def build(tmp_path) -> CallGraph:
    project = Project(tmp_path, ("src",))
    return get_callgraph(project, AnalysisConfig())


def test_module_name_for_strips_src_and_init():
    assert module_name_for("src/repro/sim/events.py", "src") == "repro.sim.events"
    assert module_name_for("src/repro/__init__.py", "src") == "repro"
    assert module_name_for("tests/test_x.py", "src") is None
    assert module_name_for("src/repro/data.txt", "src") is None


def test_walk_unit_skips_nested_def_bodies():
    tree = ast.parse(
        "def outer():\n"
        "    a()\n"
        "    def inner():\n"
        "        b()\n"
        "    class C:\n"
        "        def m(self):\n"
        "            c()\n"
        "    d()\n"
    )
    outer = tree.body[0]
    calls = {node.func.id for node in walk_unit(outer.body)
             if isinstance(node, ast.Call)}
    assert calls == {"a", "d"}


def test_functions_classes_and_method_ids(tmp_path):
    write(tmp_path, "src/repro/mod.py",
          "def helper():\n"
          "    return 1\n"
          "class Thing:\n"
          "    def method(self):\n"
          "        return helper()\n")
    graph = build(tmp_path)
    assert "repro.mod:helper" in graph.functions
    assert "repro.mod:Thing.method" in graph.functions
    thing = graph.classes["repro.mod:Thing"]
    assert thing.methods == {"method": "repro.mod:Thing.method"}
    method = graph.functions["repro.mod:Thing.method"]
    assert method.class_id == "repro.mod:Thing"
    assert method.params == ("self",)


def test_resolve_call_through_imports_and_annotations(tmp_path):
    write(tmp_path, "src/repro/queue.py",
          "class Queue:\n"
          "    def push(self, item):\n"
          "        return item\n")
    write(tmp_path, "src/repro/user.py",
          "from repro.queue import Queue\n"
          "def use(q: Queue):\n"
          "    return q.push(1)\n"
          "def make():\n"
          "    return Queue()\n")
    graph = build(tmp_path)
    use = graph.functions["repro.user:use"]
    push_call = next(node for node in ast.walk(use.node)
                     if isinstance(node, ast.Call))
    assert graph.resolve_call(push_call, use) == "repro.queue:Queue.push"
    assert graph.expr_types(push_call.func.value, use) == {"repro.queue:Queue"}
    make = graph.functions["repro.user:make"]
    ctor = next(node for node in ast.walk(make.node)
                if isinstance(node, ast.Call))
    assert graph.resolve_call(ctor, make) == "repro.queue:Queue"


def test_self_and_constructor_locals_are_typed(tmp_path):
    write(tmp_path, "src/repro/owner.py",
          "class Inner:\n"
          "    def hit(self):\n"
          "        return 1\n"
          "class Outer:\n"
          "    def __init__(self):\n"
          "        self.inner = Inner()\n"
          "    def go(self):\n"
          "        return self.inner.hit()\n")
    graph = build(tmp_path)
    go = graph.functions["repro.owner:Outer.go"]
    call = next(node for node in ast.walk(go.node) if isinstance(node, ast.Call))
    assert graph.resolve_call(call, go) == "repro.owner:Inner.hit"


def test_reachability_finds_dead_code(tmp_path):
    write(tmp_path, "src/repro/cli.py",
          "from repro.work import run\n"
          "def main():\n"
          "    return run()\n")
    write(tmp_path, "src/repro/work.py",
          "def run():\n"
          "    return step()\n"
          "def step():\n"
          "    return 1\n"
          "def orphan():\n"
          "    return 2\n")
    graph = build(tmp_path)
    reachable = graph.reachable_from(("repro.cli",))
    assert "repro.work:run" in reachable
    assert "repro.work:step" in reachable
    assert "repro.work:orphan" not in reachable


def test_decorated_defs_of_reachable_modules_are_seeded(tmp_path):
    write(tmp_path, "src/repro/cli.py", "import repro.plugins\n")
    write(tmp_path, "src/repro/plugins.py",
          "def register(fn):\n"
          "    return fn\n"
          "@register\n"
          "def hook():\n"
          "    return inner()\n"
          "def inner():\n"
          "    return 3\n")
    graph = build(tmp_path)
    reachable = graph.reachable_from(("repro.cli",))
    assert "repro.plugins:hook" in reachable
    assert "repro.plugins:inner" in reachable


def test_instantiated_class_methods_are_live(tmp_path):
    write(tmp_path, "src/repro/cli.py",
          "from repro.agent import Agent\n"
          "def main():\n"
          "    return Agent()\n")
    write(tmp_path, "src/repro/agent.py",
          "class Agent:\n"
          "    def tick(self):\n"
          "        return 1\n"
          "class Unused:\n"
          "    def never(self):\n"
          "        return 2\n")
    graph = build(tmp_path)
    reachable = graph.reachable_from(("repro.cli",))
    assert "repro.agent:Agent.tick" in reachable
    assert "repro.agent:Unused.never" not in reachable


def test_callgraph_is_memoised_per_project(tmp_path):
    write(tmp_path, "src/repro/mod.py", "x = 1\n")
    project = Project(tmp_path, ("src",))
    config = AnalysisConfig()
    assert get_callgraph(project, config) is get_callgraph(project, config)
