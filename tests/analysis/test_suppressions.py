"""Suppression semantics: file scope, the SUP001 audit, --select, exit codes."""

from __future__ import annotations

import pytest

from repro.analysis import run_rules
from repro.analysis.__main__ import main


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


WALLCLOCK = "import time\nt = time.time()\n"


# -- module-scope suppressions --------------------------------------------- #

def test_file_scope_suppression_covers_the_whole_module(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "# repro: allow-DET001 file — timing harness module\n"
          "import time\n"
          "t = time.time()\n"
          "u = time.time()\n")
    assert run_rules(tmp_path, select=["DET001"]) == []


def test_file_scope_is_still_rule_specific(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "# repro: allow-PERF001 file\n" + WALLCLOCK)
    findings = run_rules(tmp_path, select=["DET001", "PERF001"])
    assert [f.rule for f in findings] == ["DET001"]


@pytest.mark.parametrize("placement", ["trailing", "standalone", "file"])
def test_every_placement_suppresses_and_counts_as_used(tmp_path, placement):
    if placement == "trailing":
        body = "import time\nt = time.time()  # repro: allow-DET001 reason\n"
    elif placement == "standalone":
        body = "import time\n# repro: allow-DET001 reason\nt = time.time()\n"
    else:
        body = "# repro: allow-DET001 file\nimport time\nt = time.time()\n"
    write(tmp_path, "src/repro/x.py", body)
    assert run_rules(tmp_path, select=["DET001", "SUP001"]) == []


# -- the unused-suppression audit ------------------------------------------ #

def test_unused_suppression_is_flagged(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "x = 1  # repro: allow-DET001 nothing here needs this\n")
    findings = run_rules(tmp_path, select=["DET001", "SUP001"])
    assert len(findings) == 1
    assert findings[0].rule == "SUP001"
    assert "unused suppression" in findings[0].message
    assert "allow-DET001" in findings[0].message


def test_unused_file_scope_suppression_names_its_scope(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "# repro: allow-DET001 file\nx = 1\n")
    findings = run_rules(tmp_path, select=["DET001", "SUP001"])
    assert len(findings) == 1
    assert "anywhere in this file" in findings[0].message


def test_audit_only_covers_rules_that_ran(tmp_path):
    # The PERF001 comment is unused, but PERF001 did not run: a partial
    # --select must not flag comments belonging to rules it skipped.
    write(tmp_path, "src/repro/x.py",
          "x = 1  # repro: allow-PERF001 legacy path\n")
    assert run_rules(tmp_path, select=["DET001", "SUP001"]) == []
    findings = run_rules(tmp_path, select=["PERF001", "SUP001"])
    assert [f.rule for f in findings] == ["SUP001"]


def test_select_sup001_alone_audits_against_all_rules_silently(tmp_path):
    write(tmp_path, "src/repro/x.py",
          WALLCLOCK +                       # a real DET001 finding ...
          "u = time.time()  # repro: allow-DET001 used\n"
          "y = 2  # repro: allow-PERF001 unused\n")
    findings = run_rules(tmp_path, select=["SUP001"])
    # ... is NOT reported (rules ran only to credit suppressions), the
    # used DET001 comment is not flagged, the unused PERF001 one is.
    assert [f.rule for f in findings] == ["SUP001"]
    assert "allow-PERF001" in findings[0].message


def test_sup001_findings_can_themselves_be_suppressed(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "# repro: allow-SUP001 — kept for a cron-only rule subset\n"
          "x = 1  # repro: allow-DET001\n")
    assert run_rules(tmp_path, select=["DET001", "SUP001"]) == []


# -- mentions are not suppressions ----------------------------------------- #

def test_docstring_mention_is_neither_site_nor_cover(tmp_path):
    write(tmp_path, "src/repro/x.py",
          '"""Docs quoting the `# repro: allow-DET001` syntax."""\n'
          "import time\n"
          "t = time.time()\n")
    findings = run_rules(tmp_path, select=["DET001", "SUP001"])
    assert [f.rule for f in findings] == ["DET001"]


def test_string_literal_mention_is_not_audited(tmp_path):
    write(tmp_path, "src/repro/x.py",
          'MESSAGE = "annotate with # repro: allow-DET001 when measuring"\n')
    assert run_rules(tmp_path, select=["DET001", "SUP001"]) == []


def test_directive_must_open_its_comment(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "import time\n"
          "t = time.time()  # see docs on repro: allow-DET001\n")
    findings = run_rules(tmp_path, select=["DET001", "SUP001"])
    assert [f.rule for f in findings] == ["DET001"]


# -- CLI: --select validation, exit codes, output formats ------------------- #

def test_unknown_rule_name_errors_before_running(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_rules(tmp_path, select=["NOPE999"])


def test_cli_exit_codes_clean_and_dirty(tmp_path, capsys):
    write(tmp_path, "src/repro/x.py", "x = 1\n")
    assert main(["--root", str(tmp_path), "--select", "DET001,SUP001"]) == 0
    assert "clean" in capsys.readouterr().out
    write(tmp_path, "src/repro/y.py", WALLCLOCK)
    assert main(["--root", str(tmp_path), "--select", "DET001"]) == 1
    assert "1 finding(s)" in capsys.readouterr().out


def test_cli_github_format_emits_error_annotations(tmp_path, capsys):
    write(tmp_path, "src/repro/x.py", WALLCLOCK)
    status = main(["--root", str(tmp_path), "--select", "DET001",
                   "--format", "github"])
    out = capsys.readouterr().out
    assert status == 1
    assert "::error file=src/repro/x.py,line=2,title=DET001::" in out


def test_cli_github_format_escapes_newlines():
    from repro.analysis.__main__ import _github_annotation
    from repro.analysis.framework import Finding
    rendered = _github_annotation(
        Finding("DET001", "src/repro/x.py", 3, "bad%\nworse"))
    assert rendered == ("::error file=src/repro/x.py,line=3,"
                        "title=DET001::bad%25%0Aworse")
