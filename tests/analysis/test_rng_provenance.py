"""DET101: interprocedural RNG provenance, proven on accept/reject fixtures."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def det_config(**overrides) -> AnalysisConfig:
    defaults = dict(
        purity_modules=("src/repro/chan.py",),
        fault_modules=(),
        rng_main_root=("src/repro/sim.py", "Sim", "rng"),
    )
    defaults.update(overrides)
    return replace(AnalysisConfig(), **defaults)


SIM = ("import numpy as np\n"
       "class Sim:\n"
       "    def __init__(self, seed):\n"
       "        self.rng = np.random.default_rng(seed)\n")


def test_per_query_derivation_is_accepted(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/chan.py",
          "import numpy as np\n"
          "class Channel:\n"
          "    def __init__(self, seed):\n"
          "        self.seed = seed\n"
          "    def sample(self, counter):\n"
          "        rng = np.random.default_rng((self.seed, counter))\n"
          "        return rng.random()\n")
    assert run_rules(tmp_path, config=det_config(), select=["DET101"]) == []


def test_main_rng_leak_into_counter_module_is_rejected(tmp_path):
    write(tmp_path, "src/repro/sim.py",
          SIM +
          "    def leak(self):\n"
          "        return self.rng\n")
    write(tmp_path, "src/repro/chan.py",
          "from repro.sim import Sim\n"
          "class Channel:\n"
          "    def sample(self, sim: Sim):\n"
          "        shared = sim.leak()\n"
          "        return shared.random()\n")
    findings = run_rules(tmp_path, config=det_config(), select=["DET101"])
    assert len(findings) == 1
    assert findings[0].path == "src/repro/chan.py"
    assert "main" in findings[0].message


def test_stored_generator_draw_is_query_order_dependent(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/chan.py",
          "import numpy as np\n"
          "class Window:\n"
          "    def __init__(self, rng):\n"
          "        self.rng = rng\n"
          "    def sample(self):\n"
          "        return self.rng.random()\n"
          "def build():\n"
          "    return Window(np.random.default_rng(9))\n")
    findings = run_rules(tmp_path, config=det_config(), select=["DET101"])
    assert len(findings) == 1
    assert "query-order" in findings[0].message
    assert "Window.rng" in findings[0].message


def test_two_direct_construction_sites_confuse_streams(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/enc.py",
          "import numpy as np\n"
          "class Encoder:\n"
          "    def __init__(self, seed):\n"
          "        self.rng = np.random.default_rng(seed)\n"
          "    def reset(self, seed):\n"
          "        self.rng = np.random.default_rng((seed, 1))\n")
    findings = run_rules(tmp_path, config=det_config(), select=["DET101"])
    assert len(findings) == 1
    assert "distinct construction sites" in findings[0].message


def test_dependency_injection_is_not_stream_confusion(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/enc.py",
          "import numpy as np\n"
          "class Encoder:\n"
          "    def __init__(self, rng):\n"
          "        self.rng = rng\n"
          "def harness():\n"
          "    return Encoder(np.random.default_rng(1))\n"
          "def agent():\n"
          "    return Encoder(np.random.default_rng(2))\n")
    assert run_rules(tmp_path, config=det_config(), select=["DET101"]) == []


def test_unseeded_provenance_is_unattributable(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/chan.py",
          "import numpy as np\n"
          "def helper():\n"
          "    return np.random.default_rng()\n"
          "def sample():\n"
          "    rng = helper()\n"
          "    return rng.random()\n")
    findings = run_rules(tmp_path, config=det_config(), select=["DET101"])
    assert len(findings) == 1
    assert "no declared stream root" in findings[0].message


def test_unresolvable_receivers_are_skipped_not_guessed(tmp_path):
    write(tmp_path, "src/repro/sim.py", SIM)
    write(tmp_path, "src/repro/chan.py",
          "def sample(mystery):\n"
          "    return mystery.rng.random()\n")
    assert run_rules(tmp_path, config=det_config(), select=["DET101"]) == []


def test_shipped_tree_has_attributable_rng_flow():
    from pathlib import Path
    root = Path(__file__).resolve().parents[2]
    assert run_rules(root, select=["DET101"]) == []
