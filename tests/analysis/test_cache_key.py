"""CACHE001: cache-key coverage, proven live against the real tree.

Mirrors the CFG001 acceptance pattern: copy the shipped ``src/repro``
package, sabotage the store's ``config_fingerprint`` into a hand-coded
field list, inject a fake ``RunConfig`` field, and assert the analyzer
names the knob that stopped feeding the spec hash (while the unmodified
tree — whose fingerprint enumerates ``fields(RunConfig)`` — stays clean).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import repro
from repro.analysis import run_rules

REPO_SRC = Path(repro.__file__).resolve().parent  # <repo>/src/repro
RUNNER = "src/repro/experiments/runner.py"
STORE = "src/repro/experiments/orchestrator/store.py"

#: The enumeration loop CACHE001 exists to protect (must match store.py).
ENUMERATION = """\
    for config_field in fields(RunConfig):
        fingerprint[config_field.name] = _jsonable(getattr(config, config_field.name))
"""


def copy_tree(tmp_path) -> Path:
    shutil.copytree(REPO_SRC, tmp_path / "src" / "repro",
                    ignore=shutil.ignore_patterns("__pycache__"))
    return tmp_path


def inject_fake_field(root: Path) -> None:
    runner = root / RUNNER
    text = runner.read_text(encoding="utf-8")
    marker = "    seed: int = 0"
    assert marker in text  # the injection anchor still exists
    # Read the field somewhere so CFG001's threading check stays satisfied
    # in trees where both rules run; CACHE001 is what must catch it here.
    runner.write_text(text.replace(
        marker, marker + "\n    fake_knob: int = 0", 1), encoding="utf-8")


def hand_code_fingerprint(root: Path) -> None:
    """Replace the ``fields(RunConfig)`` enumeration with a frozen list."""
    store = root / STORE
    text = store.read_text(encoding="utf-8")
    assert ENUMERATION in text  # the protected loop still looks as expected
    from dataclasses import fields

    from repro.experiments.runner import RunConfig

    lines = "".join(
        f'    fingerprint["{f.name}"] = _jsonable(config.{f.name})\n'
        for f in fields(RunConfig))
    store.write_text(text.replace(ENUMERATION, lines, 1), encoding="utf-8")


def test_shipped_tree_enumerates_fields(tmp_path):
    root = copy_tree(tmp_path)
    assert run_rules(root, select=["CACHE001"]) == []


def test_enumeration_covers_fake_fields_automatically(tmp_path):
    # fields(RunConfig) is future-proof: a brand-new knob needs no store edit.
    root = copy_tree(tmp_path)
    inject_fake_field(root)
    assert run_rules(root, select=["CACHE001"]) == []


def test_hand_coded_list_covering_every_field_is_accepted(tmp_path):
    root = copy_tree(tmp_path)
    hand_code_fingerprint(root)
    assert run_rules(root, select=["CACHE001"]) == []


def test_hand_coded_list_missing_a_field_is_rejected(tmp_path):
    root = copy_tree(tmp_path)
    hand_code_fingerprint(root)  # freezes today's field list...
    inject_fake_field(root)      # ...then a new knob lands
    findings = run_rules(root, select=["CACHE001"])
    assert len(findings) == 1
    assert "fake_knob" in findings[0].message
    assert "alias" in findings[0].message
    assert findings[0].path == STORE


def test_missing_fingerprint_function_is_rejected(tmp_path):
    root = copy_tree(tmp_path)
    store = root / STORE
    text = store.read_text(encoding="utf-8")
    store.write_text(text.replace("def config_fingerprint", "def fingerprint_cfg"),
                     encoding="utf-8")
    findings = run_rules(root, select=["CACHE001"])
    assert len(findings) == 1
    assert "config_fingerprint" in findings[0].message


def test_tree_without_a_store_module_skips_the_rule(tmp_path):
    root = copy_tree(tmp_path)
    (root / STORE).unlink()
    assert run_rules(root, select=["CACHE001"]) == []
