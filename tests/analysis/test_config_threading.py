"""CFG001: the un-threaded-field detector, proven live against the real tree.

The acceptance test of the rule: copy the shipped ``src/repro`` package,
inject a fake ``RunConfig`` field nobody reads, and assert the analyzer
rejects the tree (while the unmodified copy stays clean).  Synthetic
fixtures then pin the spec-plumbing half of the rule.
"""

from __future__ import annotations

import shutil
from dataclasses import replace
from pathlib import Path

import repro
from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig

REPO_SRC = Path(repro.__file__).resolve().parent  # <repo>/src/repro
RUNNER = "src/repro/experiments/runner.py"


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def copy_tree(tmp_path) -> Path:
    shutil.copytree(REPO_SRC, tmp_path / "src" / "repro",
                    ignore=shutil.ignore_patterns("__pycache__"))
    return tmp_path


def test_shipped_tree_is_fully_threaded(tmp_path):
    root = copy_tree(tmp_path)
    assert run_rules(root, select=["CFG001"]) == []


def test_fake_unthreaded_field_is_rejected(tmp_path):
    root = copy_tree(tmp_path)
    runner = root / RUNNER
    text = runner.read_text(encoding="utf-8")
    marker = "    seed: int = 0"
    assert marker in text  # the injection anchor still exists
    runner.write_text(text.replace(
        marker, marker + "\n    fake_knob: int = 0", 1), encoding="utf-8")
    findings = run_rules(root, select=["CFG001"])
    assert len(findings) == 1
    assert "fake_knob" in findings[0].message
    assert "never read" in findings[0].message
    assert findings[0].path == RUNNER


def test_validation_in_post_init_does_not_count_as_threading(tmp_path):
    root = copy_tree(tmp_path)
    runner = root / RUNNER
    text = runner.read_text(encoding="utf-8")
    marker = "    seed: int = 0"
    injected = text.replace(
        marker, marker + "\n    fake_knob: int = 0", 1).replace(
        "    def __post_init__(self) -> None:",
        "    def __post_init__(self) -> None:\n"
        "        if self.fake_knob < 0:\n"
        "            raise ValueError(\"fake_knob must be non-negative\")", 1)
    assert "fake_knob < 0" in injected
    runner.write_text(injected, encoding="utf-8")
    findings = run_rules(root, select=["CFG001"])
    assert len(findings) == 1 and "fake_knob" in findings[0].message


MINI_CONFIG = """
from dataclasses import dataclass


@dataclass
class MiniConfig:
    knob: int = 1
"""

MINI_CONSUMER = "def use(config):\n    return config.knob + 1\n"

MINI_SPEC = """
from dataclasses import fields

from repro.experiments.mini import MiniConfig


class ScenarioSpec:
    def to_dict(self):
        return {"run": {}}

    @classmethod
    def from_dict(cls, data):
        data.get("run")
        return cls()


def check(path):
    return path in {f.name for f in fields(MiniConfig)}
"""


def mini_config():
    return replace(AnalysisConfig(),
                   config_class=("src/repro/experiments/mini.py", "MiniConfig"),
                   spec_module="src/repro/spec.py")


def test_spec_plumbing_accepts_the_full_pattern(tmp_path):
    write(tmp_path, "src/repro/experiments/mini.py", MINI_CONFIG)
    write(tmp_path, "src/repro/consumer.py", MINI_CONSUMER)
    write(tmp_path, "src/repro/spec.py", MINI_SPEC)
    assert run_rules(tmp_path, config=mini_config(), select=["CFG001"]) == []


def test_spec_must_validate_against_dataclass_fields(tmp_path):
    write(tmp_path, "src/repro/experiments/mini.py", MINI_CONFIG)
    write(tmp_path, "src/repro/consumer.py", MINI_CONSUMER)
    write(tmp_path, "src/repro/spec.py",
          MINI_SPEC.replace("{f.name for f in fields(MiniConfig)}", "set()"))
    findings = run_rules(tmp_path, config=mini_config(), select=["CFG001"])
    assert any("fields(MiniConfig)" in f.message for f in findings)


def test_spec_round_trip_must_carry_the_run_section(tmp_path):
    write(tmp_path, "src/repro/experiments/mini.py", MINI_CONFIG)
    write(tmp_path, "src/repro/consumer.py", MINI_CONSUMER)
    write(tmp_path, "src/repro/spec.py",
          MINI_SPEC.replace('return {"run": {}}', "return {}"))
    findings = run_rules(tmp_path, config=mini_config(), select=["CFG001"])
    assert any("to_dict" in f.message for f in findings)
