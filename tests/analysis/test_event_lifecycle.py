"""EVT101: event-handle lifecycle, proven on accept/reject fixtures."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig

QUEUE = ("class Handle:\n"
         "    def cancel(self):\n"
         "        pass\n"
         "class EventQueue:\n"
         "    def schedule(self, delay, callback):\n"
         "        return Handle()\n"
         "    def schedule_at(self, time, callback):\n"
         "        return Handle()\n"
         "    def schedule_callback(self, delay, callback):\n"
         "        pass\n"
         "    def schedule_callback_at(self, time, callback):\n"
         "        pass\n")


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def evt_config(**overrides) -> AnalysisConfig:
    defaults = dict(
        event_queue_classes=(("src/repro/events.py", "EventQueue"),),
    )
    defaults.update(overrides)
    return replace(AnalysisConfig(), **defaults)


def check(tmp_path, user_text):
    write(tmp_path, "src/repro/events.py", QUEUE)
    write(tmp_path, "src/repro/user.py",
          "from repro.events import EventQueue\n" + user_text)
    return run_rules(tmp_path, config=evt_config(), select=["EVT101"])


def test_discarded_handle_is_rejected(tmp_path):
    findings = check(tmp_path,
                     "def fire(q: EventQueue):\n"
                     "    q.schedule(1.0, fire)\n")
    assert len(findings) == 1
    assert "schedule_callback" in findings[0].message


def test_discarded_schedule_at_suggests_callback_at(tmp_path):
    findings = check(tmp_path,
                     "def fire(q: EventQueue):\n"
                     "    q.schedule_at(1.0, fire)\n")
    assert len(findings) == 1
    assert "schedule_callback_at" in findings[0].message


def test_fire_and_forget_variants_are_accepted(tmp_path):
    assert check(tmp_path,
                 "def fire(q: EventQueue):\n"
                 "    q.schedule_callback(1.0, fire)\n"
                 "    q.schedule_callback_at(2.0, fire)\n") == []


def test_local_handle_never_discharged_is_rejected(tmp_path):
    findings = check(tmp_path,
                     "def fire(q: EventQueue):\n"
                     "    handle = q.schedule(1.0, fire)\n"
                     "    handle = None\n")
    assert len(findings) == 1
    assert "neither" in findings[0].message


def test_local_handle_cancelled_or_escaping_is_accepted(tmp_path):
    assert check(tmp_path,
                 "def cancelled(q: EventQueue):\n"
                 "    handle = q.schedule(1.0, cancelled)\n"
                 "    handle.cancel()\n"
                 "def returned(q: EventQueue):\n"
                 "    handle = q.schedule(1.0, returned)\n"
                 "    return handle\n"
                 "def passed(q: EventQueue, sink):\n"
                 "    handle = q.schedule(1.0, passed)\n"
                 "    sink(handle)\n"
                 "def collected(q: EventQueue):\n"
                 "    handle = q.schedule(1.0, collected)\n"
                 "    return [handle]\n") == []


def test_aliased_local_cancel_is_recognised(tmp_path):
    assert check(tmp_path,
                 "def fire(q: EventQueue):\n"
                 "    handle = q.schedule(1.0, fire)\n"
                 "    alias = handle\n"
                 "    alias.cancel()\n") == []


def test_attr_store_without_any_cancel_is_rejected(tmp_path):
    findings = check(tmp_path,
                     "class Mac:\n"
                     "    def __init__(self, events: EventQueue):\n"
                     "        self.events = events\n"
                     "        self._pending = None\n"
                     "    def arm(self):\n"
                     "        self._pending = self.events.schedule(1.0, self.arm)\n"
                     "    def disarm(self):\n"
                     "        self._pending = None\n")
    assert len(findings) == 1
    assert "_pending_handle" in findings[0].message
    assert "Mac._pending" in findings[0].message


def test_attr_store_with_aliased_cancel_is_accepted(tmp_path):
    assert check(tmp_path,
                 "class Mac:\n"
                 "    def __init__(self, events: EventQueue):\n"
                 "        self.events = events\n"
                 "        self._pending = None\n"
                 "    def arm(self):\n"
                 "        self._pending = self.events.schedule(1.0, self.arm)\n"
                 "    def disarm(self):\n"
                 "        held = self._pending\n"
                 "        if held is not None:\n"
                 "            held.cancel()\n"
                 "        self._pending = None\n") == []


def test_direct_argument_and_return_escape_is_accepted(tmp_path):
    assert check(tmp_path,
                 "def register(handle):\n"
                 "    return handle\n"
                 "def fire(q: EventQueue):\n"
                 "    register(q.schedule(1.0, fire))\n"
                 "def make(q: EventQueue):\n"
                 "    return q.schedule(1.0, fire)\n") == []


def test_untyped_receivers_are_skipped(tmp_path):
    assert check(tmp_path,
                 "def fire(q):\n"
                 "    q.schedule(1.0, fire)\n") == []


def test_shipped_tree_handles_are_all_discharged():
    root = Path(__file__).resolve().parents[2]
    assert run_rules(root, select=["EVT101"]) == []
