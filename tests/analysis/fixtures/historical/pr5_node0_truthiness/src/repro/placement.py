"""Fixture: the helper that reads the knob — but nothing calls it.

A refactor dropped the last call site.  The field is still *read* (so a
text-level consumption check stays green), but the read is unreachable
from the entry point, so every run silently places node 0 at the
default — the PR 5 bug class CFG101 exists to reject.
"""

from repro.runner import RunConfig


def place_nodes(config: RunConfig):
    if config.node0_at_origin:
        return [(0.0, 0.0)]
    return [(1.0, 1.0)]
