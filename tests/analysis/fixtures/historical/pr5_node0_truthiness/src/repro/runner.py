"""Fixture: the PR 5 node-0 placement bug's config surface."""

from dataclasses import dataclass


@dataclass
class RunConfig:
    """Two knobs: one threaded, one read only by dead code."""

    seed: int = 0
    node0_at_origin: bool = True
