"""Fixture entry point: builds a config and runs with it."""

from repro.runner import RunConfig


def main():
    config = RunConfig()
    return simulate(config)


def simulate(config: RunConfig):
    return config.seed
