"""Fixture: two autorate windows built over one shared generator."""

import numpy as np

from repro.channel import OnoeWindow


def build_windows():
    shared = np.random.default_rng(1234)
    return OnoeWindow(shared), OnoeWindow(shared)
