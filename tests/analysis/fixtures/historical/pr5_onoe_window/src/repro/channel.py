"""Fixture: the PR 5 shared-Onoe-window bug, reconstructed.

An autorate loss window stores a mutable Generator that was constructed
elsewhere and passed in.  Two windows built over the *same* generator
each see realisations that depend on how many draws the other window
made first — query-order dependence that DET002's per-file storage check
cannot see, because the storing class never constructs a generator.
"""


class OnoeWindow:
    """A per-link loss window drawing from an injected generator."""

    def __init__(self, rng):
        self.rng = rng

    def sample_loss(self):
        return self.rng.random()
