"""Fixture: a minimal handle-returning scheduler surface (the PR 4 queue)."""


class EventHandle:
    """A cancellable scheduled event."""

    def cancel(self):
        """Mark the event cancelled."""


class EventQueue:
    """Minimal scheduler: ``schedule`` returns a cancel handle."""

    def schedule(self, delay, callback):
        """Schedule ``callback`` after ``delay``; returns a handle."""
        return EventHandle()

    def schedule_callback(self, delay, callback):
        """Fire-and-forget schedule: no handle is created."""
