"""Fixture: the PR 4 ``_pending_handle`` leak, reconstructed.

The MAC stores the handle of a pending completion event, then *clears*
the attribute on the abort path without ever calling ``.cancel()`` — the
orphaned event later fires into recycled frame state.  Clearing is not
cancelling.
"""

from repro.events import EventQueue


class Mac:
    """Stores a schedule handle that no teardown path ever cancels."""

    def __init__(self, events: EventQueue):
        self.events = events
        self._pending_handle = None

    def start_frame(self):
        self._pending_handle = self.events.schedule(0.001, self.on_complete)

    def abort(self):
        # The bug: the attribute is cleared, the event still fires.
        self._pending_handle = None

    def on_complete(self):
        self._pending_handle = None
