"""ENG001/PERF001 fixture tests: engine parity and hot-path hygiene."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


PAIR_OK = """
class Legacy:
    def schedule(self, delay, callback):
        pass

    @property
    def empty(self):
        return True

    def run(self, until=None, max_events=None):
        return 0.0


class Fast:
    def schedule(self, delay, callback):
        pass

    @property
    def empty(self):
        return True

    def run(self, until=None, max_events=None, version_source=None):
        return 0.0

    def schedule_callback(self, delay, callback):
        pass
"""


def pair_config():
    return replace(
        AnalysisConfig(),
        parity_class_pairs=(("src/repro/q.py", "Legacy",
                             "src/repro/q.py", "Fast"),),
        parity_function_families=(),
        parity_selector_classes=(),
    )


def test_eng001_accepts_reference_plus_extensions(tmp_path):
    write(tmp_path, "src/repro/q.py", PAIR_OK)
    assert run_rules(tmp_path, config=pair_config(), select=["ENG001"]) == []


PAIR_MISSING = """
class Legacy:
    def schedule(self, delay, callback):
        pass


class Fast:
    def run(self, until=None):
        return 0.0
"""


def test_eng001_flags_missing_method(tmp_path):
    write(tmp_path, "src/repro/q.py", PAIR_MISSING)
    findings = run_rules(tmp_path, config=pair_config(), select=["ENG001"])
    assert any("lacks public method `schedule`" in f.message for f in findings)


def test_eng001_flags_default_drift(tmp_path):
    write(tmp_path, "src/repro/q.py", PAIR_OK.replace(
        "def run(self, until=None, max_events=None, version_source=None):",
        "def run(self, until=0.0, max_events=None, version_source=None):"))
    findings = run_rules(tmp_path, config=pair_config(), select=["ENG001"])
    assert any("drifted" in f.message for f in findings)


def test_eng001_flags_undefaulted_extra_param(tmp_path):
    write(tmp_path, "src/repro/q.py", PAIR_OK.replace(
        "def run(self, until=None, max_events=None, version_source=None):",
        "def run(self, until=None, max_events=None, *, version_source):"))
    findings = run_rules(tmp_path, config=pair_config(), select=["ENG001"])
    assert any("must carry a default" in f.message for f in findings)


FAMILY = """
KERNELS = {"a": impl_a, "b": impl_b}


def impl_a(vector, matrix):
    return vector


def impl_b(vector, matrix):
    return vector


def impl_ref(vector, matrix):
    return vector
"""


def family_config():
    return replace(
        AnalysisConfig(),
        parity_class_pairs=(),
        parity_function_families=(("src/repro/k.py", "KERNELS",
                                   ("impl_ref",)),),
        parity_selector_classes=(),
    )


def test_eng001_accepts_uniform_kernel_family(tmp_path):
    write(tmp_path, "src/repro/k.py", FAMILY)
    assert run_rules(tmp_path, config=family_config(), select=["ENG001"]) == []


def test_eng001_flags_kernel_signature_divergence(tmp_path):
    write(tmp_path, "src/repro/k.py",
          FAMILY.replace("def impl_b(vector, matrix):",
                         "def impl_b(matrix, vector):"))
    findings = run_rules(tmp_path, config=family_config(), select=["ENG001"])
    assert any("does not match the family signature" in f.message
               for f in findings)


SELECTORS = """
class Buffer:
    def __init__(self, n, fast=True, engine=None, kernel="mul"):
        pass


class Decoder:
    def __init__(self, n, batch_id=0, fast=True, engine=None, kernel="mul"):
        pass
"""


def selector_config():
    return replace(
        AnalysisConfig(),
        parity_class_pairs=(),
        parity_function_families=(),
        parity_selector_classes=(
            (("src/repro/s.py", "Buffer"), ("src/repro/s.py", "Decoder")),),
    )


def test_eng001_accepts_matching_selectors(tmp_path):
    write(tmp_path, "src/repro/s.py", SELECTORS)
    assert run_rules(tmp_path, config=selector_config(),
                     select=["ENG001"]) == []


def test_eng001_flags_selector_default_drift(tmp_path):
    write(tmp_path, "src/repro/s.py",
          SELECTORS.replace('kernel="mul"):\n        pass\n',
                            'kernel="nibble"):\n        pass\n', 1))
    findings = run_rules(tmp_path, config=selector_config(), select=["ENG001"])
    assert any("drifted" in f.message for f in findings)


def hot_config():
    return replace(
        AnalysisConfig(),
        hot_modules=("src/repro/hot.py",),
        slots_classes={"src/repro/hot.py": ("Handle", "Payload")},
    )


HOT_OK = """
from dataclasses import dataclass


class Handle:
    __slots__ = ("time",)


@dataclass(slots=True)
class Payload:
    data: bytes
"""


def test_perf001_accepts_slots_and_clean_module(tmp_path):
    write(tmp_path, "src/repro/hot.py", HOT_OK)
    assert run_rules(tmp_path, config=hot_config(), select=["PERF001"]) == []


def test_perf001_flags_lost_slots(tmp_path):
    write(tmp_path, "src/repro/hot.py",
          HOT_OK.replace('    __slots__ = ("time",)', "    pass"))
    findings = run_rules(tmp_path, config=hot_config(), select=["PERF001"])
    assert any("__slots__" in f.message for f in findings)


def test_perf001_flags_missing_registered_class(tmp_path):
    write(tmp_path, "src/repro/hot.py",
          HOT_OK.replace("class Handle:", "class Renamed:"))
    findings = run_rules(tmp_path, config=hot_config(), select=["PERF001"])
    assert any("not found" in f.message for f in findings)


def test_perf001_flags_lambda_in_hot_module(tmp_path):
    write(tmp_path, "src/repro/hot.py", HOT_OK + "f = lambda: None\n")
    findings = run_rules(tmp_path, config=hot_config(), select=["PERF001"])
    assert any("lambda" in f.message for f in findings)


def test_perf001_flags_print_in_hot_module(tmp_path):
    write(tmp_path, "src/repro/hot.py", HOT_OK + 'print("hi")\n')
    findings = run_rules(tmp_path, config=hot_config(), select=["PERF001"])
    assert any("print" in f.message for f in findings)


def test_perf001_suppression_covers_legacy_paths(tmp_path):
    write(tmp_path, "src/repro/hot.py",
          HOT_OK + "f = lambda: None  # repro: allow-PERF001 legacy path\n")
    assert run_rules(tmp_path, config=hot_config(), select=["PERF001"]) == []
