"""DET001/DET002/DET003 fixture tests: seeded randomness and counter purity."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def det1(tmp_path, body):
    write(tmp_path, "src/repro/mod.py", body)
    return run_rules(tmp_path, select=["DET001"])


def test_det001_flags_stdlib_random_import(tmp_path):
    findings = det1(tmp_path, "import random\n")
    assert len(findings) == 1 and "stdlib" in findings[0].message


def test_det001_flags_from_random_import(tmp_path):
    findings = det1(tmp_path, "from random import shuffle\nshuffle([])\n")
    assert [f.line for f in findings] == [1]


def test_det001_flags_unseeded_default_rng(tmp_path):
    findings = det1(tmp_path,
                    "import numpy as np\nrng = np.random.default_rng()\n")
    assert len(findings) == 1 and "unseeded" in findings[0].message


def test_det001_accepts_seeded_default_rng(tmp_path):
    assert det1(tmp_path,
                "import numpy as np\nrng = np.random.default_rng(7)\n") == []


def test_det001_flags_legacy_global_draws(tmp_path):
    findings = det1(tmp_path,
                    "import numpy as np\nx = np.random.randint(0, 9)\n")
    assert len(findings) == 1 and "legacy" in findings[0].message


def test_det001_flags_wallclock_even_via_alias(tmp_path):
    findings = det1(tmp_path,
                    "from time import perf_counter as pc\nt = pc()\n")
    assert len(findings) == 1 and "wall-clock" in findings[0].message


def test_det001_ignores_code_outside_src_prefix(tmp_path):
    write(tmp_path, "scripts/tool.py", "import time\nt = time.time()\n")
    assert run_rules(tmp_path, select=["DET001"]) == []


def det2(tmp_path, body):
    write(tmp_path, "src/repro/sim/channels.py", body)
    config = replace(AnalysisConfig(),
                     purity_modules=("src/repro/sim/channels.py",))
    return run_rules(tmp_path, config=config, select=["DET002"])


def test_det002_flags_generator_stored_on_self(tmp_path):
    findings = det2(tmp_path,
                    "import numpy as np\n"
                    "class Fading:\n"
                    "    def __init__(self, seed):\n"
                    "        self.rng = np.random.default_rng(seed)\n")
    assert len(findings) == 1
    assert "pure functions" in findings[0].message


def test_det002_flags_spawned_children(tmp_path):
    findings = det2(tmp_path,
                    "class Fading:\n"
                    "    def __init__(self, rng):\n"
                    "        self.child = rng.spawn(1)[0]\n")
    assert len(findings) == 1


def test_det002_accepts_per_query_generators(tmp_path):
    assert det2(tmp_path,
                "import numpy as np\n"
                "class Fading:\n"
                "    def __init__(self, seed):\n"
                "        self.seed = seed\n"
                "    def sample(self, epoch):\n"
                "        rng = np.random.default_rng((self.seed, epoch))\n"
                "        return rng.uniform()\n") == []


def det3(tmp_path, body):
    write(tmp_path, "src/repro/sim/faults.py", body)
    config = replace(AnalysisConfig(),
                     fault_modules=("src/repro/sim/faults.py",))
    return run_rules(tmp_path, config=config, select=["DET003"])


def test_det003_flags_generator_stored_on_fault_model(tmp_path):
    findings = det3(tmp_path,
                    "import numpy as np\n"
                    "class CrashRecover:\n"
                    "    def __init__(self, seed):\n"
                    "        self.rng = np.random.default_rng(seed)\n")
    assert len(findings) == 1
    assert findings[0].rule == "DET003"
    assert "pure functions" in findings[0].message


def test_det003_flags_spawned_children(tmp_path):
    findings = det3(tmp_path,
                    "class CrashRecover:\n"
                    "    def __init__(self, rng):\n"
                    "        self.chain_rng = rng.spawn(1)[0]\n")
    assert len(findings) == 1 and findings[0].rule == "DET003"


def test_det003_accepts_counter_based_fault_chains(tmp_path):
    assert det3(tmp_path,
                "import numpy as np\n"
                "class CrashRecover:\n"
                "    def __init__(self, seed):\n"
                "        self.seed = seed\n"
                "    def transition(self, node, counter):\n"
                "        rng = np.random.default_rng((self.seed, node, counter))\n"
                "        return rng.uniform()\n") == []


def test_det003_covers_the_real_fault_module():
    from pathlib import Path
    repo = Path(__file__).resolve().parents[2]
    assert run_rules(repo, select=["DET003"]) == []
