"""Framework mechanics: registry, suppression semantics, project loading."""

from __future__ import annotations

import ast

import pytest

from repro.analysis import INVARIANT_RULES, STYLE_RULES, all_rules, get_rule, run_rules
from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    import_aliases,
    resolve_call_name,
)


def write(root, relative, text):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def test_every_documented_rule_is_registered():
    names = set(all_rules())
    assert set(STYLE_RULES) <= names
    assert set(INVARIANT_RULES) <= names


def test_rules_have_names_and_descriptions():
    for name, rule in all_rules().items():
        assert rule.name == name
        assert rule.description


def test_get_rule_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rule("NOPE999")


def test_finding_render_is_path_line_rule():
    finding = Finding("DET001", "src/repro/x.py", 7, "boom")
    assert finding.render() == "src/repro/x.py:7: DET001 boom"


def test_project_loads_get_and_under(tmp_path):
    write(tmp_path, "src/repro/a.py", "x = 1\n")
    write(tmp_path, "src/repro/sub/b.py", "y = 2\n")
    write(tmp_path, "elsewhere/c.py", "z = 3\n")
    project = Project(tmp_path, ("src",))
    assert project.get("src/repro/a.py") is not None
    assert project.get("elsewhere/c.py") is None
    under = [source.relative for source in project.under("src/repro")]
    assert under == ["src/repro/a.py", "src/repro/sub/b.py"]


def test_trailing_suppression_covers_its_line(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "import time\n"
          "t = time.time()  # repro: allow-DET001 harness\n")
    assert run_rules(tmp_path, select=["DET001"]) == []


def test_standalone_suppression_covers_next_code_line(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "import time\n"
          "# repro: allow-DET001 — measurement harness, not simulated time\n"
          "t = time.time()\n")
    assert run_rules(tmp_path, select=["DET001"]) == []


def test_suppression_is_rule_specific(tmp_path):
    write(tmp_path, "src/repro/x.py",
          "import time\n"
          "t = time.time()  # repro: allow-PERF001\n")
    findings = run_rules(tmp_path, select=["DET001"])
    assert [f.rule for f in findings] == ["DET001"]


def test_unsuppressed_wallclock_is_reported(tmp_path):
    write(tmp_path, "src/repro/x.py", "import time\nt = time.time()\n")
    findings = run_rules(tmp_path, select=["DET001"])
    assert len(findings) == 1
    assert findings[0].line == 2


def test_import_aliases_resolve_calls():
    tree = ast.parse(
        "import time\n"
        "import numpy as np\n"
        "from time import perf_counter as pc\n"
    )
    aliases = import_aliases(tree)
    assert aliases == {"time": "time", "np": "numpy", "pc": "time.perf_counter"}
    call = ast.parse("np.random.default_rng()").body[0].value
    assert resolve_call_name(call.func, aliases) == "numpy.random.default_rng"
    bare = ast.parse("pc()").body[0].value
    assert resolve_call_name(bare.func, aliases) == "time.perf_counter"


def test_config_defaults_describe_this_repo():
    config = AnalysisConfig()
    assert config.src_prefix == "src/repro"
    assert "src" in config.project_targets()
    assert config.with_root_targets(("src",)).style_targets == ("src",)
