"""The reconstructed historical-bug corpus.

Each fixture under ``tests/analysis/fixtures/historical/`` rebuilds the
shape of a bug a past PR actually shipped and later had to chase
dynamically; each test proves the new whole-program rules reject that
shape — and accept the repaired version, so the corpus also pins rule
specificity.
"""

from __future__ import annotations

import shutil
from dataclasses import replace
from pathlib import Path

from repro.analysis import run_rules
from repro.analysis.framework import AnalysisConfig

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "historical"


def deploy(tmp_path, name: str) -> Path:
    shutil.copytree(FIXTURES / name / "src", tmp_path / "src")
    return tmp_path


def patch(root, relative, old, new):
    path = root / relative
    text = path.read_text(encoding="utf-8")
    assert text.count(old) == 1
    path.write_text(text.replace(old, new), encoding="utf-8")


# -- PR 4: the `_pending_handle` leak -> EVT101 ----------------------------- #

PR4_CONFIG = dict(
    event_queue_classes=(("src/repro/events.py", "EventQueue"),),
)


def test_pr4_pending_handle_leak_is_flagged(tmp_path):
    root = deploy(tmp_path, "pr4_pending_handle")
    config = replace(AnalysisConfig(), **PR4_CONFIG)
    findings = run_rules(root, config=config, select=["EVT101"])
    assert len(findings) == 1
    assert findings[0].path == "src/repro/mac.py"
    assert "Mac._pending_handle" in findings[0].message
    assert "no method of `Mac` ever cancels it" in findings[0].message


def test_pr4_repair_with_cancel_on_teardown_is_accepted(tmp_path):
    root = deploy(tmp_path, "pr4_pending_handle")
    patch(root, "src/repro/mac.py",
          "    def abort(self):\n"
          "        # The bug: the attribute is cleared, the event still fires.\n"
          "        self._pending_handle = None\n",
          "    def abort(self):\n"
          "        held = self._pending_handle\n"
          "        if held is not None:\n"
          "            held.cancel()\n"
          "        self._pending_handle = None\n")
    config = replace(AnalysisConfig(), **PR4_CONFIG)
    assert run_rules(root, config=config, select=["EVT101"]) == []


# -- PR 5: the shared Onoe window -> DET101 --------------------------------- #

PR5_WINDOW_CONFIG = dict(
    purity_modules=("src/repro/channel.py",),
    fault_modules=(),
)


def test_pr5_shared_onoe_window_is_flagged(tmp_path):
    root = deploy(tmp_path, "pr5_onoe_window")
    config = replace(AnalysisConfig(), **PR5_WINDOW_CONFIG)
    findings = run_rules(root, config=config, select=["DET101"])
    assert len(findings) == 1
    assert findings[0].path == "src/repro/channel.py"
    assert "query-order" in findings[0].message
    assert "OnoeWindow.rng" in findings[0].message


def test_pr5_per_query_window_repair_is_accepted(tmp_path):
    root = deploy(tmp_path, "pr5_onoe_window")
    patch(root, "src/repro/channel.py",
          "class OnoeWindow:\n"
          '    """A per-link loss window drawing from an injected generator."""\n'
          "\n"
          "    def __init__(self, rng):\n"
          "        self.rng = rng\n"
          "\n"
          "    def sample_loss(self):\n"
          "        return self.rng.random()\n",
          "import numpy as np\n"
          "\n"
          "\n"
          "class OnoeWindow:\n"
          '    """A per-link loss window re-deriving its stream per query."""\n'
          "\n"
          "    def __init__(self, seed):\n"
          "        self.seed = seed\n"
          "        self.counter = 0\n"
          "\n"
          "    def sample_loss(self):\n"
          "        self.counter += 1\n"
          "        rng = np.random.default_rng((self.seed, self.counter))\n"
          "        return rng.random()\n")
    patch(root, "src/repro/harness.py",
          "def build_windows():\n"
          "    shared = np.random.default_rng(1234)\n"
          "    return OnoeWindow(shared), OnoeWindow(shared)\n",
          "def build_windows():\n"
          "    return OnoeWindow(1234), OnoeWindow(1235)\n")
    config = replace(AnalysisConfig(), **PR5_WINDOW_CONFIG)
    assert run_rules(root, config=config, select=["DET101"]) == []


# -- PR 5: the node-0 dead-read knob -> CFG101 ------------------------------ #

PR5_NODE0_CONFIG = dict(
    config_class=("src/repro/runner.py", "RunConfig"),
    entry_modules=("repro.cli",),
)


def test_pr5_node0_dead_read_passes_cfg001_but_fails_cfg101(tmp_path):
    root = deploy(tmp_path, "pr5_node0_truthiness")
    config = replace(AnalysisConfig(), **PR5_NODE0_CONFIG)
    # The text-level rule is satisfied — the field *is* read somewhere ...
    assert run_rules(root, config=config, select=["CFG001"]) == []
    # ... but the read is unreachable from the entry point.
    findings = run_rules(root, config=config, select=["CFG101"])
    assert len(findings) == 1
    assert findings[0].path == "src/repro/runner.py"
    assert "node0_at_origin" in findings[0].message
    assert "dead code" in findings[0].message


def test_pr5_node0_repair_restores_the_call_site(tmp_path):
    root = deploy(tmp_path, "pr5_node0_truthiness")
    patch(root, "src/repro/cli.py",
          "from repro.runner import RunConfig\n",
          "from repro.placement import place_nodes\n"
          "from repro.runner import RunConfig\n")
    patch(root, "src/repro/cli.py",
          "def simulate(config: RunConfig):\n"
          "    return config.seed\n",
          "def simulate(config: RunConfig):\n"
          "    positions = place_nodes(config)\n"
          "    return (config.seed, positions)\n")
    config = replace(AnalysisConfig(), **PR5_NODE0_CONFIG)
    assert run_rules(root, config=config, select=["CFG101"]) == []
