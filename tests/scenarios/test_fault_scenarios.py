"""Fault presets and graceful degradation at the scenario layer.

The acceptance contract of the fault subsystem, end to end:

* crashing **every** MORE forwarder mid-batch yields a structured
  ``FlowAborted`` outcome (``FlowResult.aborted`` + a reason naming the
  down nodes) for all three protocols — never a hang;
* the outcome is deterministic: parallel sweep cells equal serial ones bit
  for bit with a crash/recover process active;
* the ``kilonode_stranded`` regression preset reconstructs the PR 6
  stranded-flow pathology and the monitor flags it within one check
  interval instead of letting it hang to ``max_duration``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.parallel import run_sweep
from repro.experiments.runner import RunConfig, run_single_flow
from repro.scenarios import get_preset, run_cell
from repro.sim.monitor import StallDiagnosis
from repro.topology.graph import Topology


def chain_topology(hops=3, delivery=0.9):
    n = hops + 1
    matrix = np.zeros((n, n))
    for i in range(hops):
        matrix[i, i + 1] = matrix[i + 1, i] = delivery
    return Topology(matrix)


def crash_all_relays_config(**overrides):
    """Both relays of the 3-hop chain die mid-batch and stay down."""
    defaults = dict(
        seed=1, total_packets=32, batch_size=16, packet_size=256,
        coding_payload_size=16, max_duration=30.0,
        faults={"kind": "scheduled",
                "params": {"downs": {1: [[0.01, 1e9]], 2: [[0.01, 1e9]]}}},
        refresh_period=0.5, progress_timeout=0.5)
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestStructuredAborts:
    @pytest.mark.parametrize("protocol", ("MORE", "ExOR", "Srcr"))
    def test_all_forwarders_crashed_aborts_instead_of_hanging(self, protocol):
        result = run_single_flow(chain_topology(), protocol, 0, 3,
                                 config=crash_all_relays_config())
        assert result.aborted and not result.completed
        assert "no progress" in result.abort_reason
        assert "down nodes [1, 2]" in result.abort_reason
        # The abort fired after the supervisor's bounded re-plans, long
        # before max_duration: graceful degradation, not a timeout.
        assert result.duration < 30.0

    @pytest.mark.parametrize("protocol", ("MORE", "ExOR", "Srcr"))
    def test_abort_is_deterministic(self, protocol):
        first = run_single_flow(chain_topology(), protocol, 0, 3,
                                config=crash_all_relays_config())
        second = run_single_flow(chain_topology(), protocol, 0, 3,
                                 config=crash_all_relays_config())
        assert (first.aborted, first.abort_reason, first.duration,
                first.delivered_packets) \
            == (second.aborted, second.abort_reason, second.duration,
                second.delivered_packets)

    def test_recovery_before_timeout_completes_normally(self):
        config = crash_all_relays_config(
            faults={"kind": "scheduled",
                    "params": {"downs": {1: [[0.01, 0.2]], 2: [[0.01, 0.2]]}}})
        result = run_single_flow(chain_topology(), "MORE", 0, 3, config=config)
        assert result.completed and not result.aborted


class TestFaultPresets:
    def test_fault_presets_registered(self):
        churn = get_preset("node_churn_mesh")
        assert churn.faults.kind == "crash_recover"
        assert churn.run["progress_timeout"] == 4.0
        sweep = get_preset("crash_recover_sweep")
        assert "faults.mean_uptime" in sweep.sweep
        assert len(sweep.expand()) == 3

    def test_crash_recover_sweep_parallel_matches_serial(self):
        spec = get_preset("crash_recover_sweep")
        spec.run["total_packets"] = 32  # keep the two-worker run sub-second
        serial = run_sweep(spec, workers=1, results_dir=None)
        parallel = run_sweep(spec, workers=2, results_dir=None)
        assert [cell.to_dict() for cell in serial.cells] \
            == [cell.to_dict() for cell in parallel.cells]

    def test_aborted_flows_surface_in_cell_summary(self):
        spec = get_preset("crash_recover_sweep")
        spec.protocols = ("MORE",)
        spec.sweep = {}
        # Make the churn fatal: every relay dead from t=0.01, no recovery.
        spec.faults.kind = "scheduled"
        spec.faults.params = {"downs": {1: [[0.01, 1e9]], 2: [[0.01, 1e9]],
                                        3: [[0.01, 1e9]]}}
        result = run_cell(spec.expand()[0])
        assert result.summary["MORE_aborted"] == 1.0
        (note,) = result.meta["aborted_flows"]["MORE"]
        assert note.startswith("flow 0->4:") and "no progress" in note


class TestKilonodeStrandedRegression:
    def test_monitor_flags_the_pr6_pathology_within_one_interval(self):
        """The PR 6 silent hang, reconstructed: uncapped 10% pruning on the
        kilonode mesh strands the flow; the monitor turns the former
        60-second hang into a first-interval StallDiagnosis."""
        preset = get_preset("kilonode_stranded")
        assert "max_relays" not in preset.run  # the uncapped rule IS the bug
        assert preset.run["monitor"] is True
        with pytest.raises(StallDiagnosis) as excinfo:
            run_cell(preset.expand()[0])
        diagnosis = excinfo.value
        assert diagnosis.ticks == 1  # flagged at the very first check
        assert diagnosis.now == pytest.approx(preset.run["monitor_interval"])
        (info,) = diagnosis.flows.values()
        assert info["delivered"] == 0 and info["rank"] == 0
