"""ScenarioSpec schema: round-trip, overrides, expansion, run-config rules."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig
from repro.scenarios import (
    MIN_BATCHES_PER_TRANSFER,
    ScenarioCell,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@pytest.fixture
def sweep_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="unit",
        description="unit-test scenario",
        topology=TopologySpec("chain", {"hops": 3, "link_delivery": 0.7}),
        workload=WorkloadSpec("explicit", {"pairs": [[0, 3]]}),
        protocols=("MORE", "Srcr"),
        run={"total_packets": 32, "batch_size": 8},
        seeds=(1, 2),
        sweep={"run.batch_size": (8, 16), "workload.count": (1, 2, 3)},
    )


class TestRoundTrip:
    def test_dict_round_trip(self, sweep_spec):
        clone = ScenarioSpec.from_dict(sweep_spec.to_dict())
        assert clone == sweep_spec

    def test_json_round_trip(self, sweep_spec):
        clone = ScenarioSpec.from_json(sweep_spec.to_json())
        assert clone == sweep_spec
        # JSON form is pure data: a second round-trip is byte-identical.
        assert clone.to_json() == sweep_spec.to_json()

    def test_cell_round_trip(self, sweep_spec):
        cell = sweep_spec.expand()[0]
        clone = ScenarioCell.from_dict(cell.to_dict())
        assert clone == cell
        assert clone.key() == cell.key()


class TestOverrides:
    def test_run_override(self, sweep_spec):
        spec = sweep_spec.with_overrides({"run.batch_size": 64})
        assert spec.run["batch_size"] == 64
        assert sweep_spec.run["batch_size"] == 8  # original untouched

    def test_workload_and_topology_overrides(self, sweep_spec):
        spec = sweep_spec.with_overrides({
            "workload.kind": "random_pairs",
            "workload.count": 5,
            "topology.hops": 6,
        })
        assert spec.workload.kind == "random_pairs"
        assert spec.workload.params["count"] == 5
        assert spec.topology.params["hops"] == 6

    def test_protocols_and_mode_overrides(self, sweep_spec):
        spec = sweep_spec.with_overrides({"protocols": ["MORE"], "mode": "gap"})
        assert spec.protocols == ("MORE",)
        assert spec.mode == "gap"

    def test_protocols_bare_string_means_one_protocol(self, sweep_spec):
        # `--set protocols=MORE` must not explode into ('M', 'O', 'R', 'E').
        assert sweep_spec.with_overrides({"protocols": "MORE"}).protocols == ("MORE",)
        data = sweep_spec.to_dict()
        data["protocols"] = "Srcr"
        assert ScenarioSpec.from_dict(data).protocols == ("Srcr",)

    def test_from_dict_missing_required_fields(self, sweep_spec):
        data = sweep_spec.to_dict()
        del data["topology"]
        with pytest.raises(ValueError, match="missing required"):
            ScenarioSpec.from_dict(data)
        bad_workload = sweep_spec.to_dict()
        del bad_workload["workload"]["kind"]
        with pytest.raises(ValueError, match="'kind'"):
            ScenarioSpec.from_dict(bad_workload)

    @pytest.mark.parametrize("path", ["nope.thing", "run", "run.not_a_field",
                                      "topology", "protocols.More"])
    def test_invalid_paths_raise(self, sweep_spec, path):
        with pytest.raises(ValueError):
            sweep_spec.with_overrides({path: 1})

    def test_unknown_mode_rejected(self, sweep_spec):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", topology=sweep_spec.topology,
                         workload=sweep_spec.workload, mode="bogus")


class TestExpansion:
    def test_cartesian_product_times_seeds(self, sweep_spec):
        cells = sweep_spec.expand()
        assert len(cells) == 2 * 3 * 2  # two axes (2x3 values) x two seeds

    def test_cells_are_fully_resolved(self, sweep_spec):
        for cell in sweep_spec.expand():
            assert cell.scenario.sweep == {}
            assert cell.scenario.seeds == (cell.seed,)
            for path, value in cell.axes.items():
                if path == "run.batch_size":
                    assert cell.scenario.run["batch_size"] == value

    def test_expansion_is_deterministic(self, sweep_spec):
        first = [cell.key() for cell in sweep_spec.expand()]
        second = [cell.key() for cell in sweep_spec.expand()]
        assert first == second
        assert len(set(first)) == len(first)  # keys distinguish every cell

    def test_key_changes_with_content(self, sweep_spec):
        base = sweep_spec.expand()[0]
        other_spec = sweep_spec.with_overrides({"run.total_packets": 48})
        other = other_spec.expand()[0]
        assert base.key() != other.key()


class TestRunConfig:
    def test_seed_defaults_to_cell_seed(self, sweep_spec):
        assert sweep_spec.run_config(seed=9).seed == 9

    def test_pinned_seed_wins(self, sweep_spec):
        spec = sweep_spec.with_overrides({"run.seed": 5})
        assert spec.run_config(seed=9).seed == 5

    def test_min_batches_rule(self, sweep_spec):
        spec = sweep_spec.with_overrides({"run.batch_size": 64})
        config = spec.run_config(seed=1)
        assert config.total_packets == MIN_BATCHES_PER_TRANSFER * 64

    def test_matches_plain_runconfig_when_rule_inactive(self, sweep_spec):
        config = sweep_spec.run_config(seed=3)
        assert config == RunConfig(total_packets=32, batch_size=8, seed=3)

    def test_unknown_field_rejected(self, sweep_spec):
        spec = sweep_spec
        spec.run["bogus_field"] = 1
        with pytest.raises(ValueError):
            spec.run_config(seed=1)
