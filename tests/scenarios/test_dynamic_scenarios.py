"""Dynamic-topology scenarios through the scenario layer: JSON, presets,
CLI, parallel, and the static-dynamics differential.

Covers the acceptance criteria of the mobility subsystem: every mobility
model is selectable via ScenarioSpec JSON and the CLI, every dynamic preset
replays deterministically at a fixed seed (same seed => identical epoch
realisations regardless of worker placement), parallel sweeps over the
staleness axis are bit-identical to serial ones, and — the differential —
``mobility=None`` with ``refresh_period=inf`` runs are bit-identical to the
PR 4 fast engine, pinned against golden traces captured from it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.parallel import run_sweep
from repro.scenarios import (
    MOBILITY_KINDS,
    MobilitySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_mobility,
    build_pairs,
    build_topology,
    get_preset,
    run_cell,
)

#: The dynamic presets and their mobility kind.
DYNAMIC_PRESETS = {
    "mobile_mesh": "random_waypoint",
    "churn_chain": "link_churn",
    "stale_state_sweep": "random_waypoint",
}

#: Golden traces captured from the PR 4 fast engine (pre-mobility tree):
#: (main-RNG pcg64 state, pcg64 inc, final clock, delivered packets,
#: events processed) for one full run.  The static-dynamics differential:
#: a build with the mobility subsystem present but disabled must reproduce
#: these bit for bit.
GOLDEN_STATIC_TRACES = {
    ("chain_smoke", "MORE", 1): (
        162140210354676107214045394051413108219,
        194290289479364712180083596243593368443,
        0.3284936363636375, 32, 959),
    ("chain_smoke", "ExOR", 1): (
        262489020669285114974504501367586825698,
        194290289479364712180083596243593368443,
        0.41581072727272755, 32, 643),
    ("chain_smoke", "Srcr", 1): (
        270021135536480147669701859807227879090,
        194290289479364712180083596243593368443,
        0.5227596363636337, 32, 604),
    ("random_geometric_16", "MORE", 5): (
        225090244961469672381902328286757372011,
        233193750087604940414945475171846202189,
        0.8756043636363703, 64, 799),
    ("bursty_chain", "MORE", 17): (
        250607238007632569152345185912597926028,
        78856291631749604729656725519709880197,
        1.479055636363662, 64, 3885),
}


def _shrink(spec: ScenarioSpec) -> ScenarioSpec:
    """Scale a dynamic preset down to sub-second cells."""
    spec.run.update({"total_packets": 24, "batch_size": 8, "packet_size": 256,
                     "coding_payload_size": 16})
    if spec.workload.kind == "random_pairs":
        spec.workload.params["count"] = 2
    spec.protocols = ("MORE",)
    return spec


class TestSpecIntegration:
    def test_mobility_round_trips_through_json(self):
        spec = ScenarioSpec(
            name="json_mobility",
            topology=TopologySpec("grid", {"rows": 3, "cols": 3}),
            workload=WorkloadSpec("explicit", {"pairs": [[0, 8]]}),
            mobility=MobilitySpec("random_walk", {"speed_max": 3.0}),
            run={"refresh_period": 2.0},
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.mobility == spec.mobility
        assert clone == spec

    def test_old_json_without_mobility_loads_static(self):
        data = {
            "name": "legacy", "topology": {"kind": "chain", "params": {"hops": 2}},
            "workload": {"kind": "explicit", "params": {"pairs": [[0, 2]]}},
        }
        spec = ScenarioSpec.from_dict(data)
        assert spec.mobility == MobilitySpec()
        config = spec.run_config(seed=1)
        assert config.mobility is None
        assert config.mobility_spec() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility kind"):
            ScenarioSpec(
                name="bad",
                topology=TopologySpec("chain", {"hops": 2}),
                workload=WorkloadSpec("explicit", {"pairs": [[0, 2]]}),
                mobility=MobilitySpec("levy_flight"),
            )

    def test_switching_kind_resets_stale_params(self):
        spec = get_preset("mobile_mesh")
        swapped = spec.with_overrides({"mobility.kind": "none"})
        assert swapped.mobility == MobilitySpec()
        assert swapped.run_config(seed=1).mobility is None
        kept = spec.with_overrides({"mobility.kind": "random_waypoint"})
        assert kept.mobility.params == spec.mobility.params
        with pytest.raises(ValueError, match="unknown mobility kind"):
            spec.with_overrides({"mobility.kind": "nope"})

    def test_mobility_overrides_and_sweep_axis(self):
        spec = get_preset("mobile_mesh")
        overridden = spec.with_overrides({"mobility.speed_max": 9.0})
        assert overridden.mobility.params["speed_max"] == 9.0
        assert spec.mobility.params["speed_max"] == 6.0  # original untouched
        spec.sweep["mobility.speed_max"] = (2.0, 8.0)
        cells = spec.expand()
        assert [cell.scenario.mobility.params["speed_max"] for cell in cells] \
            == [2.0, 8.0]
        assert len({cell.key() for cell in cells}) == 2

    def test_run_config_carries_mobility(self):
        spec = get_preset("churn_chain")
        config = spec.run_config(seed=3)
        assert config.mobility == spec.mobility.to_dict()
        assert config.mobility_spec().kind == "link_churn"

    def test_build_mobility_dispatch(self):
        spec = get_preset("mobile_mesh")
        topology = build_topology(spec.topology)
        model = build_mobility(spec.mobility, topology, default_seed=5)
        assert model.kind == "random_waypoint"
        assert model.seed == 5
        assert model.delivery_at(3).shape == (topology.node_count,
                                              topology.node_count)
        assert build_mobility(MobilitySpec(), topology) is None


class TestDynamicPresets:
    def test_presets_registered_with_expected_kinds(self):
        assert set(DYNAMIC_PRESETS) <= set(MOBILITY_KINDS) | {
            "mobile_mesh", "churn_chain", "stale_state_sweep"}
        for name, kind in DYNAMIC_PRESETS.items():
            spec = get_preset(name)
            assert spec.mobility.kind == kind
        sweep_values = get_preset("stale_state_sweep").sweep["run.refresh_period"]
        assert "inf" in sweep_values  # the never-refresh (stale) endpoint

    @pytest.mark.parametrize("name", sorted(DYNAMIC_PRESETS))
    def test_preset_replays_deterministically(self, name):
        """Same seed, same cell: byte-identical results on a re-run —
        i.e. identical epoch realisations regardless of query order."""
        spec = _shrink(get_preset(name))
        spec.sweep = {}
        clone = _shrink(get_preset(name))
        clone.sweep = {}
        first = run_cell(spec.expand()[0])
        again = run_cell(clone.expand()[0])
        assert first.to_dict() == again.to_dict()
        assert all(len(values) > 0 for values in first.series.values())

    def test_different_seeds_give_different_dynamics(self):
        spec = _shrink(get_preset("churn_chain"))
        spec.seeds = (1, 2)
        results = [run_cell(cell) for cell in spec.expand()]
        assert results[0].series != results[1].series


class TestStaleStateSweep:
    def _spec(self) -> ScenarioSpec:
        spec = _shrink(get_preset("stale_state_sweep"))
        spec.protocols = ("MORE", "Srcr")
        # Shrunk transfers last ~0.1-0.5 s: a 0.05 s refresh period still
        # lands several control-plane rebuilds inside each flow.
        spec.sweep["run.refresh_period"] = (0.05, "inf")
        return spec

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_sweep(self._spec(), workers=1, results_dir=None)
        parallel = run_sweep(self._spec(), workers=2, results_dir=None)
        assert [cell.to_dict() for cell in serial.cells] \
            == [cell.to_dict() for cell in parallel.cells]

    def test_staleness_axis_changes_results(self):
        """A finite refresh period must actually change protocol behaviour
        relative to compute-once plans (otherwise the axis is vacuous)."""
        cells = run_sweep(self._spec(), workers=1, results_dir=None).cells
        by_period = {cell.axes["run.refresh_period"]: cell for cell in cells}
        assert by_period[0.05].series != by_period["inf"].series


class TestStaticDynamicsDifferential:
    """mobility=None + refresh_period=inf == the PR 4 fast engine, bit for bit."""

    @pytest.mark.parametrize("preset_name,protocol,seed",
                             sorted(GOLDEN_STATIC_TRACES))
    def test_static_run_matches_golden_trace(self, preset_name, protocol, seed):
        from repro.experiments.runner import _install_flow, _make_simulator

        spec = get_preset(preset_name)
        topology = build_topology(spec.topology)
        source, destination = build_pairs(spec.workload, topology, seed)[0]
        config = spec.run_config(seed)
        assert config.mobility is None
        assert config.refresh_period == float("inf")
        sim = _make_simulator(topology, config)
        assert sim.medium.mobility is None
        control = config.control_view(topology)
        handle = _install_flow(sim, topology, protocol, source, destination,
                               config, flow_seed=seed, control_topology=control)
        sim.run(until=config.max_duration,
                stop_condition=sim.stats.all_flows_complete)
        state = sim.rng.bit_generator.state
        trace = (state["state"]["state"], state["state"]["inc"], sim.now,
                 sim.stats.flows[handle.flow_id].delivered_packets,
                 sim.events.processed)
        assert trace == GOLDEN_STATIC_TRACES[(preset_name, protocol, seed)]

    def test_explicit_static_config_equals_default(self):
        """Passing mobility=None / refresh_period=inf explicitly is the
        same code path as not mentioning dynamics at all."""
        from repro.experiments.runner import RunConfig, run_single_flow

        topology = build_topology(get_preset("chain_smoke").topology)
        base = dict(total_packets=16, batch_size=8, packet_size=256,
                    coding_payload_size=16, seed=1)
        default = run_single_flow(topology, "MORE", 0, 3,
                                  config=RunConfig(**base))
        explicit = run_single_flow(
            topology, "MORE", 0, 3,
            config=RunConfig(mobility=None, refresh_period="inf", **base))
        assert default == explicit


class TestCli:
    def test_mobility_flag_switches_model(self, capsys):
        assert main(["show", "--preset", "chain_smoke",
                     "--mobility", "link_churn",
                     "--set", "mobility.mean_down_time=0.5"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mobility"] == {"kind": "link_churn",
                                    "params": {"mean_down_time": 0.5}}

    def test_mobility_flag_rejects_unknown_kind(self, capsys):
        assert main(["show", "--preset", "chain_smoke",
                     "--mobility", "bogus"]) == 2
        assert "unknown mobility kind" in capsys.readouterr().err

    def test_dynamic_preset_runs_from_cli(self, capsys):
        assert main(["run", "--preset", "churn_chain", "--no-cache",
                     "--set", "run.total_packets=16",
                     "--set", "run.batch_size=8",
                     "--set", "protocols=MORE", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"][0]["series"]["MORE"]

    def test_refresh_period_sweepable_from_cli(self, capsys):
        assert main(["sweep", "--preset", "churn_chain", "--no-cache",
                     "--workers", "1",
                     "--set", "run.total_packets=16",
                     "--set", "run.batch_size=8",
                     "--set", "protocols=MORE",
                     "--axis", "run.refresh_period=0.5,inf", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        periods = [cell["axes"]["run.refresh_period"]
                   for cell in payload["cells"]]
        assert periods == [0.5, "inf"]

    def test_mobility_flag_disables_dynamics(self, capsys):
        """--mobility none on a dynamic preset must run clean and static."""
        assert main(["show", "--preset", "mobile_mesh",
                     "--mobility", "none"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mobility"] == {"kind": "none", "params": {}}
