"""Parallel sweep runner: serial == parallel, figure equivalence, caching."""

from __future__ import annotations

import json

import pytest

from repro.experiments.figures import figure_4_2
from repro.experiments.orchestrator.store import ResultStore
from repro.experiments.parallel import (
    load_cached_results,
    run_scenario,
    run_sweep,
)
from repro.experiments.runner import RunConfig
from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec, get_preset, run_cell


@pytest.fixture
def tiny_sweep() -> ScenarioSpec:
    """A sub-second two-cell sweep on a lossy chain."""
    return ScenarioSpec(
        name="tiny_sweep",
        topology=TopologySpec("chain", {"hops": 3, "link_delivery": 0.7,
                                        "skip_delivery": 0.2}),
        workload=WorkloadSpec("explicit", {"pairs": [[0, 3]]}),
        protocols=("MORE", "Srcr"),
        run={"total_packets": 32, "batch_size": 8, "packet_size": 256,
             "coding_payload_size": 16},
        seeds=(1,),
        sweep={"run.batch_size": (8, 16)},
    )


def test_parallel_matches_serial_bit_for_bit(tiny_sweep):
    serial = run_sweep(tiny_sweep, workers=1, results_dir=None)
    parallel = run_sweep(tiny_sweep, workers=2, results_dir=None)
    assert [cell.to_dict() for cell in serial.cells] \
        == [cell.to_dict() for cell in parallel.cells]


def test_scenario_layer_matches_figure_4_2_bit_for_bit():
    """The acceptance check: the fig_4_2 preset reproduces the serial figure
    harness exactly (reduced pair count / transfer size for test speed)."""
    spec = get_preset("fig_4_2")
    spec.workload.params["count"] = 3
    spec.run["total_packets"] = 64
    result = run_cell(spec.expand()[0])
    figure = figure_4_2(pair_count=3, seed=1,
                        config=RunConfig(total_packets=64, seed=1))
    for protocol in ("MORE", "ExOR", "Srcr"):
        assert result.series[protocol] == figure.series[protocol]


def test_multiflow_parallel_matches_serial():
    spec = get_preset("multiflow_grid")
    spec.workload.params["set_count"] = 1
    spec.run["total_packets"] = 24
    spec.run["batch_size"] = 8
    spec.sweep["workload.flow_count"] = (1, 2)
    serial = run_sweep(spec, workers=1, results_dir=None)
    parallel = run_sweep(spec, workers=2, results_dir=None)
    assert [cell.series for cell in serial.cells] \
        == [cell.series for cell in parallel.cells]


def test_gap_mode_runs_without_simulator(tmp_path):
    spec = get_preset("fig_5_1")
    spec.workload.params["count"] = 5
    result = run_sweep(spec, workers=1, results_dir=tmp_path)
    (cell,) = result.cells
    assert len(cell.series["gap"]) == 5
    assert all(gap >= 1.0 for gap in cell.series["gap"])
    assert "fraction_unaffected" in cell.summary


class TestCaching:
    def test_cache_hit_and_reuse(self, tiny_sweep, tmp_path):
        first = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        assert first.cached_cells == 0
        second = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        assert second.cached_cells == len(second.cells)
        assert [cell.to_dict() for cell in first.cells] \
            == [cell.to_dict() for cell in second.cells]

    def test_cache_layout_and_report_loader(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        files = sorted((tmp_path / "store" / "tiny_sweep").glob("cell-*.json"))
        assert len(files) == 2
        payload = json.loads(files[0].read_text())
        assert set(payload) == {"key", "cell", "result"}
        assert set(payload["key"]) == {"scenario", "spec_hash", "seed",
                                       "code_version"}
        grouped = load_cached_results(tmp_path)
        assert set(grouped) == {"tiny_sweep"}
        assert len(grouped["tiny_sweep"]) == 2

    def test_corrupt_cache_entry_is_recomputed(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        store = ResultStore(tmp_path)
        victim = store.path_for(store.key_for(tiny_sweep.expand()[0]))
        victim.write_text("{not json")
        again = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        assert again.cached_cells == len(again.cells) - 1
        assert json.loads(victim.read_text())  # rewritten with a valid entry

    def test_force_recomputes(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        forced = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path, force=True)
        assert forced.cached_cells == 0

    def test_config_change_misses_cache(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        changed = tiny_sweep.with_overrides({"run.total_packets": 40})
        rerun = run_sweep(changed, workers=1, results_dir=tmp_path)
        assert rerun.cached_cells == 0


def test_run_scenario_pins_seed(tiny_sweep):
    result = run_scenario(tiny_sweep, seed=7, workers=1, results_dir=None)
    assert {cell.seed for cell in result.cells} == {7}


def test_sweep_report_mentions_every_cell(tiny_sweep):
    result = run_sweep(tiny_sweep, workers=1, results_dir=None)
    report = result.report()
    assert report.count("[tiny_sweep]") == len(result.cells)
    assert "2 cells" in report
