"""Channel models through the scenario layer: JSON, presets, CLI, parallel.

Covers the acceptance criteria of the channel-subsystem refactor: all four
channel models are selectable via ScenarioSpec JSON and the CLI, every
channel preset replays deterministically at a fixed seed, and concurrent
multiflow cells under a non-static (Gilbert-Elliott) channel are
bit-identical between serial and parallel execution.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.parallel import run_sweep
from repro.scenarios import (
    CHANNEL_KINDS,
    ChannelSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_channel,
    build_topology,
    get_preset,
    run_cell,
)
from repro.sim.channels import CHANNEL_MODELS

#: One registered preset per channel model kind.
CHANNEL_PRESETS = {
    "static": "chain_smoke",
    "gilbert_elliott": "bursty_chain",
    "distance_fading": "fading_grid",
    "trace": "trace_random_geometric",
}


def _shrink(spec: ScenarioSpec) -> ScenarioSpec:
    """Scale a preset down to a sub-second cell."""
    spec.run.update({"total_packets": 24, "batch_size": 8, "packet_size": 256,
                     "coding_payload_size": 16})
    if spec.workload.kind == "random_pairs":
        spec.workload.params["count"] = 2
    spec.protocols = ("MORE",)
    return spec


class TestSpecIntegration:
    def test_every_kind_selectable_via_json(self):
        for kind in CHANNEL_KINDS:
            params = {"series": {"0-1": [0.5]}} if kind == "trace" else {}
            spec = ScenarioSpec(
                name=f"json_{kind}",
                topology=TopologySpec("chain", {"hops": 3}),
                workload=WorkloadSpec("explicit", {"pairs": [[0, 3]]}),
                channel=ChannelSpec(kind, params),
            )
            clone = ScenarioSpec.from_json(spec.to_json())
            assert clone.channel == spec.channel
            assert clone == spec

    def test_channel_defaults_to_static_and_old_json_loads(self):
        data = {
            "name": "legacy", "topology": {"kind": "chain", "params": {"hops": 2}},
            "workload": {"kind": "explicit", "params": {"pairs": [[0, 2]]}},
        }
        spec = ScenarioSpec.from_dict(data)
        assert spec.channel == ChannelSpec()
        assert spec.run_config(seed=1).channel is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            ScenarioSpec(
                name="bad",
                topology=TopologySpec("chain", {"hops": 2}),
                workload=WorkloadSpec("explicit", {"pairs": [[0, 2]]}),
                channel=ChannelSpec("rician"),
            )

    def test_switching_kind_resets_stale_params(self):
        # bursty_chain carries gilbert_elliott params; swapping the kind
        # must not leak them into the new model's constructor.
        spec = get_preset("bursty_chain")
        swapped = spec.with_overrides({"channel.kind": "static"})
        assert swapped.channel == ChannelSpec()
        assert swapped.run_config(seed=1).channel is None
        # Same kind: params survive (so kind + param overrides compose).
        kept = spec.with_overrides({"channel.kind": "gilbert_elliott"})
        assert kept.channel.params == spec.channel.params

    def test_channel_overrides_and_sweep_axis(self):
        spec = get_preset("bursty_chain")
        overridden = spec.with_overrides({"channel.bad_scale": 0.05})
        assert overridden.channel.params["bad_scale"] == 0.05
        assert spec.channel.params["bad_scale"] == 0.2  # original untouched
        switched = spec.with_overrides({"channel.kind": "static"})
        assert switched.channel.kind == "static"
        with pytest.raises(ValueError, match="unknown channel kind"):
            spec.with_overrides({"channel.kind": "nakagami"})
        spec.sweep["channel.bad_scale"] = (0.1, 0.4)
        cells = spec.expand()
        assert [cell.scenario.channel.params["bad_scale"] for cell in cells] \
            == [0.1, 0.4]
        assert len({cell.key() for cell in cells}) == 2

    def test_run_config_carries_channel(self):
        spec = get_preset("bursty_chain")
        config = spec.run_config(seed=3)
        assert config.channel == spec.channel.to_dict()
        assert config.channel_spec().kind == "gilbert_elliott"

    def test_build_channel_dispatch(self):
        spec = get_preset("fading_grid")
        topology = build_topology(spec.topology)
        model = build_channel(spec.channel, topology, default_seed=5)
        assert model.kind == "distance_fading"
        assert model.seed == 5
        assert model.delivery_row(0, 0.0, 0.002).shape == (topology.node_count,)


class TestChannelPresets:
    def test_one_preset_per_model(self):
        assert set(CHANNEL_PRESETS) == set(CHANNEL_MODELS)
        for kind, name in CHANNEL_PRESETS.items():
            assert get_preset(name).channel.kind == kind

    @pytest.mark.parametrize("kind", sorted(CHANNEL_PRESETS))
    def test_preset_runs_and_replays_deterministically(self, kind):
        """Same seed, same cell: byte-identical results on a re-run."""
        spec = _shrink(get_preset(CHANNEL_PRESETS[kind]))
        cell = spec.expand()[0]
        first = run_cell(cell)
        again = run_cell(spec.expand()[0])
        assert first.to_dict() == again.to_dict()
        assert all(len(values) > 0 for values in first.series.values())

    def test_different_seeds_give_different_bursty_results(self):
        spec = _shrink(get_preset("bursty_chain"))
        spec.seeds = (1, 2)
        cells = spec.expand()
        results = [run_cell(cell) for cell in cells]
        assert results[0].series != results[1].series


class TestMultiflowBursty:
    """Concurrent multiflow cells under a non-static channel."""

    def _spec(self) -> ScenarioSpec:
        spec = get_preset("multiflow_bursty")
        spec.workload.params["set_count"] = 1
        spec.run.update({"total_packets": 24, "batch_size": 8})
        spec.sweep["workload.flow_count"] = (1, 2)
        return spec

    def test_parallel_matches_serial_bit_for_bit(self):
        spec = self._spec()
        serial = run_sweep(spec, workers=1, results_dir=None)
        parallel = run_sweep(spec, workers=2, results_dir=None)
        assert [cell.to_dict() for cell in serial.cells] \
            == [cell.to_dict() for cell in parallel.cells]

    def test_fixed_seed_replay_is_deterministic(self):
        spec = self._spec()
        first = run_sweep(spec, workers=1, results_dir=None)
        again = run_sweep(self._spec(), workers=2, results_dir=None)
        assert [cell.to_dict() for cell in first.cells] \
            == [cell.to_dict() for cell in again.cells]


class TestCli:
    def test_channel_flag_switches_model(self, capsys):
        assert main(["show", "--preset", "chain_smoke",
                     "--channel", "gilbert_elliott",
                     "--set", "channel.bad_scale=0.1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["channel"] == {"kind": "gilbert_elliott",
                                   "params": {"bad_scale": 0.1}}

    def test_channel_flag_rejects_unknown_kind(self, capsys):
        assert main(["show", "--preset", "chain_smoke",
                     "--channel", "bogus"]) == 2
        assert "unknown channel kind" in capsys.readouterr().err

    def test_channel_flag_swaps_away_from_param_preset(self, capsys):
        """--channel static on a preset with channel params must run clean."""
        assert main(["run", "--preset", "bursty_chain", "--no-cache",
                     "--channel", "static", "--set", "run.total_packets=16",
                     "--set", "run.batch_size=8", "--set", "protocols=MORE",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"][0]["series"]["MORE"]

    def test_channel_flag_composes_with_set_params(self, capsys):
        """--channel KIND then --set channel.<param> lands on the new model."""
        assert main(["show", "--preset", "chain_smoke",
                     "--channel", "distance_fading",
                     "--set", "channel.coherence_time=0.25"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["channel"] == {"kind": "distance_fading",
                                   "params": {"coherence_time": 0.25}}

    def test_run_with_channel_flag(self, capsys, tmp_path):
        assert main(["run", "--preset", "chain_smoke", "--no-cache",
                     "--channel", "gilbert_elliott", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"][0]["series"]

    def test_sweep_channel_axis(self, capsys):
        assert main(["sweep", "--preset", "bursty_chain", "--no-cache",
                     "--set", "run.total_packets=16", "--set", "run.batch_size=8",
                     "--set", "protocols=MORE", "--workers", "1",
                     "--axis", "channel.bad_scale=0.1,0.5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [cell["axes"] for cell in payload["cells"]] \
            == [{"channel.bad_scale": 0.1}, {"channel.bad_scale": 0.5}]
