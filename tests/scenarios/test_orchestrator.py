"""Sweep orchestrator: cache keys, retry/timeout, journals, resume-after-kill."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import fields
from pathlib import Path

import pytest

from repro.experiments.orchestrator import (
    WorkerFaultSpec,
    ResultStore,
    SweepError,
    SweepJournal,
    WorkerPool,
    code_version,
    config_fingerprint,
    run_sweep,
    spec_hash,
)
from repro.experiments.orchestrator.store import CellKey
from repro.experiments.runner import RunConfig
from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec, get_preset

_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def tiny_sweep() -> ScenarioSpec:
    """A sub-second two-cell sweep on a lossy chain."""
    return ScenarioSpec(
        name="tiny_sweep",
        topology=TopologySpec("chain", {"hops": 3, "link_delivery": 0.7,
                                        "skip_delivery": 0.2}),
        workload=WorkloadSpec("explicit", {"pairs": [[0, 3]]}),
        protocols=("MORE", "Srcr"),
        run={"total_packets": 32, "batch_size": 8, "packet_size": 256,
             "coding_payload_size": 16},
        seeds=(1,),
        sweep={"run.batch_size": (8, 16)},
    )


@pytest.fixture
def quick_cells() -> ScenarioSpec:
    """Four fast one-protocol cells for pool fault-injection tests."""
    spec = get_preset("chain_smoke")
    spec = spec.with_overrides({"run.total_packets": 16})
    spec.seeds = (1, 2, 3, 4)
    return spec


class TestCacheKeys:
    def test_fingerprint_covers_every_runconfig_field(self):
        fingerprint = config_fingerprint(RunConfig())
        assert set(fingerprint) == {f.name for f in fields(RunConfig)}

    def test_fingerprint_is_json_stable(self):
        # refresh_period defaults to inf, which JSON cannot carry natively.
        fingerprint = config_fingerprint(RunConfig())
        assert json.loads(json.dumps(fingerprint)) == fingerprint

    def test_spec_hash_stable_across_json_round_trip(self, tiny_sweep):
        respec = ScenarioSpec.from_json(tiny_sweep.to_json())
        for original, reloaded in zip(tiny_sweep.expand(), respec.expand()):
            assert spec_hash(original) == spec_hash(reloaded)

    def test_spec_hash_changes_with_any_config_knob(self, tiny_sweep):
        baseline = spec_hash(tiny_sweep.expand()[0])
        # A knob the scenario's own run dict never mentions still feeds the
        # hash, because the *resolved* config is fingerprinted.
        changed = tiny_sweep.with_overrides({"run.estimation_exponent": 3.5})
        assert spec_hash(changed.expand()[0]) != baseline

    def test_code_version_tracks_source_content(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "a.py").write_text("x = 1\n")
        first = code_version(tree)
        assert code_version(tree) == first
        (tree / "a.py").write_text("x = 2\n")
        assert code_version(tree) != first

    def test_code_version_miss_forces_recompute(self, tiny_sweep, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        cell = tiny_sweep.expand()[0]
        hit = store.load(store.key_for(cell))
        assert hit is not None
        stale = CellKey(scenario=cell.scenario.name, spec_hash=spec_hash(cell),
                        seed=cell.seed, code_version="deadbeef")
        assert ResultStore(tmp_path, code="deadbeef").load(stale) is None

    def test_byte_identical_respec_hits(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        respec = ScenarioSpec.from_json(tiny_sweep.to_json())
        again = run_sweep(respec, workers=1, results_dir=tmp_path)
        assert again.cached_cells == len(again.cells)
        assert again.computed_cells == 0

    def test_legacy_flat_cache_is_never_read(self, tiny_sweep, tmp_path):
        first = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        # Plant a PR 1-style flat cache entry; the store must ignore it.
        legacy_dir = tmp_path / "tiny_sweep"
        legacy_dir.mkdir()
        legacy = legacy_dir / "cell-0123456789abcdef.json"
        legacy.write_text(json.dumps({"cell": {}, "result": first.cells[0].to_dict()}))
        store = ResultStore(tmp_path, code="")
        assert store.legacy_cell_files() == [legacy]
        # The report loader only walks the store, so the planted file is
        # invisible; both real cells still load from under results/store/.
        assert len(store.iter_results(["tiny_sweep"])["tiny_sweep"]) == 2
        again = run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        assert again.cached_cells == len(again.cells)  # hits come from the store


class TestRetryTimeout:
    def test_crashed_worker_is_replaced_and_cell_retried(self, quick_cells, tmp_path):
        reference = run_sweep(quick_cells, workers=1, results_dir=None)
        fault = WorkerFaultSpec(kind="crash", positions=(1,),
                          marker=str(tmp_path / "crash.marker"))
        pool = WorkerPool(2, fault=fault)
        try:
            result = run_sweep(quick_cells, workers=2, results_dir=None,
                               pool=pool, cell_timeout=10.0)
        finally:
            pool.shutdown()
        assert (tmp_path / "crash.marker").exists()  # the fault really fired
        assert [c.to_dict() for c in result.cells] \
            == [c.to_dict() for c in reference.cells]

    def test_hung_worker_is_killed_and_cell_retried(self, quick_cells, tmp_path):
        reference = run_sweep(quick_cells, workers=1, results_dir=None)
        fault = WorkerFaultSpec(kind="hang", positions=(2,),
                          marker=str(tmp_path / "hang.marker"))
        pool = WorkerPool(2, fault=fault)
        try:
            result = run_sweep(quick_cells, workers=2, results_dir=None,
                               pool=pool, cell_timeout=1.5)
        finally:
            pool.shutdown()
        assert (tmp_path / "hang.marker").exists()
        assert [c.to_dict() for c in result.cells] \
            == [c.to_dict() for c in reference.cells]

    def test_retries_exhausted_raises_sweep_error(self, quick_cells, tmp_path):
        fault = WorkerFaultSpec(kind="crash", positions=(0,),
                          marker=str(tmp_path / "always.marker"), once=False)
        pool = WorkerPool(2, fault=fault)
        try:
            with pytest.raises(SweepError, match="cell 0"):
                run_sweep(quick_cells, workers=2, results_dir=None,
                          pool=pool, cell_timeout=10.0, retries=1)
        finally:
            pool.shutdown()


class TestJournal:
    def test_journal_records_lifecycle(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        store = ResultStore(tmp_path)
        journal = SweepJournal(store, tiny_sweep)
        records = journal.records()
        events = [record["event"] for record in records]
        assert events[0] == "start"
        assert events[-1] == "finish"
        assert events.count("cell") == 2
        assert records[0]["cells"] == 2
        assert records[-1] == {"event": "finish", "computed": 2, "cached": 0}

    def test_journal_tolerates_torn_tail(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        journal = SweepJournal(ResultStore(tmp_path), tiny_sweep)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "cel')  # SIGKILL mid-append
        assert [r["event"] for r in journal.records()][-1] == "finish"

    def test_resume_journal_counts_cached_cells(self, tiny_sweep, tmp_path):
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        run_sweep(tiny_sweep, workers=1, results_dir=tmp_path)
        journal = SweepJournal(ResultStore(tmp_path), tiny_sweep)
        starts = [r for r in journal.records() if r["event"] == "start"]
        assert [record["cached"] for record in starts] == [0, 2]


def _sweep_command(extra: tuple[str, ...] = ()) -> list[str]:
    return [sys.executable, "-m", "repro", "sweep", "--preset", "chain_smoke",
            "--set", "run.total_packets=16", "--seeds", "1,2,3,4,5,6,7,8",
            "--workers", "2", "--json", *extra]


def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestResumeAfterKill:
    def test_sigkill_resume_runs_only_missing_cells(self, tmp_path):
        workdir = tmp_path / "killed"
        workdir.mkdir()
        store_dir = workdir / "results" / "store" / "chain_smoke"

        process = subprocess.Popen(_sweep_command(), cwd=workdir,
                                   env=_cli_env(),
                                   stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if store_dir.is_dir() and list(store_dir.glob("cell-*.json")):
                    break
                if process.poll() is not None:
                    break  # finished before we could kill it; still a resume
                time.sleep(0.01)
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=60)
        survivors = len(list(store_dir.glob("cell-*.json")))
        assert survivors >= 1  # something completed before the kill

        resumed = subprocess.run(_sweep_command(), cwd=workdir, env=_cli_env(),
                                 capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["cached_cells"] >= survivors
        assert payload["cached_cells"] + payload["computed_cells"] == 8

        # The resumed aggregate is bit-identical to an uninterrupted run.
        cleandir = tmp_path / "clean"
        cleandir.mkdir()
        clean = subprocess.run(_sweep_command(), cwd=cleandir, env=_cli_env(),
                               capture_output=True, text=True, timeout=300)
        assert clean.returncode == 0, clean.stderr
        assert json.loads(clean.stdout)["cells"] == payload["cells"]
