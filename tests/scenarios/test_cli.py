"""CLI smoke tests: ``python -m repro list/show/run/sweep/report``."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def repro_cli(*args: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env,
                          cwd=str(cwd) if cwd else None, timeout=300)


def test_list_names_every_figure_preset():
    proc = repro_cli("list")
    assert proc.returncode == 0, proc.stderr
    for name in ("fig_4_2", "fig_4_5", "fig_4_7", "fig_5_1", "chain_smoke"):
        assert name in proc.stdout


def test_show_emits_a_loadable_spec():
    proc = repro_cli("show", "--preset", "chain_smoke")
    assert proc.returncode == 0, proc.stderr
    spec = ScenarioSpec.from_json(proc.stdout)
    assert spec.name == "chain_smoke"
    assert spec.topology.kind == "chain"


def test_run_preset_with_override(tmp_path):
    proc = repro_cli("run", "--preset", "chain_smoke", "--no-cache",
                     "--set", "run.total_packets=16", cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert "[chain_smoke]" in proc.stdout
    assert "MORE" in proc.stdout
    assert not (tmp_path / "results").exists()  # --no-cache writes nothing


def test_run_unknown_preset_fails():
    proc = repro_cli("run", "--preset", "fig_9_9")
    assert proc.returncode != 0


def test_run_without_spec_or_preset_fails():
    proc = repro_cli("run")
    assert proc.returncode != 0
    assert "--preset" in proc.stderr


def test_sweep_caches_json_and_report_reads_it(tmp_path):
    proc = repro_cli("sweep", "--preset", "chain_smoke", "--workers", "2",
                     "--set", "run.total_packets=16", "--json", cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["scenario"] == "chain_smoke"
    assert payload["cells"]
    cache_files = list((tmp_path / "results" / "store" / "chain_smoke")
                       .glob("cell-*.json"))
    assert cache_files

    report = repro_cli("report", cwd=tmp_path)
    assert report.returncode == 0, report.stderr
    assert "chain_smoke" in report.stdout

    # Re-running the identical sweep is served from the cache.
    again = repro_cli("sweep", "--preset", "chain_smoke", "--workers", "2",
                      "--set", "run.total_packets=16", "--json", cwd=tmp_path)
    assert json.loads(again.stdout)["cached_cells"] == len(payload["cells"])


def test_sweep_accepts_spec_file_and_extra_axis(tmp_path):
    show = repro_cli("show", "--preset", "chain_smoke")
    spec_file = tmp_path / "scenario.json"
    spec_file.write_text(show.stdout)
    proc = repro_cli("sweep", "--spec", str(spec_file), "--no-cache",
                     "--set", "run.total_packets=16",
                     "--axis", "run.batch_size=8,16", "--seeds", "1,2",
                     cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.count("[chain_smoke]") == 4  # 2 batch sizes x 2 seeds


def test_report_with_no_results_explains(tmp_path):
    proc = repro_cli("report", cwd=tmp_path)
    assert proc.returncode == 1
    assert "no cached results" in proc.stdout


@pytest.mark.parametrize("preset", ["fig_4_2", "fig_4_7"])
def test_show_paper_presets(preset):
    proc = repro_cli("show", "--preset", preset)
    assert proc.returncode == 0
    assert json.loads(proc.stdout)["name"] == preset
