"""Preset registry: resolution, isolation, and consistency with the figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import default_testbed
from repro.scenarios import (
    MODES,
    build_flow_sets,
    build_pairs,
    build_topology,
    get_preset,
    list_presets,
)

#: Every paper figure the scenario layer covers.
FIGURE_PRESETS = ("fig_4_2", "fig_4_3", "fig_4_4", "fig_4_5", "fig_4_6", "fig_4_7",
                  "fig_5_1")


def test_registry_contains_paper_figures():
    names = {spec.name for spec in list_presets()}
    assert set(FIGURE_PRESETS) <= names
    assert {"chain_smoke", "grid_5x5", "random_geometric_16"} <= names


def test_get_preset_unknown_name():
    with pytest.raises(KeyError, match="unknown preset"):
        get_preset("fig_9_9")


def test_get_preset_returns_isolated_copies():
    first = get_preset("fig_4_2")
    first.run["total_packets"] = 7
    first.workload.params["count"] = 999
    second = get_preset("fig_4_2")
    assert "total_packets" not in second.run
    assert second.workload.params["count"] == 12


@pytest.mark.parametrize("spec", list_presets(), ids=lambda spec: spec.name)
def test_every_preset_is_well_formed(spec):
    assert spec.description
    assert spec.mode in MODES
    cells = spec.expand()
    assert cells
    # Run config resolves for every cell (catches bad run overrides).
    for cell in cells:
        cell.scenario.run_config(cell.seed)
    # The declared topology and workload materialise.
    topology = build_topology(spec.topology)
    cell = cells[0]
    if spec.mode == "multiflow":
        flow_sets = build_flow_sets(cell.scenario.workload, topology, cell.seed)
        assert flow_sets and all(flow_sets)
    else:
        assert build_pairs(cell.scenario.workload, topology, cell.seed)


def test_preset_round_trips_through_json():
    for spec in list_presets():
        clone = type(spec).from_json(spec.to_json())
        assert clone == spec


def test_fig_4_2_topology_matches_figure_harness():
    """The preset must describe the exact testbed the figure harness builds."""
    preset_mesh = build_topology(get_preset("fig_4_2").topology)
    figure_mesh = default_testbed()
    assert np.array_equal(preset_mesh.delivery_matrix(), figure_mesh.delivery_matrix())


def test_fig_4_7_sweeps_the_paper_batch_sizes():
    spec = get_preset("fig_4_7")
    assert spec.sweep["run.batch_size"] == (8, 16, 32, 64, 128)
    # K=128 cells stretch the transfer to two batches, like the figure harness.
    largest = [cell for cell in spec.expand()
               if cell.axes["run.batch_size"] == 128][0]
    assert largest.scenario.run_config(largest.seed).total_packets == 256
