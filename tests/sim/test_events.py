"""Tests for the discrete-event engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.events import (
    COMPACTION_MIN_CANCELLED,
    EventQueue,
    LegacyEventQueue,
    pump_timer_workload,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda label=label: fired.append(label))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        times = []
        queue.schedule(0.5, lambda: times.append(queue.now))
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [0.5, 1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule_at(3.0, lambda: fired.append(queue.now)))
        queue.run()
        assert fired == [3.0]

    def test_events_scheduled_from_callbacks_run(self):
        queue = EventQueue()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                queue.schedule(1.0, lambda: chain(depth + 1))

        queue.schedule(0.0, lambda: chain(0))
        queue.run()
        assert fired == [0, 1, 2, 3, 4, 5]


class TestRunControl:
    def test_until_stops_the_clock(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        end = queue.run(until=2.0)
        assert fired == [1]
        assert end == 2.0
        assert queue.now == 2.0

    def test_stop_condition(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(stop_condition=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_max_events(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(max_events=4)
        assert len(fired) == 4

    def test_run_on_empty_queue_with_until(self):
        queue = EventQueue()
        assert queue.run(until=7.0) == 7.0

    def test_processed_counter(self):
        queue = EventQueue()
        for _ in range(3):
            queue.schedule(1.0, lambda: None)
        queue.run()
        assert queue.processed == 3


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        queue.run()
        assert fired == []
        assert handle.cancelled

    def test_empty_property_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        assert not queue.empty
        handle.cancel()
        assert queue.empty

    def test_handle_time(self):
        queue = EventQueue()
        handle = queue.schedule(2.5, lambda: None)
        assert handle.time == 2.5

    def test_cancel_after_firing_is_a_noop(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append("x"))
        queue.run()
        assert fired == ["x"]
        assert not handle.cancelled  # fired, not cancelled
        handle.cancel()  # must not corrupt the live counter
        assert queue.empty
        queue.schedule(1.0, lambda: fired.append("y"))
        assert not queue.empty
        queue.run()
        assert fired == ["x", "y"]

    def test_empty_is_o1_not_a_heap_scan(self):
        """Lazy cancellation: ``empty`` comes from the live counter while
        cancelled entries still physically sit in the heap."""
        queue = EventQueue()
        handles = [queue.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction threshold nothing is swept, so the heap
        # still holds every cancelled entry — yet the queue reports empty,
        # which only a counter (not an any() scan-and-pop) can do in O(1).
        assert queue.empty
        assert len(queue._heap) == 10
        assert queue._live == 0
        assert queue.run() == 0.0  # draining the corpses fires nothing
        assert queue.processed == 0


class TestCompaction:
    def test_heap_compacts_when_cancelled_dominate(self):
        queue = EventQueue()
        keep = []
        live = [queue.schedule(float(i + 1), lambda i=i: keep.append(i))
                for i in range(5)]
        cancelled = [queue.schedule(10.0 + i, lambda: keep.append(-1))
                     for i in range(COMPACTION_MIN_CANCELLED + 10)]
        for handle in cancelled:
            handle.cancel()
        # Cancelled entries outnumbered live ones beyond the threshold, so a
        # compaction pass ran: far fewer entries remain than were scheduled
        # (only the live ones plus the post-compaction cancellations).
        assert len(queue._heap) < len(cancelled)
        assert len(queue._heap) >= len(live)
        assert not queue.empty
        fired_before = len(keep)
        queue.run()
        assert len(keep) == fired_before + len(live)

    def test_compaction_never_reorders_events(self):
        queue = EventQueue()
        fired = []
        # Interleave survivors (including same-time ties) with victims.
        for i in range(COMPACTION_MIN_CANCELLED + 20):
            queue.schedule(1.0 + (i % 3) * 0.5, lambda i=i: fired.append(i))
        victims = [queue.schedule(0.5, lambda: fired.append(-1))
                   for _ in range(COMPACTION_MIN_CANCELLED + 20)]
        for handle in victims:
            handle.cancel()
        queue.run()
        # Survivors fire in (time, insertion-order) sequence: for each of
        # the three time buckets, indices ascend.
        assert -1 not in fired
        buckets = {0: [], 1: [], 2: []}
        for index in fired:
            buckets[index % 3].append(index)
        assert fired == sorted(fired, key=lambda i: ((i % 3), i))
        for bucket in buckets.values():
            assert bucket == sorted(bucket)


class TestHandleFreeScheduling:
    def test_schedule_callback_orders_with_handles(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("handle"))
        queue.schedule_callback(1.0, lambda: fired.append("raw-early"))
        queue.schedule_callback(2.0, lambda: fired.append("raw-tie"))
        queue.schedule(2.0, lambda: fired.append("handle-tie"))
        queue.run()
        # Ties break by insertion order regardless of entry flavour.
        assert fired == ["raw-early", "handle", "raw-tie", "handle-tie"]
        assert queue.processed == 4
        assert queue.empty

    def test_schedule_callback_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_callback(-0.5, lambda: None)


class TestVersionGatedStopCondition:
    def test_stop_condition_evaluated_only_on_state_change(self):
        class Versioned:
            version = 0

        source = Versioned()
        queue = EventQueue()
        evaluations = []

        def bump():
            source.version += 1

        for i in range(10):
            queue.schedule(float(i + 1), bump if i % 3 == 0 else (lambda: None))

        def stop():
            evaluations.append(queue.now)
            return False

        queue.run(stop_condition=stop, version_source=source)
        # Bumps happened at t=1, 4, 7, 10: exactly four evaluations.
        assert evaluations == [1.0, 4.0, 7.0, 10.0]

    def test_gated_stop_halts_at_the_same_event(self):
        """Gating must stop at the first event after the condition flips."""
        class Versioned:
            version = 0

        results = {}
        for gated in (False, True):
            source = Versioned()
            queue = EventQueue()
            state = {"count": 0}

            def work():
                state["count"] += 1
                source.version += 1

            for i in range(10):
                queue.schedule(float(i + 1), work)
            stop = lambda: state["count"] >= 4  # noqa: E731
            end = queue.run(stop_condition=stop,
                            version_source=source if gated else None)
            results[gated] = (end, state["count"], queue.processed)
        assert results[True] == results[False]


class TestEngineParity:
    """The fast queue and the legacy queue dispatch identical sequences."""

    def test_timer_workload_digest_matches_legacy(self):
        fast = EventQueue()
        legacy = LegacyEventQueue()
        digest_fast = pump_timer_workload(fast, events=5_000)
        digest_legacy = pump_timer_workload(legacy, events=5_000)
        assert digest_fast == digest_legacy
        assert fast.now == legacy.now
        assert fast.processed == legacy.processed

    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_random_schedule_cancel_script_matches_legacy(self, seed):
        """Property-style differential: a random interleaving of schedule /
        schedule_at / cancel / run steps produces the identical firing
        sequence (tie-break determinism included) on both queues."""
        def drive(queue):
            rng = np.random.default_rng(seed)
            fired = []
            handles = []
            label = 0

            def make(tag):
                def callback():
                    fired.append((tag, round(queue.now, 9)))
                return callback

            for _ in range(300):
                action = rng.integers(0, 10)
                if action < 5:
                    handles.append(queue.schedule(float(rng.uniform(0, 2.0)),
                                                  make(label)))
                    label += 1
                elif action < 7:
                    # schedule_at clamps times in the past to "now".
                    at = float(queue.now + rng.uniform(-0.5, 1.5))
                    handles.append(queue.schedule_at(at, make(label)))
                    label += 1
                elif action < 9 and handles:
                    handles[int(rng.integers(0, len(handles)))].cancel()
                else:
                    queue.run(max_events=int(rng.integers(1, 6)))
            queue.run()
            return fired

        assert drive(EventQueue()) == drive(LegacyEventQueue())

    def test_schedule_at_clamps_to_now(self):
        for queue in (EventQueue(), LegacyEventQueue()):
            fired = []
            queue.schedule(1.0, lambda: queue.schedule_at(
                0.25, lambda: fired.append(queue.now)))
            queue.run()
            assert fired == [1.0]  # past target fires immediately (clamped)
