"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda label=label: fired.append(label))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        times = []
        queue.schedule(0.5, lambda: times.append(queue.now))
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [0.5, 1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule_at(3.0, lambda: fired.append(queue.now)))
        queue.run()
        assert fired == [3.0]

    def test_events_scheduled_from_callbacks_run(self):
        queue = EventQueue()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                queue.schedule(1.0, lambda: chain(depth + 1))

        queue.schedule(0.0, lambda: chain(0))
        queue.run()
        assert fired == [0, 1, 2, 3, 4, 5]


class TestRunControl:
    def test_until_stops_the_clock(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        end = queue.run(until=2.0)
        assert fired == [1]
        assert end == 2.0
        assert queue.now == 2.0

    def test_stop_condition(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(stop_condition=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_max_events(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(max_events=4)
        assert len(fired) == 4

    def test_run_on_empty_queue_with_until(self):
        queue = EventQueue()
        assert queue.run(until=7.0) == 7.0

    def test_processed_counter(self):
        queue = EventQueue()
        for _ in range(3):
            queue.schedule(1.0, lambda: None)
        queue.run()
        assert queue.processed == 3


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        queue.run()
        assert fired == []
        assert handle.cancelled

    def test_empty_property_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        assert not queue.empty
        handle.cancel()
        assert queue.empty

    def test_handle_time(self):
        queue = EventQueue()
        handle = queue.schedule(2.5, lambda: None)
        assert handle.time == 2.5
