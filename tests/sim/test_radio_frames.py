"""Tests for PHY timing, frame model and the Onoe autorate controller."""

from __future__ import annotations

import pytest

from repro.sim.autorate import OnoeRateController
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.radio import (
    RATE_1MBPS,
    RATE_5_5MBPS,
    RATE_11MBPS,
    SUPPORTED_RATES,
    ChannelConfig,
    PhyConfig,
    SimConfig,
)


class TestPhyTiming:
    def test_frame_airtime_scales_with_size_and_rate(self):
        phy = PhyConfig()
        small = phy.frame_airtime(100)
        large = phy.frame_airtime(1500)
        assert large > small
        fast = phy.frame_airtime(1500, bitrate=RATE_11MBPS)
        assert fast < large

    def test_airtime_formula(self):
        phy = PhyConfig(bitrate=RATE_5_5MBPS)
        expected = phy.preamble_time + (1500 + phy.mac_overhead_bytes) * 8 / RATE_5_5MBPS
        assert phy.frame_airtime(1500) == pytest.approx(expected)

    def test_1500b_at_5_5mbps_is_about_2_4ms(self):
        """Sanity-anchor the absolute throughput scale of the simulator."""
        phy = PhyConfig()
        assert 2.0e-3 < phy.frame_airtime(1500) < 3.0e-3

    def test_ack_airtime(self):
        phy = PhyConfig()
        assert phy.ack_airtime() == pytest.approx(
            phy.preamble_time + phy.ack_bytes * 8 / phy.ack_bitrate)

    def test_invalid_bitrate(self):
        with pytest.raises(ValueError):
            PhyConfig().frame_airtime(100, bitrate=0)

    def test_contention_window_doubles_and_caps(self):
        phy = PhyConfig(cw_min=31, cw_max=1023)
        assert phy.contention_window(0) == 31
        assert phy.contention_window(1) == 63
        assert phy.contention_window(10) == 1023

    def test_backoff_time(self):
        phy = PhyConfig()
        assert phy.backoff_time(3) == pytest.approx(3 * phy.slot_time)

    def test_sim_config_defaults(self):
        config = SimConfig()
        assert config.phy.bitrate == RATE_5_5MBPS
        assert isinstance(config.channel, ChannelConfig)


class TestFrame:
    def test_broadcast_detection(self):
        frame = Frame(sender=1, receiver=BROADCAST, kind=FrameKind.DATA, flow_id=1,
                      size_bytes=100)
        assert frame.is_broadcast
        unicast = Frame(sender=1, receiver=2, kind=FrameKind.DATA, flow_id=1, size_bytes=100)
        assert not unicast.is_broadcast

    def test_frame_ids_are_unique(self):
        frames = [Frame(sender=0, receiver=BROADCAST, kind=FrameKind.DATA, flow_id=0,
                        size_bytes=10) for _ in range(10)]
        assert len({f.frame_id for f in frames}) == 10


class TestOnoeAutorate:
    def test_starts_at_highest_rate(self):
        controller = OnoeRateController()
        assert controller.current_rate(5) == SUPPORTED_RATES[-1]

    def test_steps_down_on_heavy_loss(self):
        controller = OnoeRateController(period=1.0)
        now = 0.0
        for _ in range(20):
            controller.record_result(3, success=False, retries=4, now=now)
        controller.record_result(3, success=False, retries=4, now=1.5)
        assert controller.current_rate(3) < SUPPORTED_RATES[-1]

    def test_steps_up_only_after_sustained_success(self):
        controller = OnoeRateController(period=1.0, credits_to_raise=3,
                                        initial_rate=RATE_1MBPS)
        now = 0.0
        # Two good periods are not enough.
        for period in range(2):
            for _ in range(10):
                controller.record_result(1, success=True, retries=0, now=now)
            now += 1.1
            controller.record_result(1, success=True, retries=0, now=now)
        assert controller.current_rate(1) == RATE_1MBPS
        # More good periods eventually raise the rate.
        for period in range(4):
            for _ in range(10):
                controller.record_result(1, success=True, retries=0, now=now)
            now += 1.1
            controller.record_result(1, success=True, retries=0, now=now)
        assert controller.current_rate(1) > RATE_1MBPS

    def test_never_goes_below_lowest_rate(self):
        controller = OnoeRateController(period=0.5)
        now = 0.0
        for _ in range(200):
            controller.record_result(2, success=False, retries=7, now=now)
            now += 0.1
        assert controller.current_rate(2) == SUPPORTED_RATES[0]

    def test_windows_anchored_per_neighbor(self):
        """Regression: disjoint traffic schedules must not share one window.

        The old controller kept a single ``_last_update`` initialised to
        0.0, so (a) the first observation window could close immediately —
        a neighbour's very first frame was evaluated as a whole period —
        and (b) any neighbour's frame closed the *global* window,
        evaluating every other neighbour's sub-period statistics.
        """
        controller = OnoeRateController(period=1.0, credits_to_raise=1,
                                        initial_rate=RATE_5_5MBPS)
        # Neighbour 1: heavy loss, but all of it within 0.9 s — less than
        # one period of its own window (anchored at its first frame, 0.0).
        for i in range(10):
            controller.record_result(1, success=False, retries=4, now=0.09 * i)
        # Neighbour 2's first-ever frame arrives much later.  Previously
        # this closed the shared window: neighbour 2 minted a credit from a
        # single frame (instant rate raise with credits_to_raise=1) and
        # neighbour 1 was stepped down on a sub-period sample.
        controller.record_result(2, success=True, retries=0, now=2.0)
        assert controller.current_rate(2) == RATE_5_5MBPS
        assert controller.current_rate(1) == RATE_5_5MBPS
        # A second frame for neighbour 2 a full period into ITS window does
        # close it (two good frames -> credit -> raise).
        controller.record_result(2, success=True, retries=0, now=3.1)
        assert controller.current_rate(2) > RATE_5_5MBPS
        # Neighbour 1 is evaluated on its own next frame, over its own
        # window, and steps down on its accumulated losses.
        controller.record_result(1, success=False, retries=4, now=3.2)
        assert controller.current_rate(1) < RATE_5_5MBPS

    def test_rates_tracked_per_neighbor(self):
        controller = OnoeRateController(period=0.5)
        now = 0.0
        for _ in range(50):
            controller.record_result(1, success=False, retries=5, now=now)
            controller.record_result(2, success=True, retries=0, now=now)
            now += 0.1
        assert controller.current_rate(1) < controller.current_rate(2)
