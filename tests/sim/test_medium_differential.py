"""Differential tests: vectorized reception resolution vs the scalar loop.

The medium resolves all receivers of a completed frame in one vectorized
pass (batched RNG draws over the eligible receivers in node order, a single
delivery-row gather, a vectorized interference mask).  These tests drive
the vectorized and the reference scalar implementations with identical
transmission schedules across several topologies and seeds — mirroring
``tests/coding/test_vectorized_differential.py`` — and assert bit-identical
behaviour: the same receiver sets, the same statistics counters and the
same main-RNG stream position afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.more import setup_more_flow
from repro.sim.channels import GilbertElliott
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.medium import WirelessMedium
from repro.sim.radio import ChannelConfig, SimConfig
from repro.sim.simulator import Simulator
from repro.topology.generator import (
    chain,
    grid,
    indoor_testbed,
    random_geometric,
)

SEEDS = (0, 1, 17)

TOPOLOGIES = {
    "indoor_testbed_20": lambda: indoor_testbed(node_count=20, floors=3, seed=7),
    "random_geometric_16": lambda: random_geometric(node_count=16, area=120.0, seed=2),
    "grid_4x4": lambda: grid(4, 4),
    "chain_5": lambda: chain(5, link_delivery=0.7, skip_delivery=0.2),
}


def _make_frame(sender: int) -> Frame:
    return Frame(sender=sender, receiver=BROADCAST, kind=FrameKind.DATA,
                 flow_id=1, size_bytes=1500)


def _drive_schedule(medium: WirelessMedium, schedule_rng: np.random.Generator,
                    node_count: int, rounds: int = 120) -> list[list[int]]:
    """Replay a randomized schedule with deliberate overlaps on ``medium``.

    About half the rounds start a second, overlapping transmission from a
    different sender, exercising half-duplex exclusion, the interference
    mask and (on suitable topologies) capture draws.  The schedule itself is
    drawn from ``schedule_rng`` so both media see identical traffic.
    """
    outcomes: list[list[int]] = []
    clock = 0.0
    airtime = 0.002
    for _ in range(rounds):
        clock += float(schedule_rng.uniform(0.001, 0.01))
        first = int(schedule_rng.integers(0, node_count))
        tx_a = medium.begin(_make_frame(first), now=clock, airtime=airtime,
                            bitrate=5_500_000)
        tx_b = None
        if schedule_rng.random() < 0.5:
            second = int(schedule_rng.integers(0, node_count))
            if second != first:
                offset = float(schedule_rng.uniform(0.0, airtime))
                tx_b = medium.begin(_make_frame(second), now=clock + offset,
                                    airtime=airtime, bitrate=5_500_000)
        outcomes.append(medium.complete(tx_a, now=clock + airtime))
        if tx_b is not None:
            outcomes.append(medium.complete(tx_b, now=tx_b.end))
            clock = tx_b.end
        else:
            clock += airtime
    return outcomes


@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_vectorized_reception_bit_identical_to_scalar(topology_name, seed):
    """Same schedule, same seed: identical receivers, counters, RNG position."""
    topology = TOPOLOGIES[topology_name]()
    media = {
        vectorized: WirelessMedium(topology, ChannelConfig(),
                                   np.random.default_rng(seed),
                                   vectorized=vectorized)
        for vectorized in (True, False)
    }
    outcomes = {
        vectorized: _drive_schedule(medium, np.random.default_rng(seed + 5000),
                                    topology.node_count)
        for vectorized, medium in media.items()
    }
    assert outcomes[True] == outcomes[False]
    for counter in ("transmissions", "receptions", "collisions", "captures"):
        assert getattr(media[True], counter) == getattr(media[False], counter), counter
    # The decisive check: both implementations consumed the exact same
    # number of draws from the exact same stream.
    assert media[True].rng.bit_generator.state == media[False].rng.bit_generator.state


@pytest.mark.parametrize("seed", SEEDS)
def test_capture_heavy_schedule_still_identical(seed):
    """A topology engineered for capture (large delivery margins) agrees too.

    Capture draws interleave with delivery draws, which the batched stream
    cannot reproduce; the vectorized path must detect this and fall back so
    the overall behaviour stays bit-identical.
    """
    # Strong wanted links (0.9) vs weak interferers (0.12): every overlap
    # puts the capture margin condition in play.
    delivery = np.array([
        [0.0, 0.0, 0.9, 0.9],
        [0.0, 0.0, 0.12, 0.12],
        [0.9, 0.12, 0.0, 0.5],
        [0.9, 0.12, 0.5, 0.0],
    ])
    from repro.topology.graph import Topology

    results = {}
    for vectorized in (True, False):
        medium = WirelessMedium(Topology(delivery),
                                ChannelConfig(capture_probability=0.7),
                                np.random.default_rng(seed),
                                vectorized=vectorized)
        received = []
        clock = 0.0
        for _ in range(80):
            tx_a = medium.begin(_make_frame(0), now=clock, airtime=0.002,
                                bitrate=5_500_000)
            tx_b = medium.begin(_make_frame(1), now=clock + 0.0005, airtime=0.002,
                                bitrate=5_500_000)
            received.append(medium.complete(tx_a, now=clock + 0.002))
            received.append(medium.complete(tx_b, now=clock + 0.0025))
            clock += 0.01
        results[vectorized] = (received, medium.captures, medium.collisions,
                               medium.rng.bit_generator.state)
    assert results[True] == results[False]
    assert results[True][1] > 0  # the schedule actually exercised capture


@pytest.mark.parametrize("seed", (1, 7))
def test_full_more_transfer_identical_across_paths(seed):
    """An end-to-end MORE transfer is invariant to the reception path."""
    topology = chain(3, link_delivery=0.7, skip_delivery=0.2)
    stats = {}
    for vectorized in (True, False):
        sim = Simulator(topology, SimConfig(seed=seed, vectorized_medium=vectorized))
        setup_more_flow(sim, topology, 0, 3, total_packets=32, batch_size=16,
                        packet_size=256, coding_payload_size=16, seed=seed)
        sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)
        record = next(iter(sim.stats.flows.values()))
        stats[vectorized] = (sim.now, record.delivered_packets, record.completed,
                             sim.medium.receptions, sim.medium.collisions,
                             sim.rng.bit_generator.state)
    assert stats[True] == stats[False]


@pytest.mark.parametrize("seed", (0, 3))
def test_vectorized_identity_holds_under_nonstatic_channel(seed):
    """Scalar and vectorized paths agree under a time-varying channel too.

    The channel model is queried once per completed frame in both paths, so
    the bursty Gilbert-Elliott stream advances identically.
    """
    topology = grid(3, 3)
    outcomes = {}
    for vectorized in (True, False):
        medium = WirelessMedium(
            topology, ChannelConfig(), np.random.default_rng(seed),
            model=GilbertElliott(seed=seed, mean_good_time=0.02,
                                 mean_bad_time=0.005),
            vectorized=vectorized)
        outcomes[vectorized] = _drive_schedule(
            medium, np.random.default_rng(seed + 100), topology.node_count,
            rounds=80)
    assert outcomes[True] == outcomes[False]
