"""Unit tests for the pluggable channel models (repro.sim.channels)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sim.channels import (
    CHANNEL_MODELS,
    ChannelSpec,
    DistanceFading,
    GilbertElliott,
    StaticBernoulli,
    TraceDriven,
    build_channel_model,
)
from repro.topology.generator import chain, grid, random_geometric
from repro.topology.graph import Topology


class TestChannelSpec:
    def test_round_trip(self):
        spec = ChannelSpec("gilbert_elliott", {"bad_scale": 0.1})
        clone = ChannelSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_is_static(self):
        assert ChannelSpec().is_static
        assert not ChannelSpec("gilbert_elliott").is_static
        assert not ChannelSpec("static", {"seed": 3}).is_static

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ChannelSpec.from_dict({"params": {}})

    def test_build_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            build_channel_model(ChannelSpec("rayleigh"), seed=1)

    def test_build_none_is_static(self):
        assert isinstance(build_channel_model(None), StaticBernoulli)

    def test_build_bad_param_is_one_line_value_error(self):
        # Bad `channel.<param>` overrides must surface as `repro: error: ...`
        # from the CLI, which only catches ValueError — not a TypeError trace.
        with pytest.raises(ValueError, match="bad parameter"):
            build_channel_model(ChannelSpec("gilbert_elliott", {"bogus": 1}))

    def test_registry_covers_all_models(self):
        assert set(CHANNEL_MODELS) == {"static", "gilbert_elliott",
                                       "distance_fading", "trace"}

    def test_params_seed_overrides_cell_seed(self):
        model = build_channel_model(
            ChannelSpec("gilbert_elliott", {"seed": 99}), seed=1)
        assert model.seed == 99


class TestStaticBernoulli:
    def test_row_matches_topology_and_never_varies(self):
        topology = chain(3, link_delivery=0.7, skip_delivery=0.2)
        model = StaticBernoulli()
        model.bind(topology)
        expected = topology.delivery_matrix()
        for now in (0.0, 1.5, 300.0):
            assert np.array_equal(model.delivery_row(1, now, now + 0.002),
                                  expected[1])
        assert np.array_equal(model.mean_matrix(), expected)


class TestGilbertElliott:
    def test_row_is_scaled_base(self):
        topology = chain(4, link_delivery=0.8)
        model = GilbertElliott(seed=3, good_scale=1.0, bad_scale=0.25)
        model.bind(topology)
        base = topology.delivery_matrix()[1]
        row = model.delivery_row(1, 0.0, 0.002)
        links = base > 0
        ratio = row[links] / base[links]
        assert set(np.round(ratio, 6)) <= {0.25, 1.0}

    def test_same_seed_replays_identically(self):
        topology = grid(3, 3)
        times = np.linspace(0.0, 5.0, 40)
        rows = []
        for _ in range(2):
            model = GilbertElliott(seed=11, mean_good_time=0.2, mean_bad_time=0.05)
            model.bind(topology)
            rows.append([model.delivery_row(0, t, t + 0.002).copy() for t in times])
        assert all(np.array_equal(a, b) for a, b in zip(*rows))

    def test_state_independent_of_query_pattern(self):
        """The chain at time t is a pure function of (seed, t).

        Counter-based draws mean neither fine-grained stepping of one row
        nor interleaved queries of other senders' rows can change which
        holding time a link gets — back-to-back protocol runs at one seed
        see the same channel realisation even though their traffic (and
        hence query pattern) differs.
        """
        topology = grid(3, 3)

        def fresh():
            model = GilbertElliott(seed=11, mean_good_time=0.2,
                                   mean_bad_time=0.05)
            model.bind(topology)
            return model

        direct = fresh().delivery_row(0, 3.0, 3.002).copy()
        stepped = fresh()
        for t in np.linspace(0.0, 2.9, 30):
            stepped.delivery_row(0, t, t + 0.002)
        interleaved = fresh()
        for t in np.linspace(0.0, 2.9, 10):
            for sender in (5, 1, 0):
                interleaved.delivery_row(sender, t, t + 0.002)
        assert np.array_equal(stepped.delivery_row(0, 3.0, 3.002), direct)
        assert np.array_equal(interleaved.delivery_row(0, 3.0, 3.002), direct)

    def test_different_seeds_differ(self):
        topology = grid(3, 3)
        rows = {}
        for seed in (1, 2):
            model = GilbertElliott(seed=seed, mean_good_time=0.05,
                                   mean_bad_time=0.05, bad_scale=0.0)
            model.bind(topology)
            rows[seed] = np.stack([model.delivery_row(0, t, t + 0.001)
                                   for t in np.linspace(0, 2, 50)])
        assert not np.array_equal(rows[1], rows[2])

    def test_long_run_average_near_stationary_mix(self):
        topology = chain(1, link_delivery=1.0)
        model = GilbertElliott(seed=5, good_scale=1.0, bad_scale=0.0,
                               mean_good_time=0.1, mean_bad_time=0.1)
        model.bind(topology)
        samples = [model.delivery_row(0, t, t)[1]
                   for t in np.linspace(0.0, 200.0, 4001)]
        assert 0.4 < float(np.mean(samples)) < 0.6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            GilbertElliott(mean_good_time=0.0)
        with pytest.raises(ValueError, match="bad_scale"):
            GilbertElliott(bad_scale=0.9, good_scale=0.5)

    def test_mean_matrix_is_stationary_average(self):
        topology = chain(2, link_delivery=0.6)
        model = GilbertElliott(seed=1, good_scale=1.0, bad_scale=0.1,
                               mean_good_time=0.1, mean_bad_time=1.0)
        model.bind(topology)
        # Tg/(Tg+Tb) good at scale 1.0, the rest bad at 0.1.
        expected = 0.6 * (0.1 * 1.0 + 1.0 * 0.1) / 1.1
        assert model.mean_matrix()[0, 1] == pytest.approx(expected)


class TestDistanceFading:
    def test_requires_positions(self):
        with pytest.raises(ValueError, match="coordinates"):
            model = DistanceFading(seed=1)
            model.bind(chain(3))  # chains carry no positions

    def test_fade_is_pure_function_of_seed_and_block(self):
        topology = grid(3, 3)
        model_a = DistanceFading(seed=7, coherence_time=0.5)
        model_a.bind(topology)
        model_b = DistanceFading(seed=7, coherence_time=0.5)
        model_b.bind(topology)
        # Query b at earlier blocks first: the fade of block 10 must not
        # depend on the query history.
        for t in (0.1, 2.3, 4.9):
            model_b.delivery_row(0, t, t + 0.002)
        direct = model_a.delivery_row(2, 5.2, 5.202)
        replay = model_b.delivery_row(2, 5.2, 5.202)
        assert np.array_equal(direct, replay)

    def test_fade_changes_across_blocks_not_within(self):
        topology = random_geometric(node_count=10, area=80.0, seed=4)
        model = DistanceFading(seed=2, coherence_time=1.0)
        model.bind(topology)
        within_a = model.delivery_row(1, 0.1, 0.102).copy()
        within_b = model.delivery_row(1, 0.9, 0.902).copy()
        next_block = model.delivery_row(1, 1.1, 1.102).copy()
        assert np.array_equal(within_a, within_b)
        assert not np.array_equal(within_a, next_block)

    def test_probabilities_valid_and_cutoff_applied(self):
        topology = grid(4, 4)
        model = DistanceFading(seed=3, max_delivery=0.9)
        model.bind(topology)
        row = model.delivery_row(0, 0.0, 0.002)
        assert float(row[0]) == 0.0  # no self link
        assert np.all((row == 0.0) | ((row >= 0.05) & (row <= 0.9)))

    def test_mean_matrix_is_zero_shadowing_fade(self):
        topology = grid(3, 3)
        model = DistanceFading(seed=1)
        model.bind(topology)
        mean = model.mean_matrix()
        assert mean.shape == (9, 9)
        assert np.all(np.diag(mean) == 0.0)
        # Nearer pairs fade less: adjacent beats the far corner link.
        assert mean[0, 1] >= mean[0, 8]


class TestTraceDriven:
    def _topology(self) -> Topology:
        return chain(2, link_delivery=0.5)

    def test_replays_series_and_wraps(self):
        model = TraceDriven(series={"0-1": [0.9, 0.1]}, interval=1.0, wrap=True)
        model.bind(self._topology())
        assert model.delivery_row(0, 0.5, 0.502)[1] == 0.9
        assert model.delivery_row(0, 1.5, 1.502)[1] == 0.1
        assert model.delivery_row(0, 2.5, 2.502)[1] == 0.9  # wrapped

    def test_clamp_holds_last_sample(self):
        model = TraceDriven(series={"0-1": [0.9, 0.1]}, interval=1.0, wrap=False)
        model.bind(self._topology())
        assert model.delivery_row(0, 10.0, 10.002)[1] == 0.1

    def test_untraced_links_keep_nominal_value(self):
        model = TraceDriven(series={"0-1": [0.9]})
        model.bind(self._topology())
        assert model.delivery_row(1, 0.0, 0.002)[2] == 0.5

    def test_short_series_padded_with_last_sample(self):
        model = TraceDriven(series={"0-1": [0.9, 0.2], "1-2": [0.3]}, interval=1.0)
        model.bind(self._topology())
        assert model.delivery_row(1, 1.5, 1.502)[2] == 0.3

    def test_update_base_rewrites_only_untraced_links(self):
        # Mobility hook: churned nominal values reach untraced links while
        # traced links keep replaying their series (no stack rebuild).
        model = TraceDriven(series={"0-1": [0.9, 0.1]}, interval=1.0)
        topology = self._topology()
        model.bind(topology)
        churned = topology.delivery_matrix() * 0.5
        model.update_base(churned)
        assert model.delivery_row(0, 0.5, 0.502)[1] == 0.9   # traced: series
        assert model.delivery_row(0, 1.5, 1.502)[1] == 0.1
        assert model.delivery_row(1, 0.5, 0.502)[2] == 0.25  # untraced: churned

    def test_mean_matrix_is_time_average_when_wrapping(self):
        model = TraceDriven(series={"0-1": [1.0, 0.0]})
        model.bind(self._topology())
        assert model.mean_matrix()[0, 1] == pytest.approx(0.5)

    def test_mean_matrix_is_final_sample_when_clamped(self):
        # A non-wrapping trace holds its last sample forever, so that
        # sample is the long-run mean the medium's sense levels track.
        model = TraceDriven(series={"0-1": [0.9, 0.9, 0.1]}, wrap=False)
        model.bind(self._topology())
        assert model.mean_matrix()[0, 1] == pytest.approx(0.1)

    def test_loads_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"interval": 2.0,
                                    "series": {"0-1": [0.4, 0.6]}}))
        model = TraceDriven(path=str(path))
        model.bind(self._topology())
        assert model.interval == 2.0
        assert model.delivery_row(0, 3.0, 3.002)[1] == 0.6

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="series"):
            TraceDriven()
        with pytest.raises(ValueError, match="interval"):
            TraceDriven(series={"0-1": [0.5]}, interval=0.0)
        model = TraceDriven(series={"0-9": [0.5]})
        with pytest.raises(ValueError, match="out of range"):
            model.bind(self._topology())
        model = TraceDriven(series={"zero-one": [0.5]})
        with pytest.raises(ValueError, match="not of the form"):
            model.bind(self._topology())
        model = TraceDriven(series={"0-1": [1.5]})
        with pytest.raises(ValueError, match="outside"):
            model.bind(self._topology())
        model = TraceDriven(series={"0-1": [], "1-0": [0.5]})
        with pytest.raises(ValueError, match="at least one sample"):
            model.bind(self._topology())
