"""Unit tests for the fault models and the runtime injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.base import ProtocolAgent
from repro.sim.faults import (
    FAULT_KINDS,
    AckBlackout,
    ControlSilence,
    CrashRecover,
    FaultSpec,
    ScheduledOutages,
    build_fault_model,
)
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.topology.graph import Topology


class TestFaultSpec:
    def test_default_is_none(self):
        spec = FaultSpec()
        assert spec.kind == "none" and spec.is_none

    def test_round_trip(self):
        spec = FaultSpec("crash_recover", {"mean_uptime": 4.0})
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec and not again.is_none

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="'kind'"):
            FaultSpec.from_dict({"params": {}})


class TestBuildFaultModel:
    def test_none_builds_nothing(self):
        assert build_fault_model(None) is None
        assert build_fault_model(FaultSpec("none"), seed=3) is None

    def test_none_rejects_parameters(self):
        with pytest.raises(ValueError, match="no parameters"):
            build_fault_model(FaultSpec("none", {"x": 1}))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            build_fault_model(FaultSpec("meteor_strike"))

    def test_bad_parameter_is_a_value_error(self):
        with pytest.raises(ValueError, match="bad parameter for faults"):
            build_fault_model(FaultSpec("crash_recover", {"bogus": 1}))

    def test_cell_seed_threads_through(self):
        model = build_fault_model(FaultSpec("crash_recover"), seed=9)
        assert model.seed == 9

    def test_explicit_seed_wins(self):
        model = build_fault_model(
            FaultSpec("crash_recover", {"seed": 4}), seed=9)
        assert model.seed == 4

    def test_every_kind_is_registered(self):
        assert FAULT_KINDS == ("none", "ack_blackout", "control_silence",
                               "crash_recover", "scheduled")


class TestScheduledOutages:
    def test_initial_down_and_transitions(self):
        model = ScheduledOutages({1: [[0.0, 2.0], [5.0, 6.0]]})
        assert model.initial_down(1) and not model.initial_down(0)
        assert model.next_transition(1, 0.0) == (2.0, False)
        assert model.next_transition(1, 2.0) == (5.0, True)
        assert model.next_transition(1, 5.0) == (6.0, False)
        assert model.next_transition(1, 6.0) is None
        assert model.next_transition(0, 0.0) is None

    def test_string_node_keys_from_json(self):
        model = ScheduledOutages({"2": [[1.0, 3.0]]})
        assert model.next_transition(2, 0.0) == (1.0, True)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty"):
            ScheduledOutages({0: [[2.0, 2.0]]})

    def test_rejects_overlapping_windows(self):
        with pytest.raises(ValueError, match="overlap"):
            ScheduledOutages({0: [[0.0, 3.0], [2.0, 4.0]]})


class TestCrashRecover:
    def test_chain_is_deterministic_and_alternates(self):
        first = CrashRecover(mean_uptime=2.0, mean_downtime=0.5, seed=7)
        second = CrashRecover(mean_uptime=2.0, mean_downtime=0.5, seed=7)
        clock, down = 0.0, False
        for _ in range(40):
            transition = first.next_transition(3, clock)
            assert transition == second.next_transition(3, clock)
            time, next_down = transition
            assert time > clock
            assert next_down is (not down)
            clock, down = time, next_down

    def test_query_order_does_not_matter(self):
        eager = CrashRecover(seed=5)
        lazy = CrashRecover(seed=5)
        late = eager.next_transition(0, 500.0)  # forces many chain blocks
        assert eager.next_transition(0, 0.0) == lazy.next_transition(0, 0.0)
        assert late == lazy.next_transition(0, 500.0)

    def test_nodes_differ_and_seeds_differ(self):
        model = CrashRecover(seed=1)
        assert model.next_transition(0, 0.0) != model.next_transition(1, 0.0)
        other = CrashRecover(seed=2)
        assert model.next_transition(0, 0.0) != other.next_transition(0, 0.0)

    def test_protect_and_nodes_restrict_the_process(self):
        model = CrashRecover(nodes=[1, 2], protect=[2], seed=1)
        assert model.next_transition(0, 0.0) is None  # not in nodes
        assert model.next_transition(2, 0.0) is None  # protected
        assert model.next_transition(1, 0.0) is not None

    def test_rejects_nonpositive_means(self):
        with pytest.raises(ValueError, match="positive"):
            CrashRecover(mean_uptime=0.0)


class TestAckBlackout:
    def test_window_arithmetic(self):
        model = AckBlackout(period=10.0, duration=2.0, offset=1.0)
        assert not model.ack_blackout(0.5)  # before the first window
        assert model.ack_blackout(1.0)
        assert model.ack_blackout(2.9)
        assert not model.ack_blackout(3.0)
        assert model.ack_blackout(11.5)  # second period

    def test_validation(self):
        with pytest.raises(ValueError, match="period"):
            AckBlackout(period=0.0)
        with pytest.raises(ValueError, match="duration"):
            AckBlackout(period=1.0, duration=2.0)


class TestControlSilence:
    def test_silent_from_start_time(self):
        model = ControlSilence(nodes=[3, 5], start=2.0)
        assert model.control_silent_nodes(1.9) == frozenset()
        assert model.control_silent_nodes(2.0) == frozenset({3, 5})

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="non-negative"):
            ControlSilence(start=-1.0)


# --------------------------------------------------------------------------- #
# The injector on a live simulator
# --------------------------------------------------------------------------- #


class ChattyAgent(ProtocolAgent):
    """Broadcasts forever; records what it hears."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []
        self.sent = 0

    def has_pending(self, now):
        return True

    def on_transmit_opportunity(self, now):
        self.sent += 1
        return Frame(sender=self.node_id, receiver=BROADCAST,
                     kind=FrameKind.DATA, flow_id=1, size_bytes=200)

    def on_frame_received(self, frame, now):
        self.received.append((frame.sender, now))


def chatty_sim(faults, node_count=2):
    delivery = np.ones((node_count, node_count)) - np.eye(node_count)
    sim = Simulator(Topology(delivery), SimConfig(seed=0, faults=faults))
    agents = []
    for node in range(node_count):
        agent = ChattyAgent(node)
        sim.attach_agent(node, agent)
        agents.append(agent)
    return sim, agents


class TestFaultInjector:
    def test_fault_free_config_builds_no_injector(self):
        sim, _ = chatty_sim(None)
        assert sim.faults is None

    def test_dead_node_neither_transmits_nor_receives(self):
        sim, (alice, bob) = chatty_sim(
            FaultSpec("scheduled", {"downs": {1: [[0.0, 10.0]]}}))
        sim.trigger_node(0)
        sim.trigger_node(1)
        sim.run(until=0.5)
        assert sim.faults.down(1) and not sim.faults.down(0)
        assert bob.sent == 0          # crashed at t=0: never contended
        assert bob.received == []     # and heard nothing while down
        assert alice.sent > 0

    def test_recovery_restarts_the_mac(self):
        sim, (alice, bob) = chatty_sim(
            FaultSpec("scheduled", {"downs": {1: [[0.0, 0.2]]}}))
        sim.trigger_node(0)
        sim.trigger_node(1)
        sim.run(until=0.5)
        assert not sim.faults.down(1)
        assert sim.faults.crashes == 0        # down from t=0, no crash event
        assert sim.faults.recoveries == 1
        assert bob.sent > 0
        assert all(now >= 0.2 for _, now in bob.received)

    def test_mid_run_crash_counts_and_down_nodes(self):
        sim, (alice, bob) = chatty_sim(
            FaultSpec("scheduled", {"downs": {0: [[0.1, 0.3]]}}))
        sim.trigger_node(0)
        sim.run(until=0.2)
        assert sim.faults.crashes == 1
        assert sim.faults.down_nodes() == frozenset({0})
        sim.run(until=0.5)
        assert sim.faults.recoveries == 1
        assert sim.faults.down_nodes() == frozenset()

    def test_ack_blackout_drops_only_batch_acks(self):
        sim, _ = chatty_sim(FaultSpec("ack_blackout",
                                      {"period": 10.0, "duration": 10.0}))
        ack = Frame(sender=0, receiver=1, kind=FrameKind.BATCH_ACK,
                    flow_id=1, size_bytes=60)
        data = Frame(sender=0, receiver=BROADCAST, kind=FrameKind.DATA,
                     flow_id=1, size_bytes=60)
        assert sim.faults.filter_receivers(ack, [1], now=1.0) == []
        assert sim.faults.filter_receivers(data, [1], now=1.0) == [1]

    def test_control_dead_merges_crashes_and_silence(self):
        sim, _ = chatty_sim(FaultSpec("control_silence", {"nodes": [1]}),
                            node_count=3)
        assert sim.faults.control_dead(0.0) == frozenset({1})
        assert sim.faults.down_nodes() == frozenset()  # data plane alive
