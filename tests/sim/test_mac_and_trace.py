"""Tests for the CSMA/CA MAC, the node glue and the statistics collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.base import ProtocolAgent
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.mac import MacState
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.trace import FlowRecord, StatsCollector
from repro.topology.graph import Topology


class ScriptedAgent(ProtocolAgent):
    """Test agent that transmits a fixed list of frames and records receptions."""

    def __init__(self, node_id, frames=None):
        super().__init__(node_id)
        self.outgoing = list(frames or [])
        self.received = []
        self.sent = []

    def has_pending(self, now):
        return bool(self.outgoing)

    def on_transmit_opportunity(self, now):
        return self.outgoing.pop(0) if self.outgoing else None

    def on_frame_received(self, frame, now):
        self.received.append((frame, now))

    def on_frame_sent(self, frame, success, now):
        self.sent.append((frame, success))


def two_node_sim(delivery=1.0, seed=0):
    matrix = np.array([[0, delivery], [delivery, 0]], dtype=float)
    return Simulator(Topology(matrix), SimConfig(seed=seed))


def data_frame(sender, receiver=BROADCAST, size=500):
    return Frame(sender=sender, receiver=receiver, kind=FrameKind.DATA, flow_id=1,
                 size_bytes=size)


class TestMacBroadcast:
    def test_broadcast_delivery_and_callbacks(self):
        sim = two_node_sim()
        sender = ScriptedAgent(0, [data_frame(0)])
        receiver = ScriptedAgent(1)
        sim.attach_agent(0, sender)
        sim.attach_agent(1, receiver)
        sim.trigger_node(0)
        sim.run(until=1.0)
        assert len(receiver.received) == 1
        assert len(sender.sent) == 1
        assert sender.sent[0][1] is True  # broadcast is always "successful"
        assert sender.sent[0][0].mac_attempts == 1

    def test_broadcast_not_retried_on_loss(self):
        sim = two_node_sim(delivery=0.0)
        sender = ScriptedAgent(0, [data_frame(0)])
        receiver = ScriptedAgent(1)
        sim.attach_agent(0, sender)
        sim.attach_agent(1, receiver)
        sim.trigger_node(0)
        sim.run(until=1.0)
        assert receiver.received == []
        assert sim.medium.transmissions == 1

    def test_multiple_frames_sent_back_to_back(self):
        sim = two_node_sim()
        sender = ScriptedAgent(0, [data_frame(0) for _ in range(5)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        sim.run(until=1.0)
        assert len(sender.sent) == 5
        assert sim.nodes[0].mac.state is MacState.IDLE


class TestMacUnicast:
    def test_unicast_success(self):
        sim = two_node_sim()
        sender = ScriptedAgent(0, [data_frame(0, receiver=1)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        sim.run(until=1.0)
        assert sender.sent[0][1] is True
        assert sim.nodes[0].mac.stats.unicast_successes == 1

    def test_unicast_retries_then_gives_up(self):
        sim = two_node_sim(delivery=0.0)
        sender = ScriptedAgent(0, [data_frame(0, receiver=1)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        sim.run(until=5.0)
        assert sender.sent[0][1] is False
        retry_limit = sim.config.phy.retry_limit
        assert sim.medium.transmissions == retry_limit + 1
        assert sim.nodes[0].mac.stats.unicast_drops == 1
        assert sender.sent[0][0].mac_attempts == retry_limit + 1

    def test_unicast_lossy_link_eventually_succeeds(self):
        sim = two_node_sim(delivery=0.5, seed=3)
        sender = ScriptedAgent(0, [data_frame(0, receiver=1)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        sim.run(until=5.0)
        assert sender.sent and sender.sent[0][1] is True
        assert sim.medium.transmissions >= 1


class TestCarrierSenseSerialization:
    def test_two_contending_senders_do_not_collide(self):
        """Nodes that can hear each other serialise via carrier sense."""
        matrix = np.array([[0, 0.9, 0.9], [0.9, 0, 0.9], [0.9, 0.9, 0]], dtype=float)
        sim = Simulator(Topology(matrix), SimConfig(seed=1))
        a = ScriptedAgent(0, [data_frame(0) for _ in range(10)])
        b = ScriptedAgent(1, [data_frame(1) for _ in range(10)])
        sim.attach_agent(0, a)
        sim.attach_agent(1, b)
        sim.attach_agent(2, ScriptedAgent(2))
        sim.trigger_node(0)
        sim.trigger_node(1)
        sim.run(until=2.0)
        assert sim.medium.collisions == 0
        assert len(a.sent) == 10 and len(b.sent) == 10


class TestPendingHandleLifecycle:
    """Regression: the contention handle must not leak across frames.

    The seed MAC assigned ``_pending_handle`` in ``_start_contention`` but
    never cancelled or cleared it, so after a frame finished the MAC kept a
    stale handle to an already-fired (or superseded) event alive; a late
    ``cancel()`` on it was indistinguishable from cancelling the *next*
    frame's contention.  ``_finish_frame`` now cancels and clears it.
    """

    def test_handle_cleared_after_each_frame(self):
        sim = two_node_sim()
        sender = ScriptedAgent(0, [data_frame(0) for _ in range(3)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        mac = sim.nodes[0].mac
        assert mac._pending_handle is not None  # contention scheduled
        sim.run(until=1.0)
        assert len(sender.sent) == 3
        assert mac._pending_handle is None  # nothing leaks once idle

    def test_stale_handle_cannot_cancel_next_frame(self):
        """A handle grabbed during frame 1 must be dead by frame 2."""
        sim = two_node_sim()
        sender = ScriptedAgent(0, [data_frame(0), data_frame(0)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        mac = sim.nodes[0].mac
        stale = mac._pending_handle
        assert stale is not None
        # Let the first frame complete; the MAC immediately contends for
        # the second, creating a fresh handle.
        sim.run(until=1.0, stop_condition=lambda: len(sender.sent) >= 1)
        # Cancelling the old frame's handle must not kill frame 2.
        stale.cancel()
        sim.run(until=2.0)
        assert len(sender.sent) == 2
        assert sim.nodes[0].mac.state is MacState.IDLE

    def test_handle_cleared_on_unicast_drop(self):
        sim = two_node_sim(delivery=0.0)
        sender = ScriptedAgent(0, [data_frame(0, receiver=1)])
        sim.attach_agent(0, sender)
        sim.attach_agent(1, ScriptedAgent(1))
        sim.trigger_node(0)
        sim.run(until=5.0)
        assert sender.sent[0][1] is False
        assert sim.nodes[0].mac._pending_handle is None


class TestStatsCollector:
    def test_flow_lifecycle(self):
        stats = StatsCollector()
        record = stats.register_flow(1, 0, 5, total_packets=10, packet_size=1500,
                                     start_time=1.0)
        assert not record.completed
        stats.record_delivery(1, 6, now=2.0)
        assert not record.completed
        stats.record_delivery(1, 4, now=3.0, batch_complete=True)
        assert record.completed
        assert record.duration == pytest.approx(2.0)
        assert record.throughput_pkts() == pytest.approx(5.0)
        assert record.throughput_bits() == pytest.approx(5.0 * 1500 * 8)
        assert record.delivered_batches == 1

    def test_partial_throughput_requires_now(self):
        record = FlowRecord(flow_id=1, source=0, destination=1, total_packets=10,
                            packet_size=100, start_time=0.0)
        with pytest.raises(ValueError):
            record.throughput_pkts()
        record.delivered_packets = 5
        assert record.throughput_pkts(now=2.5) == pytest.approx(2.0)

    def test_all_flows_complete(self):
        stats = StatsCollector()
        assert not stats.all_flows_complete()  # no flows registered
        stats.register_flow(1, 0, 1, total_packets=2, packet_size=10, start_time=0.0)
        stats.register_flow(2, 1, 0, total_packets=1, packet_size=10, start_time=0.0)
        stats.record_delivery(1, 2, now=1.0)
        assert not stats.all_flows_complete()
        stats.record_delivery(2, 1, now=1.0)
        assert stats.all_flows_complete()

    def test_counter_and_scan_agree(self):
        """The O(1) counter and the reference scan are interchangeable."""
        stats = StatsCollector()
        assert stats.all_flows_complete() == stats.all_flows_complete_scan()
        stats.register_flow(1, 0, 1, total_packets=2, packet_size=10, start_time=0.0)
        assert stats.all_flows_complete() == stats.all_flows_complete_scan() is False
        stats.record_delivery(1, 2, now=1.0)
        assert stats.all_flows_complete() == stats.all_flows_complete_scan() is True

    def test_zero_packet_flow_does_not_break_completion_counter(self):
        """A flow complete at registration must not drive the counter negative."""
        stats = StatsCollector()
        stats.register_flow(1, 0, 1, total_packets=0, packet_size=10, start_time=0.0)
        assert stats.all_flows_complete()
        stats.record_delivery(1, 1, now=1.0)  # spurious delivery on a done flow
        stats.register_flow(2, 1, 0, total_packets=1, packet_size=10, start_time=0.0)
        assert not stats.all_flows_complete()  # counter must still see flow 2
        assert stats.all_flows_complete() == stats.all_flows_complete_scan()
        stats.record_delivery(2, 1, now=2.0)
        assert stats.all_flows_complete()

    def test_reregistration_does_not_break_completion_counter(self):
        """Re-registering a flow id replaces the record, not the bookkeeping."""
        stats = StatsCollector()
        stats.register_flow(1, 0, 1, total_packets=5, packet_size=10, start_time=0.0)
        stats.register_flow(1, 0, 1, total_packets=2, packet_size=10, start_time=0.5)
        stats.record_delivery(1, 2, now=1.0)
        assert stats.all_flows_complete()
        assert stats.all_flows_complete() == stats.all_flows_complete_scan()

    def test_duplicates_and_transmissions(self):
        stats = StatsCollector()
        stats.register_flow(1, 0, 1, total_packets=1, packet_size=10, start_time=0.0)
        stats.record_duplicate(1)
        stats.record_data_transmission(0)
        stats.record_data_transmission(0)
        assert stats.flows[1].duplicate_packets == 1
        assert stats.total_data_transmissions() == 2
