"""Differential tests: the fast engine vs the legacy (pre-refactor) engine.

The event-engine overhaul (PR 4) rebuilt the scheduler, the MAC transmit
path, the medium's resolution caches and the MORE/ExOR agent hot paths.
``SimConfig(engine="legacy")`` keeps the original implementations live;
these tests drive complete simulations through both engines — across
presets, protocols, seeds and channel models — and assert *bit-identical*
traces: the exact ``bit_generator.state`` of the main RNG afterwards, full
:class:`~repro.sim.trace.StatsCollector` equality, the medium counters and
the final clock.  This is the same pin pattern as
``tests/sim/test_medium_differential.py``, one level up the stack.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.runner import run_flows
from repro.scenarios import build_pairs, build_topology, get_preset
from repro.sim.radio import SimConfig

SEEDS = (1, 5, 17)

#: Three presets spanning the hot paths: a lossy chain (MORE's bread and
#: butter), a bursty Gilbert-Elliott channel (non-static model: the static
#: row caches must disengage), and a mid-size random-geometric mesh.
PRESETS = ("chain_smoke", "bursty_chain", "random_geometric_16")


def _run_trace(preset_name: str, protocol: str, seed: int, engine: str):
    """One full simulation; returns every observable the engines must agree on."""
    spec = get_preset(preset_name)
    topology = build_topology(spec.topology)
    source, destination = build_pairs(spec.workload, topology, seed)[0]
    config = spec.run_config(seed)
    config.engine = engine
    # run_flows drives Simulator + agents end to end but does not expose the
    # simulator, so rebuild the essentials here.
    from repro.experiments.runner import _install_flow, _make_simulator

    sim = _make_simulator(topology, config)
    control = config.control_view(topology)
    flow_id = _install_flow(sim, topology, protocol, source, destination, config,
                            flow_seed=seed, control_topology=control).flow_id
    sim.run(until=config.max_duration, stop_condition=sim.stats.all_flows_complete)
    record = sim.stats.flows[flow_id]
    # Flow ids come from a process-global counter, so they differ between
    # back-to-back runs; strip them before comparing the records.
    flows = [(r.source, r.destination, r.total_packets, r.packet_size,
              r.start_time, r.end_time, r.delivered_packets,
              r.delivered_batches, r.duplicate_packets)
             for r in sim.stats.flows.values()]
    return {
        "rng_state": sim.rng.bit_generator.state,
        "now": sim.now,
        "flow": (record.delivered_packets, record.delivered_batches,
                 record.duplicate_packets, record.completed, record.start_time,
                 record.end_time),
        "stats_flows": flows,
        "data_transmissions": dict(sim.stats.data_transmissions),
        "stats_version": sim.stats.version,
        "medium": (sim.medium.transmissions, sim.medium.receptions,
                   sim.medium.collisions, sim.medium.captures),
        "events": sim.events.processed,
    }


@pytest.mark.parametrize("preset_name", PRESETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_more_full_run_bit_identical(preset_name, seed):
    """MORE end-to-end: exact RNG state + stats equality, fast vs legacy."""
    fast = _run_trace(preset_name, "MORE", seed, "fast")
    legacy = _run_trace(preset_name, "MORE", seed, "legacy")
    assert fast == legacy


@pytest.mark.parametrize("protocol", ("ExOR", "Srcr"))
@pytest.mark.parametrize("seed", (1, 17))
def test_other_protocols_bit_identical(protocol, seed):
    """ExOR and Srcr ride the same MAC/medium/engine: identical traces too."""
    fast = _run_trace("chain_smoke", protocol, seed, "fast")
    legacy = _run_trace("chain_smoke", protocol, seed, "legacy")
    assert fast == legacy


def test_multiflow_bit_identical():
    """Concurrent flows (shared agents, round-robin paths) agree too."""
    spec = get_preset("multiflow_grid")
    topology = build_topology(spec.topology)
    config = spec.run_config(1)
    results = {}
    for engine in ("fast", "legacy"):
        cfg = replace(config, engine=engine)
        flows = run_flows(topology, "MORE", [(0, 15), (12, 3)], config=cfg)
        results[engine] = [(f.throughput_pkts, f.delivered_packets, f.duration,
                            f.completed, f.data_transmissions) for f in flows]
    assert results["fast"] == results["legacy"]


def test_engine_mode_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        SimConfig(engine="warp")
