"""Differential tests for the fault subsystem's no-op and engine contracts.

Two bit-identity pins, in the style of ``test_engine_differential``:

* **absence** — a run with the fault/monitor fields at their defaults is
  bit-identical to one passing an explicit ``kind="none"`` spec with the
  monitor off: the subsystem's `is not None` guards add no behaviour, and
  a monitored run differs from an unmonitored one only by the monitor's
  own tick events (``events.processed``), never by the trace;
* **engine parity under faults** — with a crash/recover process active,
  the fast and legacy engines still agree bit for bit (exact RNG state,
  stats, medium counters, clock), because receiver filtering happens
  after the channel draws and fault randomness lives on a private
  counter-based stream.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import _install_flow, _make_simulator
from repro.scenarios import build_pairs, build_topology, get_preset

SEEDS = (1, 5, 17)
PRESETS = ("chain_smoke", "bursty_chain", "random_geometric_16")

#: Aggressive churn so every preset sees crashes inside its short run.
_CHURN = {"kind": "crash_recover",
          "params": {"mean_uptime": 0.1, "mean_downtime": 0.05}}


def _run_trace(preset_name, protocol, seed, engine="fast", **overrides):
    """One full simulation; returns every observable the runs must agree on."""
    spec = get_preset(preset_name)
    topology = build_topology(spec.topology)
    source, destination = build_pairs(spec.workload, topology, seed)[0]
    config = spec.run_config(seed)
    config.engine = engine
    for name, value in overrides.items():
        setattr(config, name, value)
    sim = _make_simulator(topology, config)
    control = config.control_view(topology)
    flow_id = _install_flow(sim, topology, protocol, source, destination, config,
                            flow_seed=seed, control_topology=control).flow_id
    sim.run(until=config.max_duration, stop_condition=sim.stats.all_flows_complete)
    record = sim.stats.flows[flow_id]
    faults = (sim.faults.crashes, sim.faults.recoveries) if sim.faults else None
    return {
        "rng_state": sim.rng.bit_generator.state,
        "now": sim.now,
        "flow": (record.delivered_packets, record.delivered_batches,
                 record.duplicate_packets, record.completed, record.aborted,
                 record.start_time, record.end_time),
        "data_transmissions": dict(sim.stats.data_transmissions),
        "stats_version": sim.stats.version,
        "medium": (sim.medium.transmissions, sim.medium.receptions,
                   sim.medium.collisions, sim.medium.captures),
        "events": sim.events.processed,
        "faults": faults,
    }


@pytest.mark.parametrize("preset_name", PRESETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_defaults_bit_identical_to_explicit_none(preset_name, seed):
    """faults=None defaults == explicit kind-none spec with monitor off."""
    implicit = _run_trace(preset_name, "MORE", seed)
    explicit = _run_trace(preset_name, "MORE", seed,
                          faults={"kind": "none", "params": {}}, monitor=False)
    assert implicit == explicit


@pytest.mark.parametrize("preset_name", PRESETS)
@pytest.mark.parametrize("seed", (1, 17))
def test_monitor_changes_nothing_but_its_own_ticks(preset_name, seed):
    """Monitor on == monitor off, modulo the tick events it schedules."""
    # 0.5 s ticks: frequent enough to fire many times inside these runs,
    # coarse enough not to flag the transient ACK-recovery quiet windows a
    # lossy chain legitimately has (the monitor's default is 1 s).
    off = _run_trace(preset_name, "MORE", seed)
    on = _run_trace(preset_name, "MORE", seed, monitor=True,
                    monitor_interval=0.5)
    assert on["events"] >= off["events"]
    del on["events"], off["events"]
    assert on == off


@pytest.mark.parametrize("preset_name", PRESETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_recover_bit_identical_across_engines(preset_name, seed):
    """With churn active, fast and legacy engines still agree exactly."""
    fast = _run_trace(preset_name, "MORE", seed, engine="fast", faults=_CHURN)
    legacy = _run_trace(preset_name, "MORE", seed, engine="legacy", faults=_CHURN)
    assert fast["faults"] is not None and fast["faults"] != (0, 0)
    assert fast == legacy


@pytest.mark.parametrize("protocol", ("ExOR", "Srcr"))
def test_other_protocols_bit_identical_under_faults(protocol):
    fast = _run_trace("chain_smoke", protocol, 1, engine="fast", faults=_CHURN)
    legacy = _run_trace("chain_smoke", protocol, 1, engine="legacy",
                        faults=_CHURN)
    assert fast == legacy


def test_crash_realisation_is_a_pure_function_of_the_seed():
    """Back-to-back runs replay the exact same crash/recover timeline."""
    first = _run_trace("chain_smoke", "MORE", 5, faults=_CHURN)
    second = _run_trace("chain_smoke", "MORE", 5, faults=_CHURN)
    assert first == second
