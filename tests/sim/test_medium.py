"""Tests for the broadcast medium: losses, carrier sense, collisions, capture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.medium import WirelessMedium
from repro.sim.radio import ChannelConfig
from repro.topology.graph import Topology


def make_frame(sender, receiver=BROADCAST, flow=1):
    return Frame(sender=sender, receiver=receiver, kind=FrameKind.DATA, flow_id=flow,
                 size_bytes=1500)


def make_medium(matrix, seed=0, **channel_kwargs):
    topo = Topology(np.asarray(matrix, dtype=float))
    channel = ChannelConfig(**channel_kwargs)
    return WirelessMedium(topo, channel, np.random.default_rng(seed)), topo


class TestLossModel:
    def test_perfect_link_always_delivers(self):
        medium, _ = make_medium([[0, 1.0], [1.0, 0]])
        for i in range(20):
            start = i * 0.01
            tx = medium.begin(make_frame(0), now=start, airtime=0.002, bitrate=5_500_000)
            assert medium.complete(tx, now=start + 0.002) == [1]

    def test_zero_link_never_delivers(self):
        medium, _ = make_medium([[0, 0.0], [0.0, 0]])
        tx = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert medium.complete(tx, now=0.002) == []

    def test_loss_statistics_match_probability(self):
        medium, _ = make_medium([[0, 0.5], [0.5, 0]], seed=2)
        received = 0
        for i in range(2000):
            start = i * 0.01
            tx = medium.begin(make_frame(0), now=start, airtime=0.002, bitrate=5_500_000)
            received += len(medium.complete(tx, now=start + 0.002))
        assert 0.45 < received / 2000 < 0.55

    def test_broadcast_reaches_multiple_receivers(self):
        medium, _ = make_medium([[0, 1.0, 1.0], [1, 0, 0], [1, 0, 0]])
        tx = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert sorted(medium.complete(tx, now=0.002)) == [1, 2]

    def test_statistics_counters(self):
        medium, _ = make_medium([[0, 1.0], [1.0, 0]])
        tx = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        medium.complete(tx, now=0.002)
        assert medium.transmissions == 1
        assert medium.receptions == 1


class TestCarrierSense:
    def test_busy_while_audible_transmission_in_flight(self):
        medium, _ = make_medium([[0, 0.9, 0.9], [0.9, 0, 0.9], [0.9, 0.9, 0]])
        medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert medium.is_busy(1, 0.001)
        assert medium.is_busy(0, 0.001)   # own transmission
        assert not medium.is_busy(1, 0.003)

    def test_far_node_does_not_sense(self):
        # Node 2 has no connectivity at all to node 0 and shares no good
        # common neighbour, so it cannot sense node 0's transmissions.
        matrix = [[0, 0.9, 0.0], [0.9, 0, 0.0], [0.0, 0.0, 0]]
        medium, _ = make_medium(matrix)
        medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert not medium.is_busy(2, 0.001)

    def test_hidden_terminals_with_common_neighbor_sense_each_other(self):
        """Two transmitters that both deliver well to a common receiver are
        within carrier-sense range even if they cannot decode each other."""
        matrix = [[0, 0.6, 0.0], [0.6, 0, 0.6], [0.0, 0.6, 0]]
        medium, _ = make_medium(matrix)
        assert medium.can_sense(0, 2)
        assert medium.can_sense(2, 0)

    def test_busy_until(self):
        medium, _ = make_medium([[0, 0.9], [0.9, 0]])
        medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert medium.busy_until(1, 0.001) == pytest.approx(0.002)
        assert medium.busy_until(1, 0.005) == pytest.approx(0.005)

    def test_node_is_transmitting(self):
        medium, _ = make_medium([[0, 0.9], [0.9, 0]])
        medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert medium.node_is_transmitting(0, 0.001)
        assert not medium.node_is_transmitting(1, 0.001)


class TestCollisions:
    def test_overlapping_comparable_signals_collide(self):
        """Two overlapping transmissions of similar strength at the receiver
        destroy each other (no capture)."""
        matrix = [[0, 0.0, 0.6], [0.0, 0, 0.6], [0.6, 0.6, 0]]
        medium, _ = make_medium(matrix, seed=1, capture_probability=0.0)
        tx_a = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        tx_b = medium.begin(make_frame(1), now=0.001, airtime=0.002, bitrate=5_500_000)
        received_a = medium.complete(tx_a, now=0.002)
        received_b = medium.complete(tx_b, now=0.003)
        assert received_a == [] and received_b == []
        assert medium.collisions >= 1

    def test_capture_saves_much_stronger_frame(self):
        """With a large delivery margin the stronger frame survives (capture)."""
        matrix = [[0, 0.0, 0.9], [0.0, 0, 0.12], [0.9, 0.12, 0]]
        medium, _ = make_medium(matrix, seed=3, capture_probability=1.0,
                                capture_margin=0.35)
        captured = 0
        for i in range(50):
            start = i * 0.01
            tx_a = medium.begin(make_frame(0), now=start, airtime=0.002, bitrate=5_500_000)
            tx_b = medium.begin(make_frame(1), now=start + 0.0005, airtime=0.002,
                                bitrate=5_500_000)
            if 2 in medium.complete(tx_a, now=start + 0.002):
                captured += 1
            medium.complete(tx_b, now=start + 0.0025)
        assert captured > 30
        assert medium.captures > 0

    def test_half_duplex_receiver(self):
        """A node transmitting cannot simultaneously receive."""
        matrix = [[0, 0.9], [0.9, 0]]
        medium, _ = make_medium(matrix)
        tx_a = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        tx_b = medium.begin(make_frame(1), now=0.001, airtime=0.002, bitrate=5_500_000)
        assert medium.complete(tx_a, now=0.002) == []
        assert medium.complete(tx_b, now=0.003) == []

    def test_non_overlapping_transmissions_do_not_interfere(self):
        matrix = [[0, 0.0, 1.0], [0.0, 0, 1.0], [1.0, 1.0, 0]]
        medium, _ = make_medium(matrix, interference_threshold=0.05)
        tx_a = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        assert medium.complete(tx_a, now=0.002) == [2]
        tx_b = medium.begin(make_frame(1), now=0.003, airtime=0.002, bitrate=5_500_000)
        assert medium.complete(tx_b, now=0.005) == [2]

    def test_weak_interferer_below_threshold_ignored(self):
        matrix = [[0, 0.0, 1.0], [0.0, 0, 0.04], [1.0, 0.04, 0]]
        medium, _ = make_medium(matrix, interference_threshold=0.05)
        tx_a = medium.begin(make_frame(0), now=0.0, airtime=0.002, bitrate=5_500_000)
        medium.begin(make_frame(1), now=0.0005, airtime=0.002, bitrate=5_500_000)
        assert medium.complete(tx_a, now=0.002) == [2]
