"""Tests for the runtime liveness monitor (:mod:`repro.sim.monitor`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import RunConfig, run_single_flow
from repro.sim.monitor import SimMonitor, StallDiagnosis
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.topology.graph import Topology


def chain_topology(hops=3, delivery=0.9):
    n = hops + 1
    matrix = np.zeros((n, n))
    for i in range(hops):
        matrix[i, i + 1] = matrix[i + 1, i] = delivery
    return Topology(matrix)


def run_config(**overrides):
    defaults = dict(seed=1, total_packets=32, batch_size=16, packet_size=256,
                    coding_payload_size=16, max_duration=30.0)
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestValidation:
    def test_rejects_nonpositive_interval(self):
        sim = Simulator(chain_topology(), SimConfig(seed=0))
        with pytest.raises(ValueError, match="interval"):
            SimMonitor(sim, interval=0.0)

    def test_rejects_zero_stall_intervals(self):
        sim = Simulator(chain_topology(), SimConfig(seed=0))
        with pytest.raises(ValueError, match="stall_intervals"):
            SimMonitor(sim, interval=1.0, stall_intervals=0)

    def test_config_rejects_nonpositive_monitor_interval(self):
        with pytest.raises(ValueError, match="monitor_interval"):
            SimConfig(seed=0, monitor=True, monitor_interval=0.0)


class TestHealthyRuns:
    def test_monitored_healthy_flow_completes_silently(self):
        result = run_single_flow(chain_topology(), "MORE", 0, 3,
                                 config=run_config(monitor=True,
                                                   monitor_interval=0.05))
        assert result.completed and not result.aborted

    def test_monitor_off_by_default(self):
        sim = Simulator(chain_topology(), SimConfig(seed=0))
        assert sim.monitor is None


class TestStallDetection:
    def stranded_config(self, **overrides):
        # Both relays die mid-batch and never recover; without the
        # supervisor's progress_timeout the flow would hang to max_duration.
        return run_config(
            faults={"kind": "scheduled",
                    "params": {"downs": {1: [[0.01, 1e9]], 2: [[0.01, 1e9]]}}},
            monitor=True, **overrides)

    @pytest.mark.parametrize("protocol", ("MORE", "ExOR", "Srcr"))
    def test_stranded_flow_raises_one_screen_diagnosis(self, protocol):
        with pytest.raises(StallDiagnosis) as excinfo:
            run_single_flow(chain_topology(), protocol, 0, 3,
                            config=self.stranded_config())
        diagnosis = excinfo.value
        assert "no progress" in diagnosis.reason
        assert diagnosis.down_nodes == frozenset({1, 2})
        assert list(diagnosis.flows) and diagnosis.ticks >= 1
        report = diagnosis.render()
        assert "down nodes: [1, 2]" in report
        assert "last progress" in report

    def test_flagged_within_one_check_interval_of_the_stall(self):
        with pytest.raises(StallDiagnosis) as excinfo:
            run_single_flow(chain_topology(), "MORE", 0, 3,
                            config=self.stranded_config(monitor_interval=0.5))
        # Crash at t=0.01: the next check that sees a frozen fingerprint
        # (at most two intervals after the crash) must raise.
        assert excinfo.value.now <= 0.01 + 2 * 0.5

    def test_more_diagnosis_carries_rank_and_credits(self):
        with pytest.raises(StallDiagnosis) as excinfo:
            run_single_flow(chain_topology(), "MORE", 0, 3,
                            config=self.stranded_config())
        (info,) = excinfo.value.flows.values()
        assert info["total"] == 32
        assert "credits" in info and "rank" in info


class TestDeadlockDetection:
    def test_drained_queue_with_incomplete_flow_is_a_deadlock(self):
        sim = Simulator(chain_topology(), SimConfig(seed=0, monitor=True))
        sim.stats.register_flow(1, source=0, destination=3, total_packets=8,
                                packet_size=256, start_time=0.0)
        # No agents, no traffic: after the monitor's first tick the queue is
        # empty while flow 1 is incomplete — nothing will ever run again.
        with pytest.raises(StallDiagnosis, match="deadlock"):
            sim.run(until=5.0)


class TestRendering:
    def test_render_is_one_screen(self):
        diagnosis = StallDiagnosis(
            "no progress on flow(s) [1]", now=2.0,
            flows={1: {"delivered": 3, "total": 32, "last_progress": 1.0,
                       "rank": 5, "credits": {2: 1.25}, "queued": 4}},
            down_nodes=frozenset({2}), ticks=2)
        report = str(diagnosis)
        assert report.splitlines()[0].startswith("stall diagnosis at t=2.000s")
        assert "flow 1: 3/32 pkts" in report
        assert "forwarder credits: 2:1.25" in report
        assert "queued packets: 4" in report
