"""Tests and properties for scalar/vector GF(2^8) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import arithmetic as gf

field_element = st.integers(min_value=0, max_value=255)
nonzero_element = st.integers(min_value=1, max_value=255)


class TestScalarArithmetic:
    def test_add_is_xor(self):
        assert gf.add(0b1010, 0b0110) == 0b1100
        assert gf.sub(0b1010, 0b0110) == 0b1100

    def test_add_identity_and_self_inverse(self):
        for a in range(256):
            assert gf.add(a, 0) == a
            assert gf.add(a, a) == 0

    def test_mul_examples(self):
        assert gf.mul(0, 77) == 0
        assert gf.mul(1, 77) == 77
        assert gf.mul(0x57, 0x83) == 0xC1

    def test_div_inverts_mul(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(1, 256))
            assert gf.div(gf.mul(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf.div(5, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)

    def test_inv(self):
        for a in range(1, 256):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_power(self):
        assert gf.power(0, 0) == 1
        assert gf.power(0, 5) == 0
        assert gf.power(7, 1) == 7
        assert gf.power(3, 255) == 1  # group order
        a = 0x53
        manual = 1
        for _ in range(7):
            manual = gf.mul(manual, a)
        assert gf.power(a, 7) == manual


class TestFieldAxiomsProperties:
    @given(field_element, field_element, field_element)
    @settings(max_examples=200, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))

    @given(field_element, field_element)
    @settings(max_examples=200, deadline=None)
    def test_mul_commutative(self, a, b):
        assert gf.mul(a, b) == gf.mul(b, a)

    @given(field_element, field_element, field_element)
    @settings(max_examples=200, deadline=None)
    def test_distributive(self, a, b, c):
        assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))

    @given(nonzero_element, nonzero_element)
    @settings(max_examples=200, deadline=None)
    def test_no_zero_divisors(self, a, b):
        assert gf.mul(a, b) != 0

    @given(field_element, nonzero_element)
    @settings(max_examples=200, deadline=None)
    def test_div_then_mul_roundtrip(self, a, b):
        assert gf.mul(gf.div(a, b), b) == a


class TestVectorKernels:
    def test_vec_add(self, rng):
        a = rng.integers(0, 256, 64, dtype=np.uint8)
        b = rng.integers(0, 256, 64, dtype=np.uint8)
        assert np.array_equal(gf.vec_add(a, b), a ^ b)

    def test_vec_scale_matches_scalar(self, rng):
        vector = rng.integers(0, 256, 128, dtype=np.uint8)
        for coefficient in (0, 1, 2, 77, 255):
            scaled = gf.vec_scale(vector, coefficient)
            expected = np.array([gf.mul(int(v), coefficient) for v in vector], dtype=np.uint8)
            assert np.array_equal(scaled, expected)

    def test_vec_scale_by_zero_and_one(self, rng):
        vector = rng.integers(0, 256, 32, dtype=np.uint8)
        assert not gf.vec_scale(vector, 0).any()
        assert np.array_equal(gf.vec_scale(vector, 1), vector)

    def test_vec_scale_returns_copy_for_identity(self, rng):
        vector = rng.integers(0, 256, 32, dtype=np.uint8)
        result = gf.vec_scale(vector, 1)
        result[0] ^= 0xFF
        assert result[0] != vector[0]

    def test_scale_and_add_in_place(self, rng):
        accumulator = rng.integers(0, 256, 64, dtype=np.uint8)
        vector = rng.integers(0, 256, 64, dtype=np.uint8)
        expected = accumulator ^ gf.vec_scale(vector, 0x3A)
        gf.scale_and_add(accumulator, vector, 0x3A)
        assert np.array_equal(accumulator, expected)

    def test_scale_and_add_zero_coefficient_is_noop(self, rng):
        accumulator = rng.integers(0, 256, 64, dtype=np.uint8)
        before = accumulator.copy()
        gf.scale_and_add(accumulator, rng.integers(0, 256, 64, dtype=np.uint8), 0)
        assert np.array_equal(accumulator, before)

    def test_vec_mul_elementwise(self, rng):
        a = rng.integers(0, 256, 40, dtype=np.uint8)
        b = rng.integers(0, 256, 40, dtype=np.uint8)
        result = gf.vec_mul(a, b)
        for i in range(40):
            assert result[i] == gf.mul(int(a[i]), int(b[i]))

    @given(st.integers(min_value=1, max_value=64), field_element, field_element)
    @settings(max_examples=60, deadline=None)
    def test_scaling_is_linear(self, length, c1, c2):
        rng = np.random.default_rng(length)
        v = rng.integers(0, 256, length, dtype=np.uint8)
        lhs = gf.vec_scale(v, c1 ^ 0) .copy()
        gf.scale_and_add(lhs, v, c2)
        rhs = gf.vec_scale(v, gf.add(c1, c2))
        assert np.array_equal(lhs, rhs)

    def test_random_coefficients_range_and_determinism(self):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        a = gf.random_coefficients(1000, rng1)
        b = gf.random_coefficients(1000, rng2)
        assert a.dtype == np.uint8
        assert np.array_equal(a, b)

    def test_random_nonzero_coefficient(self):
        rng = np.random.default_rng(2)
        values = {gf.random_nonzero_coefficient(rng) for _ in range(300)}
        assert 0 not in values
        assert min(values) >= 1 and max(values) <= 255
