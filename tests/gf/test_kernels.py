"""Tests for the vectorized GF(2^8) kernels against the scalar arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.arithmetic import add, mul, scale_and_add
from repro.gf.kernels import (
    ShiftedRows,
    gf_matmul,
    gf_outer,
    gf_vecmat,
    scale_and_add_rows,
    scale_rows,
)


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Textbook triple loop over the scalar field helpers."""
    n, k = a.shape
    s = b.shape[1]
    out = np.zeros((n, s), dtype=np.uint8)
    for i in range(n):
        for j in range(s):
            acc = 0
            for kk in range(k):
                acc = add(acc, mul(int(a[i, kk]), int(b[kk, j])))
            out[i, j] = acc
    return out


class TestGfMatmul:
    def test_matches_reference_small(self, rng):
        a = rng.integers(0, 256, (3, 5), dtype=np.uint8)
        b = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        assert np.array_equal(gf_matmul(a, b), reference_matmul(a, b))

    def test_matches_reference_large_uses_shifted_rows(self, rng):
        # n >= 8 and s >= 8 routes through the shifted-row formulation.
        a = rng.integers(0, 256, (16, 12), dtype=np.uint8)
        b = rng.integers(0, 256, (12, 33), dtype=np.uint8)
        assert np.array_equal(gf_matmul(a, b), reference_matmul(a, b))

    def test_identity(self, rng):
        b = rng.integers(0, 256, (6, 10), dtype=np.uint8)
        identity = np.eye(6, dtype=np.uint8)
        assert np.array_equal(gf_matmul(identity, b), b)

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((0, 4), (4, 5)), ((3, 0), (0, 5)), ((3, 4), (4, 0)),
    ])
    def test_empty_dimensions(self, shape_a, shape_b):
        a = np.zeros(shape_a, dtype=np.uint8)
        b = np.zeros(shape_b, dtype=np.uint8)
        result = gf_matmul(a, b)
        assert result.shape == (shape_a[0], shape_b[1])
        assert not result.any()

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8),
                      np.zeros((4, 2), dtype=np.uint8))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 2), dtype=np.uint8))


class TestShiftedRows:
    def test_matches_gf_matmul(self, rng):
        b = rng.integers(0, 256, (9, 100), dtype=np.uint8)
        operand = ShiftedRows(b)
        for rows in (1, 2, 8, 20):
            a = rng.integers(0, 256, (rows, 9), dtype=np.uint8)
            assert np.array_equal(operand.matmul(a), reference_matmul(a, b))

    def test_reuse_after_matmul(self, rng):
        """The cached stack survives (and is not corrupted by) repeated use."""
        b = rng.integers(0, 256, (4, 17), dtype=np.uint8)
        operand = ShiftedRows(b)
        a = rng.integers(0, 256, (8, 4), dtype=np.uint8)
        first = operand.matmul(a)
        second = operand.matmul(a)
        assert np.array_equal(first, second)

    def test_zero_width_operand(self, rng):
        operand = ShiftedRows(np.zeros((4, 0), dtype=np.uint8))
        result = operand.matmul(rng.integers(0, 256, (3, 4), dtype=np.uint8))
        assert result.shape == (3, 0)

    def test_mismatched_inner_dimension_rejected(self, rng):
        operand = ShiftedRows(rng.integers(0, 256, (4, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            operand.matmul(np.zeros((2, 5), dtype=np.uint8))

    def test_vecmul_mismatched_length_rejected(self, rng):
        operand = ShiftedRows(rng.integers(0, 256, (4, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            operand.vecmul(np.zeros(3, dtype=np.uint8))


class TestVectorAndRowKernels:
    def test_gf_vecmat_matches_matmul(self, rng):
        v = rng.integers(0, 256, 6, dtype=np.uint8)
        m = rng.integers(0, 256, (6, 11), dtype=np.uint8)
        assert np.array_equal(gf_vecmat(v, m), reference_matmul(v[None, :], m)[0])

    def test_gf_outer_matches_scalar(self, rng):
        c = rng.integers(0, 256, 5, dtype=np.uint8)
        r = rng.integers(0, 256, 9, dtype=np.uint8)
        outer = gf_outer(c, r)
        for i in range(5):
            for j in range(9):
                assert outer[i, j] == mul(int(c[i]), int(r[j]))

    def test_scale_rows_matches_scale_and_add(self, rng):
        m = rng.integers(0, 256, (4, 20), dtype=np.uint8)
        factors = rng.integers(0, 256, 4, dtype=np.uint8)
        scaled = scale_rows(m, factors)
        for i in range(4):
            expected = np.zeros(20, dtype=np.uint8)
            scale_and_add(expected, m[i], int(factors[i]))
            assert np.array_equal(scaled[i], expected)

    def test_scale_and_add_rows_in_place(self, rng):
        m = rng.integers(0, 256, (3, 15), dtype=np.uint8)
        acc = rng.integers(0, 256, (3, 15), dtype=np.uint8)
        factors = rng.integers(0, 256, 3, dtype=np.uint8)
        expected = acc.copy()
        for i in range(3):
            scale_and_add(expected[i], m[i], int(factors[i]))
        scale_and_add_rows(acc, m, factors)
        assert np.array_equal(acc, expected)

    def test_shape_mismatches_rejected(self, rng):
        with pytest.raises(ValueError):
            scale_rows(np.zeros((3, 4), dtype=np.uint8),
                       np.zeros(2, dtype=np.uint8))
        with pytest.raises(ValueError):
            scale_and_add_rows(np.zeros((2, 4), dtype=np.uint8),
                               np.zeros((3, 4), dtype=np.uint8),
                               np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            gf_outer(np.zeros((2, 2), dtype=np.uint8), np.zeros(2, dtype=np.uint8))


@given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_property_matmul_matches_reference(n, k, s, seed):
    """gf_matmul equals the scalar triple loop for every shape, both code paths."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, (n, k), dtype=np.uint8)
    b = rng.integers(0, 256, (k, s), dtype=np.uint8)
    assert np.array_equal(gf_matmul(a, b), reference_matmul(a, b))
