"""Tests for GF(2^8) matrix algebra (Gaussian elimination, inversion)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import matrix as gfm
from repro.gf.matrix import SingularMatrixError


def random_matrix(rows, cols, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestRowReduce:
    def test_identity_is_fixed_point(self):
        identity = np.eye(5, dtype=np.uint8)
        reduced, pivots = gfm.row_reduce(identity)
        assert np.array_equal(reduced, identity)
        assert pivots == [0, 1, 2, 3, 4]

    def test_zero_matrix(self):
        reduced, pivots = gfm.row_reduce(np.zeros((3, 4), dtype=np.uint8))
        assert pivots == []
        assert not reduced.any()

    def test_pivots_are_one_in_reduced_form(self):
        matrix = random_matrix(6, 6, seed=1)
        reduced, pivots = gfm.row_reduce(matrix, reduced=True)
        for row, col in enumerate(pivots):
            assert reduced[row, col] == 1
            column = reduced[:, col].copy()
            column[row] = 0
            assert not column.any()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gfm.row_reduce(np.zeros(4, dtype=np.uint8))


class TestRank:
    def test_full_rank_random(self):
        matrix = random_matrix(8, 8, seed=2)
        # A random 8x8 over GF(256) is full rank with overwhelming probability.
        assert gfm.rank(matrix) == 8

    def test_rank_of_duplicated_rows(self):
        row = random_matrix(1, 6, seed=3)
        matrix = np.vstack([row, row, row])
        assert gfm.rank(matrix) == 1

    def test_rank_of_linear_combination(self):
        a = random_matrix(2, 5, seed=4)
        combo = gfm.matmul(np.array([[3, 7]], dtype=np.uint8), a)
        stacked = np.vstack([a, combo])
        assert gfm.rank(stacked) == 2

    def test_rectangular_rank_bounded(self):
        matrix = random_matrix(3, 10, seed=5)
        assert gfm.rank(matrix) <= 3


class TestInvertAndSolve:
    def test_invert_roundtrip(self):
        matrix = random_matrix(6, 6, seed=6)
        inverse = gfm.invert(matrix)
        product = gfm.matmul(matrix, inverse)
        assert np.array_equal(product, np.eye(6, dtype=np.uint8))

    def test_invert_singular_raises(self):
        row = random_matrix(1, 4, seed=7)
        singular = np.vstack([row, row, random_matrix(2, 4, seed=8)])
        with pytest.raises(SingularMatrixError):
            gfm.invert(singular)

    def test_invert_non_square_raises(self):
        with pytest.raises(ValueError):
            gfm.invert(random_matrix(2, 3))

    def test_solve_vector(self):
        matrix = random_matrix(5, 5, seed=9)
        x = random_matrix(1, 5, seed=10)[0]
        b = gfm.matmul(matrix, x.reshape(-1, 1))[:, 0]
        solved = gfm.solve(matrix, b)
        assert np.array_equal(solved, x)

    def test_solve_matrix_rhs(self):
        matrix = random_matrix(4, 4, seed=11)
        x = random_matrix(4, 7, seed=12)
        b = gfm.matmul(matrix, x)
        solved = gfm.solve(matrix, b)
        assert np.array_equal(solved, x)

    def test_solve_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gfm.solve(random_matrix(4, 4), np.zeros(3, dtype=np.uint8))

    def test_solve_non_square_rejected(self):
        with pytest.raises(ValueError):
            gfm.solve(random_matrix(4, 3), np.zeros(4, dtype=np.uint8))

    def test_is_invertible(self):
        assert gfm.is_invertible(np.eye(3, dtype=np.uint8))
        assert not gfm.is_invertible(np.zeros((3, 3), dtype=np.uint8))
        assert not gfm.is_invertible(random_matrix(2, 3))


class TestMatmul:
    def test_identity(self):
        matrix = random_matrix(4, 6, seed=13)
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gfm.matmul(identity, matrix), matrix)

    def test_associativity(self):
        a = random_matrix(3, 4, seed=14)
        b = random_matrix(4, 5, seed=15)
        c = random_matrix(5, 2, seed=16)
        left = gfm.matmul(gfm.matmul(a, b), c)
        right = gfm.matmul(a, gfm.matmul(b, c))
        assert np.array_equal(left, right)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gfm.matmul(random_matrix(3, 4), random_matrix(3, 4))


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_property_invert_random_full_rank(size, seed):
    """Random square matrices over GF(2^8) are (almost always) invertible and
    inversion round-trips; singular draws are skipped."""
    matrix = np.random.default_rng(seed).integers(0, 256, size=(size, size), dtype=np.uint8)
    if gfm.rank(matrix) < size:
        return
    product = gfm.matmul(matrix, gfm.invert(matrix))
    assert np.array_equal(product, np.eye(size, dtype=np.uint8))
