"""Tests for the GF(2^8) lookup tables."""

from __future__ import annotations

import numpy as np

from repro.gf import tables


def test_field_size_and_table_shapes():
    assert tables.FIELD_SIZE == 256
    assert tables.MUL.shape == (256, 256)
    assert tables.MUL.dtype == np.uint8
    assert tables.EXP.shape == (512,)
    assert tables.LOG.shape == (256,)
    assert tables.INV.shape == (256,)


def test_mul_table_is_the_papers_64kib_lookup_table():
    # Section 4.6(a): "a 64KiB lookup-table indexed by pairs of 8 bits".
    assert tables.MUL_TABLE_BYTES == 64 * 1024


def test_mul_table_matches_reference_multiplication():
    rng = np.random.default_rng(0)
    for _ in range(500):
        a = int(rng.integers(0, 256))
        b = int(rng.integers(0, 256))
        assert tables.MUL[a, b] == tables._carryless_multiply(a, b)


def test_known_aes_field_products():
    # Well-known products in the AES field (0x11B).
    assert tables._carryless_multiply(0x57, 0x83) == 0xC1
    assert tables.MUL[0x57, 0x83] == 0xC1
    assert tables.MUL[0x02, 0x80] == 0x1B  # reduction kicks in


def test_multiplication_by_zero_and_one():
    values = np.arange(256)
    assert np.all(tables.MUL[0, values] == 0)
    assert np.all(tables.MUL[values, 0] == 0)
    assert np.all(tables.MUL[1, values] == values)
    assert np.all(tables.MUL[values, 1] == values)


def test_mul_table_symmetry():
    assert np.array_equal(tables.MUL, tables.MUL.T)


def test_exp_log_are_inverse_bijections():
    # log(exp(i)) == i for i in [0, 254] and exp(log(a)) == a for a != 0.
    for i in range(255):
        assert tables.LOG[tables.EXP[i]] == i
    for a in range(1, 256):
        assert tables.EXP[tables.LOG[a]] == a


def test_exp_table_wraps_for_modulo_free_lookup():
    for i in range(255):
        assert tables.EXP[i] == tables.EXP[i + 255]


def test_inverse_table():
    for a in range(1, 256):
        assert tables.MUL[a, tables.INV[a]] == 1
    assert tables.INV[0] == 0
    assert tables.INV[1] == 1


def test_multiplicative_group_is_cyclic_of_order_255():
    seen = set()
    x = 1
    for _ in range(255):
        seen.add(x)
        x = tables._carryless_multiply(x, tables.GENERATOR)
    assert len(seen) == 255
    assert x == 1  # generator order divides 255 and returns to identity
