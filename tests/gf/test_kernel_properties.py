"""Property-based differential tests of the elimination kernels.

Every ``gf_vecmat`` variant — the MUL-table gather (``mul``), the split
4 KiB nibble tables (``nibble``) and the LOG/EXP formulation (``logexp``)
— computes the same algebraic quantity, ``vector @ matrix`` over GF(2^8),
so each must be **bit-identical** to the scalar ``gf_vecmat_reference``
loop on every input.  GF arithmetic is exact (no rounding), which is what
makes this differential harness decisive: any mismatch is a bug, never
tolerance noise.

The harness drives ≥200 deterministic seeded-random cases per run across
operand shapes (m rows up to 64, n columns up to 96, including the m=1 and
n=1 degenerate shapes), plus adversarial constructions: the all-zero
vector, all-zero matrices, saturated 0xFF operands and single-element
operands.  Algebraic laws (linearity in the vector argument, consistency
with ``gf_matmul`` rows) pin the kernels to the mathematics rather than
to each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf.kernels import (
    VECMAT_KERNELS,
    gf_matmul,
    gf_vecmat_reference,
    resolve_vecmat,
)

KERNEL_NAMES = sorted(VECMAT_KERNELS)

#: Seeded-random differential cases per kernel (3 kernels x 70 = 210 >= 200).
CASE_COUNT = 70


def _random_operands(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """One random (vector, matrix) pair, shapes drawn per case."""
    m = int(rng.integers(1, 65))
    n = int(rng.integers(1, 97))
    vector = rng.integers(0, 256, size=m, dtype=np.uint8)
    matrix = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
    # A quarter of the cases zero the vector or sparsify the matrix so the
    # "skip work on zero coefficients" fast paths stay covered.
    style = int(rng.integers(0, 8))
    if style == 0:
        vector[:] = 0
    elif style == 1:
        matrix[:] = 0
    elif style == 2:
        vector[rng.random(m) < 0.7] = 0
    elif style == 3:
        vector[:] = 255
        matrix[:] = 255
    return vector, matrix


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_match_reference_on_seeded_random_cases(name):
    kernel = VECMAT_KERNELS[name]
    for seed in range(CASE_COUNT):
        rng = np.random.default_rng((9000, seed))
        vector, matrix = _random_operands(rng)
        expected = gf_vecmat_reference(vector, matrix)
        actual = kernel(vector, matrix)
        assert actual.dtype == np.uint8
        np.testing.assert_array_equal(
            actual, expected,
            err_msg=f"kernel {name!r} diverged on seed {seed} "
                    f"(shape {matrix.shape})")


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("m,n", [(1, 1), (1, 96), (64, 1)])
def test_kernels_match_reference_on_degenerate_shapes(name, m, n):
    rng = np.random.default_rng((9100, m, n))
    vector = rng.integers(0, 256, size=m, dtype=np.uint8)
    matrix = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
    np.testing.assert_array_equal(
        VECMAT_KERNELS[name](vector, matrix),
        gf_vecmat_reference(vector, matrix))


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_are_linear_in_the_vector(name):
    """vecmat(a ^ b, M) == vecmat(a, M) ^ vecmat(b, M) (GF(2^8) addition)."""
    kernel = VECMAT_KERNELS[name]
    for seed in range(24):
        rng = np.random.default_rng((9200, seed))
        m = int(rng.integers(1, 33))
        n = int(rng.integers(1, 64))
        a = rng.integers(0, 256, size=m, dtype=np.uint8)
        b = rng.integers(0, 256, size=m, dtype=np.uint8)
        matrix = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
        np.testing.assert_array_equal(
            kernel(a ^ b, matrix), kernel(a, matrix) ^ kernel(b, matrix))


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_agree_with_matmul_rows(name):
    """Row i of gf_matmul(C, P) is vecmat(C[i], P) — one algebra, two APIs."""
    kernel = VECMAT_KERNELS[name]
    rng = np.random.default_rng(9300)
    coefficients = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
    payloads = rng.integers(0, 256, size=(16, 40), dtype=np.uint8)
    product = gf_matmul(coefficients, payloads)
    for row in range(coefficients.shape[0]):
        np.testing.assert_array_equal(kernel(coefficients[row], payloads),
                                      product[row])


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_zero_vector_yields_zero_output(name):
    matrix = np.arange(64, dtype=np.uint8).reshape(8, 8)
    result = VECMAT_KERNELS[name](np.zeros(8, dtype=np.uint8), matrix)
    assert not result.any()


def test_resolve_vecmat_returns_registered_kernels():
    for name in KERNEL_NAMES:
        assert resolve_vecmat(name) is VECMAT_KERNELS[name]


def test_resolve_vecmat_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown"):
        resolve_vecmat("simd")


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_validate_operand_shapes(name):
    kernel = VECMAT_KERNELS[name]
    with pytest.raises(ValueError):
        kernel(np.zeros(3, dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))
    with pytest.raises(ValueError):
        kernel(np.zeros((2, 2), dtype=np.uint8), np.zeros((2, 5), dtype=np.uint8))


def test_reference_kernel_validates_operand_shapes():
    with pytest.raises(ValueError):
        gf_vecmat_reference(np.zeros(3, dtype=np.uint8),
                            np.zeros((4, 5), dtype=np.uint8))
    with pytest.raises(ValueError):
        gf_vecmat_reference(np.zeros((2, 2), dtype=np.uint8),
                            np.zeros((2, 5), dtype=np.uint8))


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernels_handle_empty_operands(name):
    """Zero rows and zero-width rows both yield an empty/zero result."""
    kernel = VECMAT_KERNELS[name]
    no_rows = kernel(np.zeros(0, dtype=np.uint8),
                     np.zeros((0, 7), dtype=np.uint8))
    assert no_rows.shape == (7,) and not no_rows.any()
    no_width = kernel(np.full(5, 0xAB, dtype=np.uint8),
                      np.zeros((5, 0), dtype=np.uint8))
    assert no_width.shape == (0,)
