"""Tests for experiment statistics helpers and workload generators."""

from __future__ import annotations

import math

import pytest

from repro.experiments.stats import (
    cdf,
    median,
    median_gain,
    pairwise_gains,
    percentile,
    summarize,
)
from repro.experiments.workloads import (
    challenged_pairs,
    multiflow_sets,
    random_pairs,
    reachable_pairs,
    spatial_reuse_pairs,
)
from repro.metrics.etx import best_path
from repro.topology.generator import chain


class TestStats:
    def test_cdf_is_monotone_and_normalised(self):
        x, y = cdf([5.0, 1.0, 3.0, 3.0])
        assert list(x) == [1.0, 3.0, 3.0, 5.0]
        assert y[0] == pytest.approx(0.25)
        assert y[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(y, y[1:]))

    def test_cdf_empty(self):
        x, y = cdf([])
        assert x.size == 0 and y.size == 0

    def test_percentiles_and_median(self):
        values = list(range(1, 101))
        assert median(values) == pytest.approx(50.5)
        assert percentile(values, 10) == pytest.approx(10.9)
        assert math.isnan(median([]))

    def test_summarize(self):
        summary = summarize([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(25.0)
        assert summary.median == pytest.approx(25.0)
        assert summary.minimum == 10.0 and summary.maximum == 40.0
        empty = summarize([])
        assert empty.count == 0 and math.isnan(empty.mean)

    def test_median_gain(self):
        assert median_gain([20, 40, 60], [10, 20, 30]) == pytest.approx(2.0)
        assert math.isnan(median_gain([1.0], [0.0]))

    def test_pairwise_gains(self):
        gains = pairwise_gains([10, 30], [5, 10])
        assert gains == [2.0, 3.0]
        assert pairwise_gains([10], [0.0]) == []


class TestWorkloads:
    def test_reachable_pairs_excludes_self(self, testbed):
        pairs = reachable_pairs(testbed)
        assert all(s != d for s, d in pairs)
        assert len(pairs) > 100  # a connected 20-node mesh has many pairs

    def test_reachable_pairs_min_hops(self, testbed):
        pairs = reachable_pairs(testbed, min_hops=3)
        for source, destination in pairs[:10]:
            assert len(best_path(testbed, source, destination)) - 1 >= 3

    def test_random_pairs_deterministic(self, testbed):
        assert random_pairs(testbed, 10, seed=5) == random_pairs(testbed, 10, seed=5)
        assert random_pairs(testbed, 10, seed=5) != random_pairs(testbed, 10, seed=6)

    def test_random_pairs_no_duplicates_when_possible(self, testbed):
        pairs = random_pairs(testbed, 30, seed=1)
        assert len(set(pairs)) == 30

    def test_random_pairs_on_tiny_topology(self):
        topo = chain(1, link_delivery=0.9)
        pairs = random_pairs(topo, 5, seed=0)
        assert len(pairs) == 5  # sampled with replacement
        assert set(pairs) <= {(0, 1), (1, 0)}

    def test_spatial_reuse_pairs_have_isolated_endpoints(self, testbed):
        pairs = spatial_reuse_pairs(testbed, 10, path_hops=4)
        for source, destination in pairs:
            path = best_path(testbed, source, destination)
            assert len(path) - 1 == 4
            last_hop_sender = path[-2]
            assert testbed.delivery(source, last_hop_sender) <= 0.10

    def test_multiflow_sets_shape(self, testbed):
        sets = multiflow_sets(testbed, flows_per_set=3, set_count=5, seed=2)
        assert len(sets) == 5
        for flow_set in sets:
            assert len(flow_set) == 3
            assert len(set(flow_set)) == 3

    def test_multiflow_sets_too_many_flows(self):
        topo = chain(1, link_delivery=0.9)
        with pytest.raises(ValueError):
            multiflow_sets(topo, flows_per_set=10, set_count=1)

    def test_challenged_pairs_have_poor_direct_links(self, testbed):
        pairs = challenged_pairs(testbed, 10, seed=3)
        for source, destination in pairs:
            assert testbed.delivery(source, destination) <= 0.2
