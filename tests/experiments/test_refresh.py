"""Online link-state refresh: mid-flow control-plane rebuilds per protocol.

Covers the refresh loop itself (scheduling, the inf no-op, disconnected
control views) and each protocol's in-place plan rebuild: MORE forwarder
recruitment + cache invalidation, ExOR participant re-ranking without
losing transfer progress, Srcr re-routing with detours for stranded relays.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.refresh import (
    LinkStateRefresher,
    refresh_exor_flow,
    refresh_more_flow,
    refresh_srcr_flow,
)
from repro.experiments.runner import RunConfig, run_single_flow
from repro.protocols.exor.agent import setup_exor_flow
from repro.protocols.more.agent import MoreAgent
from repro.protocols.more.flow import setup_more_flow
from repro.protocols.srcr.agent import SrcrAgent, setup_srcr_flow
from repro.sim.radio import SimConfig
from repro.sim.simulator import Simulator
from repro.topology.generator import chain, diamond
from repro.topology.graph import Topology


def _diamond_views():
    """A 2-relay diamond plus a control view in which relay 2 is invisible."""
    full = diamond(source_to_relays=0.7, relays_to_destination=0.7,
                   relay_count=2, direct=0.1)
    weak = full.delivery_matrix()
    for a, b in ((0, 2), (2, 0), (2, 3), (3, 2)):
        weak[a, b] = 0.0
    return full, Topology(weak)


class TestRefresherLoop:
    def test_infinite_period_schedules_nothing(self):
        topology = chain(3, link_delivery=0.8)
        sim = Simulator(topology, SimConfig(seed=1))
        handle = setup_more_flow(sim, topology, 0, 3, total_packets=8,
                                 batch_size=4, coding_payload_size=4)
        before = sim.events.processed
        refresher = LinkStateRefresher(sim, [handle], RunConfig(seed=1))
        assert not refresher.enabled
        refresher.install()
        sim.run(until=0.5)
        assert refresher.refreshes == 0
        assert sim.events.processed > before  # the flow itself did run

    def test_periodic_refreshes_fire_and_flow_completes(self):
        topology = chain(3, link_delivery=0.8, skip_delivery=0.2)
        sim = Simulator(topology, SimConfig(seed=1))
        config = RunConfig(seed=1, refresh_period=0.05, total_packets=16,
                           batch_size=8)
        handle = setup_more_flow(sim, topology, 0, 3, total_packets=16,
                                 batch_size=8, coding_payload_size=4,
                                 control_topology=config.control_view(topology))
        refresher = LinkStateRefresher(sim, [handle], config).install()
        sim.run(until=2.0, stop_condition=sim.stats.all_flows_complete)
        assert sim.stats.flows[handle.flow_id].completed
        assert refresher.refreshes >= 2

    def test_disconnected_control_view_keeps_stale_plan(self):
        topology = chain(3, link_delivery=0.8)
        sim = Simulator(topology, SimConfig(seed=1))
        config = RunConfig(seed=1, refresh_period=0.1)
        handle = setup_srcr_flow(sim, topology, 0, 3, total_packets=4)
        old_route = list(handle.spec.route)
        refresher = LinkStateRefresher(sim, [handle], config)
        # Probes stopped returning: the control view sees no links at all.
        refresher.control_view = lambda: Topology(np.zeros((4, 4)))
        refresher._tick()
        assert refresher.skipped_flows == 1
        assert handle.spec.route == old_route

    def test_refresh_uses_fresh_probe_noise_per_round(self):
        topology = chain(3, link_delivery=0.8)
        sim = Simulator(topology, SimConfig(seed=1))
        config = RunConfig(seed=1, refresh_period=0.1)
        refresher = LinkStateRefresher(sim, [], config)
        refresher.refreshes = 1
        first = refresher.control_view().delivery_matrix()
        refresher.refreshes = 2
        second = refresher.control_view().delivery_matrix()
        assert not np.allclose(first, second)
        # ... but each round replays identically (pure function of the seed).
        again = LinkStateRefresher(sim, [], RunConfig(seed=1, refresh_period=0.1))
        again.refreshes = 1
        np.testing.assert_array_equal(first, again.control_view().delivery_matrix())


class TestMoreRefresh:
    def test_recruits_new_forwarder_and_invalidates_caches(self):
        full, weak = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_more_flow(sim, full, 0, 3, total_packets=8, batch_size=4,
                                 coding_payload_size=4, control_topology=weak)
        spec = handle.spec
        assert spec.forwarder_id_set() == {1}
        assert sim.nodes[2].agent is None
        old_header_size = spec.header_size()

        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_more_flow(sim, handle, full, config)

        assert spec.forwarder_id_set() == {1, 2}
        assert 2 in spec.tx_credit and 2 in spec.distances
        # The memoised header constants were rebuilt from the new plan.
        assert spec.header_size() > old_header_size
        agent = sim.nodes[2].agent
        assert isinstance(agent, MoreAgent)
        state = agent.forward_flows[spec.flow_id]
        assert state.listed and state.tx_credit == spec.tx_credit[2]
        # The pre-existing forwarder re-derived its cached plan constants.
        old_forwarder = sim.nodes[1].agent.forward_flows[spec.flow_id]
        assert old_forwarder.upstream_senders == frozenset({0, 2}) \
            or 0 in old_forwarder.upstream_senders

    def test_dropped_forwarder_stops_accepting_data(self):
        full, weak = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_more_flow(sim, full, 0, 3, total_packets=8, batch_size=4,
                                 coding_payload_size=4, control_topology=full)
        spec = handle.spec
        assert 2 in spec.forwarder_id_set()
        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_more_flow(sim, handle, weak, config)
        assert spec.forwarder_id_set() == {1}
        state = sim.nodes[2].agent.forward_flows[spec.flow_id]
        assert not state.listed  # ignores the flow's data from now on


class TestExorRefresh:
    def test_reranks_without_resetting_progress(self):
        full, weak = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_exor_flow(sim, full, 0, 3, total_packets=8, batch_size=4,
                                 control_topology=weak)
        spec = handle.spec
        assert 2 not in spec.participants
        source_agent = sim.nodes[0].agent
        source_agent.source_progress[spec.flow_id] = 1  # mid-transfer
        destination_agent = sim.nodes[3].agent
        destination_agent.destination_done[spec.flow_id].add(0)

        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_exor_flow(sim, handle, full, config)

        assert 2 in spec.participants
        assert spec.rank(2) is not None
        # Newly recruited participant has per-flow state, ranked correctly.
        state = sim.nodes[2].agent.flows[spec.flow_id]
        assert state.rank == spec.rank(2)
        # Transfer progress survived the refresh.
        assert source_agent.source_progress[spec.flow_id] == 1
        assert destination_agent.destination_done[spec.flow_id] == {0}
        # The strict schedule stays inside the (resized) participant list.
        assert handle.scheduler._position <= len(spec.participants) - 1

    def test_asymmetric_control_view_leaves_spec_untouched(self):
        """Regression: a refresh that fails mid-computation must not leave
        the flow half-refreshed.

        An asymmetric control view can have a usable forward plan while the
        reverse (ACK) route is gone; every failing path computation must
        happen before the first spec mutation so the caller really does
        keep the stale-but-consistent plan.
        """
        full, _ = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_exor_flow(sim, full, 0, 3, total_packets=8, batch_size=4,
                                 control_topology=full)
        spec = handle.spec
        before = (list(spec.participants), list(spec.forward_route),
                  list(spec.reverse_route))
        rank_before = {node: spec.rank(node) for node in spec.participants}
        asymmetric = full.delivery_matrix()
        asymmetric[3, :] = 0.0  # the destination can reach nobody
        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        with pytest.raises(ValueError):
            refresh_exor_flow(sim, handle, Topology(asymmetric), config)
        assert (list(spec.participants), list(spec.forward_route),
                list(spec.reverse_route)) == before
        # The memoised rank map still matches the (unchanged) participants.
        assert {node: spec.rank(node) for node in spec.participants} == rank_before

    def test_holdings_reclaimed_after_rank_shift(self):
        """Regression: a refresh that renumbers ranks must not orphan the
        packets a surviving node is responsible for.

        The source loads a batch with map entries at its old rank; when
        pruning a participant shifts its rank, those entries named a rank
        nobody held any more — responsibility() matched nothing and the
        batch stalled until max_duration.
        """
        full, weak = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_exor_flow(sim, full, 0, 3, total_packets=4, batch_size=4,
                                 control_topology=full)
        spec = handle.spec
        source_agent = sim.nodes[0].agent
        source_agent.start_flow(spec.flow_id)
        state = source_agent.flows[spec.flow_id]
        old_rank = state.rank
        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_exor_flow(sim, handle, weak, config)  # relay 2 pruned
        assert state.rank < old_rank
        assert state.responsibility() == [0, 1, 2, 3]

    def test_dropped_participant_gets_inert_rank(self):
        full, weak = _diamond_views()
        sim = Simulator(full, SimConfig(seed=1))
        handle = setup_exor_flow(sim, full, 0, 3, total_packets=8, batch_size=4,
                                 control_topology=full)
        spec = handle.spec
        assert 2 in spec.participants
        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_exor_flow(sim, handle, weak, config)
        assert 2 not in spec.participants
        state = sim.nodes[2].agent.flows[spec.flow_id]
        state.packets_received(state.batch_id).add(0)
        assert state.responsibility() == []  # never claims packets again


class TestSrcrRefresh:
    def test_reroute_and_detour_for_stranded_relay(self):
        # Chain route 0-1-2-3-4; after the refresh the control plane
        # prefers 0-1-3-4 via a new strong 1-3 link.  Node 2 holds queued
        # packets and must get a detour next hop instead of stranding them.
        topology = chain(4, link_delivery=0.8)
        rerouted = topology.delivery_matrix()
        rerouted[1, 3] = rerouted[3, 1] = 0.9
        rerouted[1, 2] = rerouted[2, 1] = 0.1
        control = Topology(rerouted)

        sim = Simulator(topology, SimConfig(seed=1))
        handle = setup_srcr_flow(sim, topology, 0, 4, total_packets=8)
        spec = handle.spec
        assert spec.route == [0, 1, 2, 3, 4]
        relay = sim.nodes[2].agent
        assert isinstance(relay, SrcrAgent)
        relay.queues[spec.flow_id].extend([3, 4])

        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_srcr_flow(sim, handle, control, config)

        assert spec.route == [0, 1, 3, 4]
        assert spec.next_hop(2) == 3  # the stranded relay keeps forwarding
        assert spec.next_hop(1) == 3
        assert spec.next_hop(0) == 1

    def test_flow_without_next_hop_does_not_starve_others(self):
        """Regression: a relay holding one detour-less (stranded) flow must
        still serve its other flows' queues at each transmit opportunity
        instead of parking the MAC."""
        topology = chain(3, link_delivery=0.9)
        sim = Simulator(topology, SimConfig(seed=1))
        stranded = setup_srcr_flow(sim, topology, 0, 3, total_packets=4)
        healthy = setup_srcr_flow(sim, topology, 0, 3, total_packets=4)
        relay = sim.nodes[1].agent
        relay.queues[stranded.flow_id].append(0)
        relay.queues[healthy.flow_id].append(0)
        # A refresh moved the stranded flow's route off node 1, no detour.
        stranded.spec.route = [0, 3]
        for _ in range(4):
            frame = relay.on_transmit_opportunity(0.0)
            assert frame is not None
            assert frame.flow_id == healthy.flow_id

    def test_refresh_without_queues_leaves_no_detours(self):
        topology = chain(3, link_delivery=0.8)
        sim = Simulator(topology, SimConfig(seed=1))
        handle = setup_srcr_flow(sim, topology, 0, 3, total_packets=4)
        config = RunConfig(seed=1, estimation_exponent=1.0, estimation_probes=0)
        refresh_srcr_flow(sim, handle, topology, config)
        assert handle.spec.detours == {}
        assert handle.spec.route == [0, 1, 2, 3]


class TestEndToEnd:
    @pytest.mark.parametrize("protocol", ("MORE", "ExOR", "Srcr"))
    def test_dynamic_run_with_refresh_completes(self, protocol):
        topology = chain(4, link_delivery=0.75, skip_delivery=0.25)
        config = RunConfig(total_packets=24, batch_size=8, packet_size=256,
                           coding_payload_size=8, seed=1, max_duration=30.0,
                           refresh_period=0.5,
                           mobility={"kind": "link_churn",
                                     "params": {"mean_up_time": 3.0,
                                                "mean_down_time": 0.5,
                                                "down_scale": 0.2,
                                                "epoch_length": 0.25}})
        result = run_single_flow(topology, protocol, 0, 4, config=config)
        assert result.completed
        assert result.delivered_packets == result.total_packets

    def test_refresh_period_validation(self):
        with pytest.raises(ValueError, match="refresh_period"):
            RunConfig(refresh_period=0.0)
        assert math.isinf(RunConfig(refresh_period="inf").refresh_period)
        assert RunConfig(refresh_period="2.5").refresh_period == 2.5
