"""The payload-free (vector-only) execution mode.

Delivery, rank progression and throughput in MORE are fully determined by
code vectors, and zero-length payload draws consume no RNG state, so a
vector-only run must report results identical to a payload-carrying run of
the same scenario — it merely skips the payload arithmetic.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import _load_spec, build_parser
from repro.experiments.runner import RunConfig, run_single_flow
from repro.protocols.more.flow import setup_more_flow
from repro.scenarios import get_preset
from repro.scenarios.execute import run_cell
from repro.sim.simulator import Simulator
from repro.topology.generator import chain


@pytest.fixture
def lossy_chain():
    return chain(3, link_delivery=0.7, skip_delivery=0.2)


def _run(topology, vector_only: bool):
    config = RunConfig(total_packets=32, batch_size=16, packet_size=1500,
                       seed=3, vector_only=vector_only)
    return run_single_flow(topology, "MORE", 0, topology.node_count - 1,
                           config=config)


def test_vector_only_flow_results_identical(lossy_chain):
    payload_run = _run(lossy_chain, vector_only=False)
    vector_run = _run(lossy_chain, vector_only=True)
    assert dataclasses.asdict(payload_run) == dataclasses.asdict(vector_run)
    assert payload_run.completed


def test_vector_only_scenario_cell_identical():
    """A whole scenario cell (the chain smoke preset) matches byte for byte."""
    spec = get_preset("chain_smoke")
    payload_result = run_cell(spec.expand()[0])
    vector_result = run_cell(
        spec.with_overrides({"run.vector_only": True}).expand()[0])
    assert payload_result.series == vector_result.series
    assert payload_result.summary == vector_result.summary


def test_vector_only_decoded_payloads_are_empty(lossy_chain):
    from repro.sim.radio import PhyConfig, SimConfig
    sim = Simulator(lossy_chain, SimConfig(phy=PhyConfig(), seed=1))
    handle = setup_more_flow(sim, lossy_chain, 0, lossy_chain.node_count - 1,
                             total_packets=16, batch_size=16,
                             vector_only=True, seed=1)
    sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)
    payloads = handle.decoded_payloads()
    assert len(payloads) == 16
    assert all(p.size == 0 for p in payloads)
    assert handle.decoded_bytes() == b""


def test_vector_only_rejects_file_bytes(lossy_chain):
    from repro.sim.radio import PhyConfig, SimConfig
    sim = Simulator(lossy_chain, SimConfig(phy=PhyConfig(), seed=1))
    with pytest.raises(ValueError):
        setup_more_flow(sim, lossy_chain, 0, 1, file_bytes=b"payload",
                        vector_only=True)


def test_vector_only_rejects_explicit_coding_payload_size(lossy_chain):
    """Forcing zero-byte payloads while asking for N-byte ones is a conflict."""
    from repro.sim.radio import PhyConfig, SimConfig
    sim = Simulator(lossy_chain, SimConfig(phy=PhyConfig(), seed=1))
    with pytest.raises(ValueError):
        setup_more_flow(sim, lossy_chain, 0, 1, total_packets=16,
                        coding_payload_size=64, vector_only=True)


def test_vector_only_supersedes_run_config_payload_size(lossy_chain):
    """Through RunConfig the mode wins over the default payload width."""
    config = RunConfig(total_packets=32, batch_size=16, seed=3,
                       coding_payload_size=64, vector_only=True)
    result = run_single_flow(lossy_chain, "MORE", 0,
                             lossy_chain.node_count - 1, config=config)
    assert result.completed


def test_run_config_override_path():
    spec = get_preset("chain_smoke").with_overrides({"run.vector_only": True})
    assert spec.run_config(seed=1).vector_only is True
    assert get_preset("chain_smoke").run_config(seed=1).vector_only is False


def test_cli_vector_only_flag():
    parser = build_parser()
    args = parser.parse_args(["run", "--preset", "chain_smoke", "--vector-only"])
    assert _load_spec(args).run["vector_only"] is True
    args = parser.parse_args(["run", "--preset", "chain_smoke"])
    assert "vector_only" not in _load_spec(args).run
