"""Integration tests for the experiment runner and the figure harnesses.

These use deliberately tiny workloads (few packets, few pairs, small
topologies) so the whole suite stays fast; the benchmarks run the
full-scale versions.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure_5_1, table_4_1
from repro.experiments.runner import (
    PROTOCOLS,
    RunConfig,
    compare_protocols,
    run_flows,
    run_single_flow,
)
from repro.topology.generator import chain, diamond, indoor_testbed, two_hop_relay

FAST = RunConfig(total_packets=16, batch_size=8, packet_size=500,
                 coding_payload_size=8, max_duration=60.0, seed=1)


class TestRunner:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_each_protocol_completes_a_flow(self, protocol):
        topo = chain(2, link_delivery=0.75)
        result = run_single_flow(topo, protocol, 0, 2, config=FAST)
        assert result.completed
        assert result.delivered_packets == FAST.total_packets
        assert result.throughput_pkts > 0
        assert result.protocol == protocol

    def test_unknown_protocol_rejected(self):
        topo = chain(1)
        with pytest.raises(ValueError):
            run_single_flow(topo, "OSPF", 0, 1, config=FAST)

    def test_run_flows_multi_flow(self):
        topo = diamond(0.6, 0.7, relay_count=2, direct=0.3)
        destination = topo.node_count - 1
        results = run_flows(topo, "MORE", [(0, destination), (destination, 0)], config=FAST)
        assert len(results) == 2
        assert all(r.completed for r in results)

    def test_compare_protocols_shapes(self):
        topo = two_hop_relay()
        results = compare_protocols(topo, [(0, 2)], config=FAST)
        assert set(results) == set(PROTOCOLS)
        assert all(len(flows) == 1 for flows in results.values())

    def test_results_are_reproducible(self):
        topo = chain(2, link_delivery=0.7)
        first = run_single_flow(topo, "MORE", 0, 2, config=FAST)
        second = run_single_flow(topo, "MORE", 0, 2, config=FAST)
        assert first.throughput_pkts == pytest.approx(second.throughput_pkts)

    def test_bitrate_override_changes_throughput(self):
        topo = chain(1, link_delivery=0.85)
        slow = run_single_flow(topo, "Srcr", 0, 1, config=FAST, bitrate=1_000_000)
        fast = run_single_flow(topo, "Srcr", 0, 1, config=FAST, bitrate=11_000_000)
        assert fast.throughput_pkts > slow.throughput_pkts

    def test_control_view_toggle(self):
        perfect = RunConfig(total_packets=8, batch_size=8, packet_size=500,
                            estimation_exponent=1.0, estimation_probes=0)
        topo = indoor_testbed(node_count=10, floors=2, seed=11)
        view = perfect.control_view(topo)
        assert view is topo
        noisy = RunConfig(total_packets=8, batch_size=8, packet_size=500)
        assert noisy.control_view(topo) is not topo


class TestOpportunisticGain:
    def test_more_beats_srcr_on_a_challenged_topology(self):
        """The Figure 1-1/2-1 story: with lossy links and useful overhearing,
        MORE delivers higher throughput than best-path routing."""
        topo = diamond(0.45, 0.45, relay_count=3, direct=0.15)
        destination = topo.node_count - 1
        config = RunConfig(total_packets=32, batch_size=16, packet_size=1000,
                           coding_payload_size=8, seed=2)
        more = run_single_flow(topo, "MORE", 0, destination, config=config)
        srcr = run_single_flow(topo, "Srcr", 0, destination, config=config)
        assert more.completed and srcr.completed
        assert more.throughput_pkts > srcr.throughput_pkts

    def test_more_and_exor_complete_on_the_testbed(self, testbed):
        config = RunConfig(total_packets=32, batch_size=32, packet_size=1500, seed=3)
        pair = (17, 2)
        for protocol in ("MORE", "ExOR"):
            result = run_single_flow(testbed, protocol, *pair, config=config)
            assert result.completed


class TestFigureHarnesses:
    def test_table_4_1_structure(self):
        result = table_4_1(batch_size=16, packet_size=512, iterations=10)
        summary = result.summary
        # Only load-insensitive facts here: the cross-operation timing-ratio
        # claims (independence check cheaper than coding/decoding) live in
        # benchmarks/test_table_4_1_coding_cost.py behind --perf-strict,
        # because a load burst during one micro-measurement can invert any
        # ratio between two different workloads and flake tier-1.
        for name in ("independence_check_us", "coding_at_source_us",
                     "decoding_us"):
            assert summary[name] > 0
        assert "Table 4.1" in result.report

    def test_figure_5_1_gap_series(self):
        result = figure_5_1(bridge_deliveries=(0.2, 0.1), branch_count=4, testbed_pairs=6)
        analytic = result.series["analytic_gap"]
        measured = result.series["measured_gap"]
        assert len(analytic) == len(measured) == 2
        # The gap grows as the bridge link weakens, in both closed form and
        # the Algorithm-1 measurement.
        assert analytic[1] > analytic[0]
        assert measured[1] > measured[0]
        assert result.summary["testbed_median_gap_affected"] < 0.2
