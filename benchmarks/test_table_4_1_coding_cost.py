"""Table 4.1: computational cost of MORE's packet operations.

Paper numbers (Celeron 800 MHz, K=32, 1500 B packets): independence check
10 us, coding at the source 270 us, decoding 260 us, implying a 44 Mb/s
coding-throughput bound.  Absolute times differ on modern hardware; the
*structure* — coding and decoding are comparable and dominate, the
independence check is roughly an order of magnitude cheaper — must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.buffer import BatchBuffer
from repro.coding.decoder import BatchDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import make_batch
from repro.experiments.figures import table_4_1

from conftest import save_report

K = 32
PACKET_SIZE = 1500


@pytest.fixture(scope="module")
def batch():
    return make_batch(batch_size=K, packet_size=PACKET_SIZE, rng=np.random.default_rng(0))


def test_coding_at_source(benchmark, batch):
    """Cost of producing one coded packet at the source (paper: 270 us)."""
    encoder = SourceEncoder(batch, np.random.default_rng(1))
    benchmark(encoder.next_packet)


def test_independence_check(benchmark, batch):
    """Cost of the linear-independence check per packet (paper: 10 us)."""
    encoder = SourceEncoder(batch, np.random.default_rng(2))
    buffer = BatchBuffer(K, PACKET_SIZE, track_payloads=False)
    packets = [encoder.next_packet() for _ in range(K)]
    for packet in packets[: K // 2]:
        buffer.add(packet)
    probe = packets[-1].code_vector

    benchmark(buffer.is_innovative, probe)


def test_decoding_per_packet(benchmark, batch):
    """Per-packet cost of the incremental decoder at the destination."""
    encoder = SourceEncoder(batch, np.random.default_rng(3))
    packets = [encoder.next_packet() for _ in range(K)]

    def decode_full_batch():
        decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE)
        for packet in packets:
            decoder.add_packet(packet)
        return decoder

    result = benchmark(decode_full_batch)
    assert result.rank == K


def test_table_4_1_report(benchmark):
    """Regenerate the whole table and check its structural claims."""
    result = benchmark.pedantic(table_4_1, kwargs={"iterations": 20}, rounds=1,
                                iterations=1, warmup_rounds=0)
    print("\n" + result.report)
    save_report(result)
    save_report(result)
    summary = result.summary
    # Coding and decoding have the same order of magnitude...
    ratio = summary["coding_at_source_us"] / summary["decoding_us"]
    assert 0.2 < ratio < 5.0
    # ...and both are much more expensive than the independence check.
    assert summary["coding_at_source_us"] > 3 * summary["independence_check_us"]
    # The implied coding-throughput bound comfortably exceeds the paper's
    # 44 Mb/s on modern hardware (it only needs to beat the radio).
    assert summary["throughput_mbps_bound"] > 44.0
