"""Table 4.1: computational cost of MORE's packet operations.

Paper numbers (Celeron 800 MHz, K=32, 1500 B packets): independence check
10 us, coding at the source 270 us, decoding 260 us, implying a 44 Mb/s
coding-throughput bound.  Absolute times differ on modern hardware; the
*structure* — coding and decoding are comparable and dominate, the
independence check is roughly an order of magnitude cheaper — must hold.

All quantities are measured best-of-N (see
:func:`repro.experiments.figures.table_4_1`), and the hard threshold
assertions on timing ratios are opt-in via ``--perf-strict``: a loaded
machine can stretch any single measurement, so tier-1 only checks that the
table is well-formed while the strict variant enforces the paper's
structural claims.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.coding.buffer import BatchBuffer
from repro.coding.decoder import BatchDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import make_batch
from repro.experiments.figures import table_4_1

from conftest import save_report

K = 32
PACKET_SIZE = 1500


@pytest.fixture(scope="module")
def batch():
    return make_batch(batch_size=K, packet_size=PACKET_SIZE, rng=np.random.default_rng(0))


def test_coding_at_source(benchmark, batch):
    """Cost of producing one coded packet at the source (paper: 270 us)."""
    encoder = SourceEncoder(batch, np.random.default_rng(1))
    benchmark(encoder.next_packet)


def test_batched_coding_at_source(benchmark, batch):
    """Per-packet cost when the source codes a whole batch in one kernel call."""
    encoder = SourceEncoder(batch, np.random.default_rng(1))
    result = benchmark(encoder.next_packets, K)
    assert len(result) == K


def test_independence_check(benchmark, batch):
    """Cost of the linear-independence check per packet (paper: 10 us)."""
    encoder = SourceEncoder(batch, np.random.default_rng(2))
    buffer = BatchBuffer(K, PACKET_SIZE, track_payloads=False)
    packets = encoder.next_packets(K)
    for packet in packets[: K // 2]:
        buffer.add(packet)
    probe = packets[-1].code_vector

    benchmark(buffer.is_innovative, probe)


def test_decoding_per_packet(benchmark, batch):
    """Per-packet cost of the incremental decoder at the destination."""
    encoder = SourceEncoder(batch, np.random.default_rng(3))
    packets = encoder.next_packets(K)

    def decode_full_batch():
        decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE)
        for packet in packets:
            decoder.add_packet(packet)
        return decoder

    result = benchmark(decode_full_batch)
    assert result.rank == K


def test_table_4_1_report(benchmark):
    """Regenerate the whole table and check it is well-formed.

    Only load-insensitive facts are asserted here; the timing-ratio
    thresholds live in :func:`test_table_4_1_structural_thresholds` behind
    ``--perf-strict``.
    """
    result = benchmark.pedantic(table_4_1, kwargs={"iterations": 20}, rounds=1,
                                iterations=1, warmup_rounds=0)
    print("\n" + result.report)
    save_report(result)
    summary = result.summary
    for name in ("independence_check_us", "coding_at_source_us", "decoding_us",
                 "throughput_mbps_bound"):
        assert math.isfinite(summary[name]) and summary[name] > 0.0, name
    assert "Table 4.1" in result.report


@pytest.mark.perf_strict
def test_table_4_1_structural_thresholds():
    """The paper's structural claims as hard ratios (opt-in, can flake).

    Best-of-N measurement makes these robust on an idle machine, but a
    sufficiently loaded box can still stretch one quantity more than
    another, so they stay out of tier-1.
    """
    summary = table_4_1(iterations=20).summary
    # The independence check remains the cheapest operation (the paper's
    # Section 3.2.3(b) point: forwarders never touch payload bytes).
    assert summary["independence_check_us"] < summary["coding_at_source_us"]
    assert summary["independence_check_us"] < summary["decoding_us"]
    # Coding and decoding stay within a couple of orders of magnitude.  The
    # vectorized source encoder (cached shifted-row stack) now undercuts
    # the per-arrival Gauss-Jordan decode instead of matching it, so the
    # paper's ratio-of-about-one became a ratio-below-one.
    ratio = summary["coding_at_source_us"] / summary["decoding_us"]
    assert 0.01 < ratio < 5.0
    # The implied coding-throughput bound comfortably exceeds the paper's
    # 44 Mb/s on modern hardware (it only needs to beat the radio).
    assert summary["throughput_mbps_bound"] > 44.0
