"""Micro-benchmarks of the vectorized reception-resolution path.

PR 2 made coding cheap enough that the per-frame Python loop in
``WirelessMedium.complete`` became the hot path; the channel-subsystem
refactor replaced it with batched RNG draws plus vectorized masks.  Checked
here, against the reference scalar loop kept for differential testing:

* bit-identical receiver sets on a 50-node mesh (always on — this is the
  correctness claim, load-insensitive);
* at least 3x more frames/s through ``complete()`` on the same 50-node
  topology (behind ``--perf-strict`` like every wall-clock threshold; the
  measured margin is far above the floor, and ``make bench-baseline``
  records the ratio in ``BENCH_coding.json``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.sim.medium import WirelessMedium
from repro.sim.radio import ChannelConfig
from repro.topology.generator import random_geometric

NODE_COUNT = WirelessMedium.BENCH_NODE_COUNT
FRAMES = WirelessMedium.BENCH_FRAMES
ROUNDS = 5


def _make_medium(topology, vectorized: bool) -> WirelessMedium:
    return WirelessMedium(topology, ChannelConfig(),
                          np.random.default_rng(WirelessMedium.BENCH_RNG_SEED),
                          vectorized=vectorized)


@pytest.fixture(scope="module")
def mesh_50():
    return random_geometric(node_count=NODE_COUNT,
                            area=WirelessMedium.BENCH_AREA,
                            seed=WirelessMedium.BENCH_TOPOLOGY_SEED)


def test_vectorized_receivers_identical_on_50_nodes(mesh_50):
    vectorized = _make_medium(mesh_50, vectorized=True).pump_broadcast_frames(FRAMES)
    scalar = _make_medium(mesh_50, vectorized=False).pump_broadcast_frames(FRAMES)
    assert vectorized == scalar


@pytest.mark.perf_strict
def test_vectorized_reception_speedup(mesh_50):
    """The vectorized pass beats the scalar loop by at least 3x (opt-in).

    ``WirelessMedium.pump_broadcast_frames`` is the same schedule
    ``make bench-baseline`` records in ``BENCH_coding.json``, so the floor
    asserted here and the committed baseline measure the same quantity.
    """
    vectorized_medium = _make_medium(mesh_50, vectorized=True)
    scalar_medium = _make_medium(mesh_50, vectorized=False)

    def measure(medium: WirelessMedium) -> float:
        start = time.perf_counter()
        medium.pump_broadcast_frames(FRAMES)
        return time.perf_counter() - start

    vectorized = min(measure(vectorized_medium) for _ in range(ROUNDS))
    scalar = min(measure(scalar_medium) for _ in range(ROUNDS))
    speedup = scalar / vectorized
    print(f"\nreception resolution on {NODE_COUNT} nodes: "
          f"scalar {FRAMES / scalar:,.0f} frames/s, "
          f"vectorized {FRAMES / vectorized:,.0f} frames/s, "
          f"speedup {speedup:.1f}x")
    assert speedup >= 3.0
