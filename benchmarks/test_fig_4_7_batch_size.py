"""Figure 4-7: sensitivity of MORE and ExOR to the batch size K.

Paper result: MORE is essentially insensitive to K between 8 and 128, while
ExOR degrades markedly with small batches (K=8), because its per-batch
control overhead (batch maps, scheduling, cleanup) is amortised over fewer
packets.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_7

from conftest import run_once, save_report


def test_figure_4_7_batch_size(benchmark, testbed, run_config, paper_scale):
    pair_count = 40 if paper_scale else 4
    batch_sizes = (8, 16, 32, 64, 128) if paper_scale else (8, 16, 32, 64)
    result = run_once(benchmark, figure_4_7, topology=testbed, pair_count=pair_count,
                      seed=5, batch_sizes=batch_sizes, config=run_config)
    print("\n" + result.report)
    save_report(result)

    # MORE's throughput at K=8 stays close to its K=32 value (the paper's
    # headline claim for this figure) ...
    assert result.summary["more_k8_vs_k32"] > 0.6
    # ... and every batch size remains usable for both protocols.  The
    # paper's strong ExOR penalty at K=8 is not reproduced at reduced scale
    # (our idealised scheduler understates ExOR's per-batch control cost);
    # see EXPERIMENTS.md.
    medians = result.extras["medians"]
    assert all(value > 0 for value in medians["MORE"].values())
    assert all(value > 0 for value in medians["ExOR"].values())
