"""Micro-benchmarks of the computational primitives underneath MORE.

These complement Table 4.1: GF(2^8) vector kernels (the inner loop of all
coding), the EOTX algorithms of Chapter 5 and Algorithm 1 on the full
20-node testbed, and one end-to-end simulated transfer per protocol.

Deliberately no wall-clock thresholds are asserted here: pytest-benchmark
already reports best-of-rounds (min) timings, and hard timing assertions
belong behind the opt-in ``--perf-strict`` marker (see ``conftest.py``) so
tier-1 cannot flake under machine load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import RunConfig, run_single_flow
from repro.gf.arithmetic import scale_and_add, vec_scale
from repro.metrics.credits import forwarding_plan
from repro.metrics.eotx import eotx_bellman_ford, eotx_dijkstra
from repro.metrics.lp import solve_min_cost_flow
from repro.topology.generator import random_mesh

from conftest import run_once

PACKET = np.random.default_rng(0).integers(0, 256, 1500, dtype=np.uint8)


def test_gf_vector_scale(benchmark):
    """Scaling a 1500-byte packet by a random coefficient (one table row lookup)."""
    benchmark(vec_scale, PACKET, 0x53)


def test_gf_scale_and_add(benchmark):
    """The coding inner loop: accumulator ^= c * packet over 1500 bytes."""
    accumulator = np.zeros(1500, dtype=np.uint8)
    benchmark(scale_and_add, accumulator, PACKET, 0x53)


def test_eotx_dijkstra_on_testbed(benchmark, testbed):
    """Algorithm 5 (O(n^2) EOTX) over the 20-node testbed."""
    costs = benchmark(eotx_dijkstra, testbed, 0)
    assert np.isfinite(costs).all()


def test_eotx_bellman_ford_on_testbed(benchmark, testbed):
    """Algorithms 3+4 (Bellman-Ford EOTX) over the 20-node testbed."""
    costs = benchmark(eotx_bellman_ford, testbed, 0)
    assert np.isfinite(costs).all()


def test_forwarding_plan_on_testbed(benchmark, testbed):
    """Algorithm 1 + Eq. 3.3 + pruning: what a MORE source computes per flow."""
    plan = benchmark(forwarding_plan, testbed, 17, 2)
    assert plan.total_cost > 0


def test_min_cost_flow_lp(benchmark):
    """The reference LP of Section 5.3 on an 8-node mesh (prefix constraints)."""
    topo = random_mesh(8, density=0.5, seed=3)
    solution = benchmark.pedantic(
        solve_min_cost_flow, args=(topo, 7, 0), kwargs={"prefix_constraints_only": True},
        rounds=1, iterations=1, warmup_rounds=0)
    assert solution.total_cost > 0


@pytest.mark.parametrize("protocol", ["MORE", "ExOR", "Srcr"])
def test_end_to_end_transfer(benchmark, testbed, protocol):
    """Wall-clock cost of simulating one 96-packet transfer per protocol."""
    config = RunConfig(total_packets=96, batch_size=32, packet_size=1500, seed=2)
    result = run_once(benchmark, run_single_flow, testbed, protocol, 17, 2, config=config)
    assert result.completed
