"""Micro-benchmarks of the computational primitives underneath MORE.

These complement Table 4.1: GF(2^8) vector kernels (the inner loop of all
coding, including the selectable ``gf_vecmat`` elimination variants), the
EOTX algorithms of Chapter 5 and Algorithm 1 on the full 20-node testbed,
and one end-to-end simulated transfer per protocol.

No unconditional wall-clock thresholds are asserted here: pytest-benchmark
already reports best-of-rounds (min) timings, and every hard timing-ratio
assertion sits behind the opt-in ``--perf-strict`` marker (see
``conftest.py``) so tier-1 cannot flake under machine load.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments.runner import RunConfig, run_single_flow
from repro.gf.arithmetic import scale_and_add, vec_scale
from repro.gf.kernels import VECMAT_KERNELS, gf_vecmat, gf_vecmat_reference
from repro.metrics.credits import forwarding_plan
from repro.metrics.eotx import eotx_bellman_ford, eotx_dijkstra
from repro.metrics.lp import solve_min_cost_flow
from repro.topology.generator import random_mesh

from conftest import run_once

PACKET = np.random.default_rng(0).integers(0, 256, 1500, dtype=np.uint8)

#: The elimination-shape operands of the deferred-transform decode path:
#: rank-many pivot rows over the (K + rank + 1)-wide active slice at K=32.
_ELIM_RNG = np.random.default_rng(5)
ELIM_VECTOR = _ELIM_RNG.integers(0, 256, 32, dtype=np.uint8)
ELIM_MATRIX = _ELIM_RNG.integers(0, 256, (32, 65), dtype=np.uint8)


def test_gf_vector_scale(benchmark):
    """Scaling a 1500-byte packet by a random coefficient (one table row lookup)."""
    benchmark(vec_scale, PACKET, 0x53)


def test_gf_scale_and_add(benchmark):
    """The coding inner loop: accumulator ^= c * packet over 1500 bytes."""
    accumulator = np.zeros(1500, dtype=np.uint8)
    benchmark(scale_and_add, accumulator, PACKET, 0x53)


@pytest.mark.parametrize("name", sorted(VECMAT_KERNELS))
def test_gf_vecmat_kernel(benchmark, name):
    """One elimination step (vector @ active slice) per selectable kernel.

    ``mul`` (the default MUL-table gather) measures fastest under numpy;
    ``nibble`` (split 4 KiB tables) and ``logexp`` are the documented
    alternatives — the rows let any machine read off its own crossover.
    """
    result = benchmark(VECMAT_KERNELS[name], ELIM_VECTOR, ELIM_MATRIX)
    np.testing.assert_array_equal(
        result, gf_vecmat_reference(ELIM_VECTOR, ELIM_MATRIX))


@pytest.mark.perf_strict
def test_gf_vecmat_no_slower_than_reference_loop():
    """The gather kernel never loses to the per-row reference loop.

    The reference is itself numpy-vectorized per row (``scale_and_add``),
    so the single-gather formulation wins only modestly (~1.2x measured)
    — the decode path's 3x+ comes from *deferring* the payload transform,
    asserted at engine level in ``test_decode_floor.py``.  This guard
    catches the kernel regressing below the loop it replaced (timing
    ratio, so opt-in via ``--perf-strict`` like every wall-clock
    assertion).
    """
    wide = np.random.default_rng(6).integers(0, 256, (32, 1500), dtype=np.uint8)

    def measure(kernel) -> float:
        best = float("inf")
        for _ in range(7):
            start = time.perf_counter()
            for _ in range(50):
                kernel(ELIM_VECTOR, wide)
            best = min(best, time.perf_counter() - start)
        return best

    vectorized = measure(gf_vecmat)
    reference = measure(gf_vecmat_reference)
    speedup = reference / vectorized
    print(f"\ngf_vecmat on (32, 1500): reference {reference * 20:,.3f} ms/call, "
          f"gather {vectorized * 20:,.3f} ms/call, speedup {speedup:.2f}x")
    assert speedup >= 1.0


def test_eotx_dijkstra_on_testbed(benchmark, testbed):
    """Algorithm 5 (O(n^2) EOTX) over the 20-node testbed."""
    costs = benchmark(eotx_dijkstra, testbed, 0)
    assert np.isfinite(costs).all()


def test_eotx_bellman_ford_on_testbed(benchmark, testbed):
    """Algorithms 3+4 (Bellman-Ford EOTX) over the 20-node testbed."""
    costs = benchmark(eotx_bellman_ford, testbed, 0)
    assert np.isfinite(costs).all()


def test_forwarding_plan_on_testbed(benchmark, testbed):
    """Algorithm 1 + Eq. 3.3 + pruning: what a MORE source computes per flow."""
    plan = benchmark(forwarding_plan, testbed, 17, 2)
    assert plan.total_cost > 0


def test_min_cost_flow_lp(benchmark):
    """The reference LP of Section 5.3 on an 8-node mesh (prefix constraints)."""
    topo = random_mesh(8, density=0.5, seed=3)
    solution = benchmark.pedantic(
        solve_min_cost_flow, args=(topo, 7, 0), kwargs={"prefix_constraints_only": True},
        rounds=1, iterations=1, warmup_rounds=0)
    assert solution.total_cost > 0


@pytest.mark.parametrize("protocol", ["MORE", "ExOR", "Srcr"])
def test_end_to_end_transfer(benchmark, testbed, protocol):
    """Wall-clock cost of simulating one 96-packet transfer per protocol."""
    config = RunConfig(total_packets=96, batch_size=32, packet_size=1500, seed=2)
    result = run_once(benchmark, run_single_flow, testbed, protocol, 17, 2, config=config)
    assert result.completed
