"""Micro-benchmarks of the vectorized batch-coding engine.

Two claims are checked, both against the pre-vectorization formulation:

* batched source-encoding of a whole batch through
  :meth:`~repro.coding.encoder.SourceEncoder.next_packets` is at least 5x
  faster than the same packets through the old per-packet
  ``scale_and_add`` loop, with bit-identical output;
* the vector-only (payload-free) execution mode reproduces the
  figure 4-2 preset's throughput series exactly while doing strictly less
  work.

The speedup assertion compares two best-of-N measurements taken
back-to-back on the same machine, so uniform machine load cancels out; the
margin in practice is ~10x, far above the asserted 5x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.coding.encoder import SourceEncoder
from repro.coding.packet import CodedPacket, make_batch
from repro.gf.arithmetic import random_code_vector, scale_and_add
from repro.gf.kernels import ShiftedRows, gf_matmul
from repro.scenarios import get_preset
from repro.scenarios.execute import run_cell

K = 32
PACKET_SIZE = 1500
ROUNDS = 5


def _best_of(measure, rounds: int = ROUNDS) -> float:
    return min(measure() for _ in range(rounds))


def _encode_scalar(payloads: np.ndarray, rng: np.random.Generator,
                   count: int) -> list[CodedPacket]:
    """The pre-vectorization source encoder: one K-iteration loop per packet."""
    packets = []
    for _ in range(count):
        coefficients = random_code_vector(payloads.shape[0], rng)
        payload = np.zeros(payloads.shape[1], dtype=np.uint8)
        for index, coefficient in enumerate(coefficients):
            scale_and_add(payload, payloads[index], int(coefficient))
        packets.append(CodedPacket(code_vector=coefficients, payload=payload))
    return packets


def test_batched_encoding_bit_identical():
    """next_packets(K) and the old per-packet loop produce the same packets."""
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(0))
    encoder = SourceEncoder(batch, np.random.default_rng(7))
    batched = encoder.next_packets(K)
    reference = _encode_scalar(batch.payload_matrix(), np.random.default_rng(7), K)
    for new, old in zip(batched, reference):
        assert np.array_equal(new.code_vector, old.code_vector)
        assert np.array_equal(new.payload, old.payload)


@pytest.mark.perf_strict
def test_batched_encoding_speedup():
    """Batched encoding of 32 packets beats the old loop by at least 5x.

    Best-of-N and back-to-back, so uniform machine load mostly cancels out
    and the measured margin is ~2x above the asserted floor (speedup ~10x).
    Still, it is a wall-clock ratio, and a sufficiently bursty box can
    stretch one side more than the other — so like every other timing
    threshold it lives behind ``--perf-strict`` and out of tier-1.
    ``make bench-baseline`` records the same quantity in
    ``BENCH_coding.json`` for regression tracking.
    """
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(0))
    payloads = batch.payload_matrix()
    encoder = SourceEncoder(batch, np.random.default_rng(1))
    encoder.next_packets(K)  # build the shifted-row stack outside the timing
    scalar_rng = np.random.default_rng(1)

    def measure_batched() -> float:
        start = time.perf_counter()
        encoder.next_packets(K)
        return time.perf_counter() - start

    def measure_scalar() -> float:
        start = time.perf_counter()
        _encode_scalar(payloads, scalar_rng, K)
        return time.perf_counter() - start

    batched = _best_of(measure_batched)
    scalar = _best_of(measure_scalar)
    speedup = scalar / batched
    print(f"\nbatched source encoding: old {scalar * 1e3:.2f} ms, "
          f"new {batched * 1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup >= 5.0


def test_gf_matmul_kernel(benchmark):
    """One (K, K) @ (K, 1500) product — the cost of coding a whole batch."""
    rng = np.random.default_rng(2)
    coefficients = rng.integers(0, 256, (K, K), dtype=np.uint8)
    payloads = rng.integers(0, 256, (K, PACKET_SIZE), dtype=np.uint8)
    benchmark(gf_matmul, coefficients, payloads)


def test_shifted_rows_reuse(benchmark):
    """The cached-operand path the source encoder uses batch after batch."""
    rng = np.random.default_rng(3)
    operand = ShiftedRows(rng.integers(0, 256, (K, PACKET_SIZE), dtype=np.uint8))
    coefficients = rng.integers(0, 256, (K, K), dtype=np.uint8)
    benchmark(operand.matmul, coefficients)


@pytest.mark.parametrize("preset_name", ["fig_4_2"])
def test_vector_only_mode_identical(preset_name):
    """Vector-only runs report identical results to payload runs.

    Delivery, rank progression and throughput are fully determined by code
    vectors (and empty payload draws consume no RNG state), so the whole
    result — series and summary — must match byte for byte.
    """
    spec = get_preset(preset_name)
    cell = spec.expand()[0]
    vector_cell = spec.with_overrides({"run.vector_only": True}).expand()[0]

    start = time.perf_counter()
    payload_result = run_cell(cell)
    payload_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    vector_result = run_cell(vector_cell)
    vector_elapsed = time.perf_counter() - start

    assert payload_result.series == vector_result.series
    assert payload_result.summary == vector_result.summary
    print(f"\n{preset_name}: payload {payload_elapsed:.2f}s, "
          f"vector-only {vector_elapsed:.2f}s")
