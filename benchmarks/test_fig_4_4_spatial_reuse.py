"""Figure 4-4: throughput of 4-hop flows whose first and last hop can
transmit concurrently (spatial reuse).

Paper result: MORE's median throughput is about 50% above ExOR on these
flows, because ExOR's scheduler serialises the whole flow while MORE rides
plain 802.11 carrier sense and lets the far-apart hops overlap.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_4

from conftest import run_once, save_report


def test_figure_4_4_spatial_reuse(benchmark, testbed, run_config, paper_scale):
    pair_count = 20 if paper_scale else 5
    result = run_once(benchmark, figure_4_4, topology=testbed, pair_count=pair_count,
                      seed=2, config=run_config)
    print("\n" + result.report)
    save_report(result)

    gain_over_exor = result.summary["more_over_exor_median_gain"]
    # MORE must stay ahead of ExOR on these flows (the paper reports ~1.5x;
    # the synthetic testbed reproduces the direction with a smaller margin —
    # see EXPERIMENTS.md for the measured value and the discussion).
    assert gain_over_exor > 1.0
    assert result.summary["more_over_srcr_median_gain"] > 1.0
