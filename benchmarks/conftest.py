"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(plus a few ablations and micro-benchmarks).  The simulation workloads are
scaled down from the paper's 5 MB transfers so the whole suite finishes in
minutes; pass ``--paper-scale`` to run the full-size experiments.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunConfig
from repro.scenarios import build_topology, get_preset


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the full-scale experiments (5 MB transfers, paper pair counts)",
    )
    parser.addoption(
        "--perf-strict",
        action="store_true",
        default=False,
        help="enforce hard wall-clock thresholds (timing-ratio assertions); "
             "off by default so tier-1 cannot flake under machine load",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_strict: hard wall-clock threshold assertions; skipped unless "
        "--perf-strict is given (they can fail spuriously on loaded machines)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--perf-strict"):
        return
    skip = pytest.mark.skip(
        reason="wall-clock threshold assertion; opt in with --perf-strict")
    for item in items:
        if "perf_strict" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    """True when the user asked for full-scale experiment runs."""
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def testbed():
    """The synthetic 20-node indoor testbed shared by all benchmarks.

    Resolved through the scenario layer so benchmarks and the ``repro`` CLI
    are guaranteed to simulate the same mesh.
    """
    return build_topology(get_preset("fig_4_2").topology)


@pytest.fixture(scope="session")
def run_config(paper_scale) -> RunConfig:
    """Per-flow transfer configuration (scaled or full size).

    Derived from the ``fig_4_2`` scenario preset; ``--paper-scale`` applies
    the paper's 5 MB transfer (3495 x 1500 B packets) as run overrides.
    """
    spec = get_preset("fig_4_2")
    spec.run.update({"total_packets": 96, "batch_size": 32, "packet_size": 1500})
    if paper_scale:
        spec.run.update({"total_packets": 3495, "max_duration": 600.0})
    return spec.run_config(seed=1)


@pytest.fixture(scope="session")
def pair_count(paper_scale) -> int:
    """Number of random source-destination pairs per experiment."""
    return 200 if paper_scale else 10


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


RESULTS_DIR = None


def save_report(result) -> None:
    """Persist a figure report under <repo-root>/results/ for EXPERIMENTS.md."""
    import pathlib

    results_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"{result.name}.txt"
    path.write_text(result.report + "\n", encoding="utf-8")
