"""Figure 4-5: average per-flow throughput with 1-4 concurrent flows.

Paper result: MORE and ExOR stay ahead of Srcr, but the per-flow throughput
of every protocol drops as flows are added (opportunistic routing exploits
receptions, it does not create capacity), and the MORE/ExOR gap narrows
under congestion.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_5

from conftest import run_once, save_report


def test_figure_4_5_multiflow(benchmark, testbed, run_config, paper_scale):
    runs_per_point = 40 if paper_scale else 2
    result = run_once(benchmark, figure_4_5, topology=testbed, max_flows=4,
                      runs_per_point=runs_per_point, seed=3, config=run_config)
    print("\n" + result.report)
    save_report(result)

    for protocol in ("MORE", "ExOR", "Srcr"):
        assert len(result.series[protocol]) == 4
    # Opportunistic routing does not add capacity: per-flow throughput under
    # four concurrent flows is well below the single-flow value (checked for
    # the opportunistic protocols; Srcr's tiny-sample series is noisier).
    for protocol in ("MORE", "ExOR"):
        series = result.series[protocol]
        assert series[-1] < series[0]
    # MORE starts ahead of Srcr with a single flow, and the advantage shrinks
    # (or disappears) under congestion rather than growing.
    more, srcr = result.series["MORE"], result.series["Srcr"]
    assert more[0] > srcr[0]
    assert more[-1] / max(srcr[-1], 1e-9) <= more[0] / max(srcr[0], 1e-9)
