"""The decode-path performance floor: the tentpole claim of the decode PR.

The deferred-transform (vectorized) coding-buffer engine reworks the
destination's hot loop — Gauss–Jordan elimination over the (K, 2K)
combined ops matrix per insertion, one ``gf_matmul`` back-substitution at
decode time — and the claim it must keep is concrete: a full destination
batch (K inserts + ``decode()``) at least **3x** faster than the
``destination_decode_pps`` committed by the bench-baseline/v3 run of
``make bench-baseline``.

Checked here, all behind ``--perf-strict`` like every wall-clock
threshold:

* the 3x floor against the committed v3 baseline;
* the live vectorized-vs-eager ratio (machine-independent, so it holds
  even where the absolute baseline figure would not transfer);
* the ``kilonode`` preset completing end-to-end through the real CLI —
  the 1000-node tier is only honest if it actually runs.

Bit-identity of the engines is *not* a timing property and is asserted
unconditionally in ``tests/coding/test_decode_properties.py``.
"""

from __future__ import annotations

import gc
import time

import numpy as np
import pytest

from repro.cli import main as repro_main
from repro.coding.decoder import BatchDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import make_batch

K = 32
PACKET_SIZE = 1500
ROUNDS = 25

#: ``coding_pps.destination_decode_pps`` committed by the bench-baseline/v3
#: run (the eager engine, insert loop only) — the same constant
#: ``scripts/bench_baseline.py`` records as ``decode_speedup_vs_v3_baseline``.
DECODE_BASELINE_PPS = 3790.919869913409


@pytest.fixture(scope="module")
def full_rank_packets():
    """K coded packets spanning a K-size batch (same seeds as the bench)."""
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(1))
    encoder = SourceEncoder(batch, np.random.default_rng(2))
    return encoder.next_packets(K)


def _decode_seconds(packets, engine: str) -> float:
    """Best-of-N wall clock for one full batch: K inserts + decode().

    Each round is only a few milliseconds, so when the rest of the
    benchmark suite has run first a single collector pause can swallow the
    whole measurement: GC is paused around the rounds (the heap left behind
    by earlier pytest-benchmark tests is otherwise scanned mid-round) and
    the round count is high enough that best-of rides out scheduler noise.
    """
    def once() -> float:
        decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE,
                               engine=engine)
        start = time.perf_counter()
        for coded in packets:
            decoder.add_packet(coded)
        decoder.decode()
        return time.perf_counter() - start
    once()  # warm-up: table loads, allocator and cache priming
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        return min(once() for _ in range(ROUNDS))
    finally:
        if gc_was_enabled:
            gc.enable()


@pytest.mark.perf_strict
def test_vectorized_decode_beats_committed_baseline_3x(full_rank_packets):
    """Insert+decode throughput >= 3x the committed v3 decode baseline."""
    elapsed = _decode_seconds(full_rank_packets, "vectorized")
    pps = K / elapsed
    print(f"\nvectorized decode: {pps:,.0f} pps vs committed "
          f"{DECODE_BASELINE_PPS:,.0f} pps ({pps / DECODE_BASELINE_PPS:.2f}x)")
    assert pps >= 3.0 * DECODE_BASELINE_PPS


@pytest.mark.perf_strict
def test_vectorized_decode_beats_eager_engine(full_rank_packets):
    """Live ratio: the deferred-transform engine beats the eager fast path.

    The eager engine back-substitutes payloads on every insertion; deferring
    the transform must win by a clear margin (measured ~4x; floor 2x keeps
    headroom for slow machines while still catching a regression to
    per-insert payload work).
    """
    vectorized = _decode_seconds(full_rank_packets, "vectorized")
    eager = _decode_seconds(full_rank_packets, "eager")
    speedup = eager / vectorized
    print(f"\ndecode engines: eager {K / eager:,.0f} pps, "
          f"vectorized {K / vectorized:,.0f} pps, speedup {speedup:.1f}x")
    assert speedup >= 2.0


@pytest.mark.perf_strict
def test_kilonode_preset_completes_from_cli(capsys):
    """``repro run --preset kilonode`` finishes end-to-end (1000 nodes)."""
    exit_code = repro_main(["run", "--preset", "kilonode", "--no-cache"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "MORE" in out
