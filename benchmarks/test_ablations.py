"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a specific paper figure; they quantify how much
each modelling/design ingredient matters on the synthetic testbed:

* forwarder-ordering metric (ETX, as deployed, vs the optimal EOTX);
* the 10% forwarder pruning rule on vs off;
* the probe-estimation control plane vs a perfectly informed one (the
  ablation of the Srcr-vs-MORE asymmetry the paper's introduction builds on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import RunConfig, run_single_flow
from repro.experiments.workloads import random_pairs

from conftest import run_once


def _median_throughput(testbed, protocol, pairs, config):
    results = [run_single_flow(testbed, protocol, s, d, config=config) for s, d in pairs]
    return float(np.median([r.throughput_pkts for r in results]))


def test_ablation_more_ordering_metric(benchmark, testbed, run_config, paper_scale):
    """ETX-ordered vs EOTX-ordered MORE (Section 5.7 predicts a tiny gap)."""
    pairs = random_pairs(testbed, 20 if paper_scale else 5, seed=11)

    def run_both():
        etx_config = RunConfig(**{**run_config.__dict__, "more_metric": "etx"})
        eotx_config = RunConfig(**{**run_config.__dict__, "more_metric": "eotx"})
        return (_median_throughput(testbed, "MORE", pairs, etx_config),
                _median_throughput(testbed, "MORE", pairs, eotx_config))

    etx_median, eotx_median = run_once(benchmark, run_both)
    print(f"\nMORE median throughput: ETX order {etx_median:.1f} pkt/s, "
          f"EOTX order {eotx_median:.1f} pkt/s")
    # Section 5.7: the ordering choice barely matters in practice.
    assert eotx_median == pytest.approx(etx_median, rel=0.5)


def test_ablation_forwarder_pruning(benchmark, testbed, run_config, paper_scale):
    """The 10% pruning rule trades a little transmission diversity for less
    contention; it must not cripple throughput."""
    from repro.protocols.more import setup_more_flow
    from repro.sim.radio import PhyConfig, SimConfig
    from repro.sim.simulator import Simulator

    pairs = random_pairs(testbed, 12 if paper_scale else 4, seed=12)

    def run_variant(prune: bool) -> float:
        throughputs = []
        for source, destination in pairs:
            sim = Simulator(testbed, SimConfig(phy=PhyConfig(), seed=3))
            handle = setup_more_flow(
                sim, testbed, source, destination,
                total_packets=run_config.total_packets,
                batch_size=run_config.batch_size,
                packet_size=run_config.packet_size,
                coding_payload_size=run_config.coding_payload_size,
                prune=prune, seed=3,
                control_topology=run_config.control_view(testbed),
            )
            sim.run(until=run_config.max_duration,
                    stop_condition=sim.stats.all_flows_complete)
            record = sim.stats.flows[handle.flow_id]
            duration = record.duration if record.completed else sim.now
            throughputs.append(record.delivered_packets / max(duration, 1e-9))
        return float(np.median(throughputs))

    def run_both():
        return run_variant(True), run_variant(False)

    pruned, unpruned = run_once(benchmark, run_both)
    print(f"\nMORE median throughput: pruned {pruned:.1f} pkt/s, unpruned {unpruned:.1f} pkt/s")
    assert pruned > 0.5 * unpruned


def test_ablation_control_plane_estimation(benchmark, testbed, run_config, paper_scale):
    """Perfectly informed vs probe-estimated control plane.

    Best-path routing relies entirely on the accuracy of its link estimates,
    so it benefits far more from a perfect control plane than MORE does —
    this asymmetry is the core of the paper's motivation for opportunistic
    routing.
    """
    pairs = random_pairs(testbed, 16 if paper_scale else 6, seed=13)

    def run_matrix():
        noisy = RunConfig(**{**run_config.__dict__})
        perfect = RunConfig(**{**run_config.__dict__,
                               "estimation_exponent": 1.0, "estimation_probes": 0})
        return {
            ("Srcr", "probe"): _median_throughput(testbed, "Srcr", pairs, noisy),
            ("Srcr", "perfect"): _median_throughput(testbed, "Srcr", pairs, perfect),
            ("MORE", "probe"): _median_throughput(testbed, "MORE", pairs, noisy),
            ("MORE", "perfect"): _median_throughput(testbed, "MORE", pairs, perfect),
        }

    results = run_once(benchmark, run_matrix)
    print("\ncontrol-plane ablation (median pkt/s):")
    for (protocol, mode), value in results.items():
        print(f"  {protocol:<5} {mode:<8} {value:8.1f}")
    srcr_benefit = results[("Srcr", "perfect")] / max(results[("Srcr", "probe")], 1e-9)
    more_benefit = results[("MORE", "perfect")] / max(results[("MORE", "probe")], 1e-9)
    # Srcr gains at least as much from perfect link knowledge as MORE does.
    assert srcr_benefit >= more_benefit * 0.9
