"""Sweep-orchestrator and recode performance floors: this PR's perf claims.

Two wall-clock contracts, both behind ``--perf-strict`` like every timing
threshold in this suite:

* the orchestrator's persistent-worker pool runs the shared cold-sweep
  workload (:mod:`repro.experiments.orchestrator.bench` — the exact
  workload the committed ``sweep`` stage of ``make bench-baseline``
  records) at least **1.5x** faster than the PR 1 fresh-pool-per-call
  runner, spin-up included, and replays it from a warm content-addressed
  store within a fixed wall budget recomputing nothing;
* the forwarder recode path (``combine_rows``: one fused coefficient
  product instead of materialising K recode rows per emitted packet) at
  least **1.5x** the ``forwarder_recode_pps`` committed by the
  bench-baseline/v4 run.

Bit-identity of the fused recode path and of pooled-vs-serial sweeps is
*not* a timing property and is asserted unconditionally in
``tests/coding/`` and ``tests/scenarios/``.
"""

from __future__ import annotations

import gc
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import make_batch
from repro.experiments.orchestrator import run_sweep, shutdown_shared_pools
from repro.experiments.orchestrator.bench import (
    BENCH_CELLS,
    BENCH_WORKERS,
    bench_sweep_specs,
)
from repro.experiments.parallel import run_cells

K = 32
PACKET_SIZE = 1500
ROUNDS = 3
#: ``coding_pps.forwarder_recode_pps`` committed by the bench-baseline/v4
#: run — the same constant ``scripts/bench_baseline.py`` records as
#: ``recode_speedup_vs_v4_baseline``.
RECODE_BASELINE_PPS = 7352.648894919501
#: Cold sweeps and recode both claim the same conservative multiple.
FLOOR = 1.5
#: Warm-cache replay of all BENCH_CELLS cells must finish within this
#: budget — pure store reads, measured at ~2 orders of magnitude under it.
WARM_REPLAY_BUDGET_S = 2.0


def _best_of(measure, rounds: int = ROUNDS) -> float:
    gc.collect()
    return min(measure() for _ in range(rounds))


def _timed(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


@pytest.mark.perf_strict
def test_cold_sweep_floor_vs_pr1_runner():
    """Persistent pool >= 1.5x the fresh-pool runner, spin-up included."""
    specs = bench_sweep_specs()

    def pr1_round() -> float:
        return _timed(lambda: [run_cells(spec.expand(), workers=BENCH_WORKERS)
                               for spec in specs])

    def cold_round() -> float:
        shutdown_shared_pools()  # the orchestrator pays spin-up every round
        return _timed(lambda: [run_sweep(spec, workers=BENCH_WORKERS,
                                         results_dir=None)
                               for spec in specs])

    try:
        pr1_s = _best_of(pr1_round)
        cold_s = _best_of(cold_round)
    finally:
        shutdown_shared_pools()
    speedup = pr1_s / cold_s
    assert speedup >= FLOOR, (
        f"cold sweep speedup {speedup:.2f}x under the {FLOOR}x floor "
        f"(PR 1 runner {BENCH_CELLS / pr1_s:.0f} cells/s, "
        f"orchestrator {BENCH_CELLS / cold_s:.0f} cells/s)")


@pytest.mark.perf_strict
def test_warm_replay_recomputes_nothing_within_budget():
    """A populated store replays the whole workload as hits, fast."""
    specs = bench_sweep_specs()
    with tempfile.TemporaryDirectory() as tmp:
        results_dir = Path(tmp)
        try:
            for spec in specs:  # populate outside the timing
                run_sweep(spec, workers=BENCH_WORKERS, results_dir=results_dir)
            replays: list = []
            elapsed = _timed(lambda: replays.extend(
                run_sweep(spec, workers=BENCH_WORKERS, results_dir=results_dir)
                for spec in specs))
        finally:
            shutdown_shared_pools()
    assert sum(result.computed_cells for result in replays) == 0
    assert sum(result.cached_cells for result in replays) == BENCH_CELLS
    assert elapsed < WARM_REPLAY_BUDGET_S, (
        f"warm replay took {elapsed:.3f}s, budget {WARM_REPLAY_BUDGET_S}s")


@pytest.mark.perf_strict
def test_forwarder_recode_floor_vs_v4_baseline():
    """The fused combine_rows recode path >= 1.5x the committed v4 rate."""
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(1))
    packets = SourceEncoder(batch, np.random.default_rng(2)).next_packets(K)

    def recode_batch() -> None:
        forwarder = ForwarderEncoder(batch_size=K, packet_size=PACKET_SIZE,
                                     rng=np.random.default_rng(3))
        for coded in packets[: K // 2]:
            forwarder.add_packet(coded)
        for _ in range(K // 2):
            forwarder.next_packet()

    # Same recipe as coding_benchmarks() in scripts/bench_baseline.py,
    # more rounds: each round is short enough for scheduler noise.
    recode_s = _best_of(lambda: _timed(recode_batch), rounds=15) / K
    pps = 1.0 / recode_s
    assert pps >= FLOOR * RECODE_BASELINE_PPS, (
        f"forwarder recode {pps:.0f} pps under "
        f"{FLOOR}x v4 baseline ({FLOOR * RECODE_BASELINE_PPS:.0f} pps)")
