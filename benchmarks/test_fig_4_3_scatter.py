"""Figure 4-3: per-pair throughput scatter, opportunistic routing vs Srcr.

Paper result: the points far above the 45-degree line are the challenged
(low Srcr throughput) flows; flows that already do well under Srcr gain
little.  The benchmark checks exactly that asymmetry.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_3

from conftest import run_once, save_report


def test_figure_4_3_scatter(benchmark, testbed, run_config, pair_count):
    result = run_once(benchmark, figure_4_3, topology=testbed, pair_count=pair_count,
                      seed=1, config=run_config)
    print("\n" + result.report)
    save_report(result)

    # Opportunistic routing helps the challenged half of the pairs much more
    # than the already-good half.
    assert result.summary["mean_gain_challenged"] > result.summary["mean_gain_good"]
    assert result.summary["mean_gain_challenged"] > 1.2
    # Most pairs sit above the diagonal for MORE.
    assert result.summary["fraction_above_diagonal_more"] >= 0.5
