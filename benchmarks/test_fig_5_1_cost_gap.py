"""Figure 5-1 / Section 5.7: the ETX-order vs EOTX-order cost gap.

Paper result: on the contrived topology the gap grows without bound as the
bridge link weakens (its limit is the number of parallel C nodes), while on
the real testbed the orderings almost always agree (median gap of affected
flows ~0.2%).
"""

from __future__ import annotations

from repro.experiments.figures import figure_5_1

from conftest import run_once, save_report


def test_figure_5_1_cost_gap(benchmark, paper_scale):
    testbed_pairs = 100 if paper_scale else 15
    result = run_once(benchmark, figure_5_1,
                      bridge_deliveries=(0.3, 0.2, 0.1, 0.06),
                      branch_count=8, testbed_pairs=testbed_pairs, seed=6)
    print("\n" + result.report)
    save_report(result)

    analytic = result.series["analytic_gap"]
    measured = result.series["measured_gap"]
    # The gap grows monotonically as the bridge weakens, in both the closed
    # form and the Algorithm-1 measurement.
    assert all(b > a for a, b in zip(analytic, analytic[1:]))
    assert all(b > a for a, b in zip(measured, measured[1:]))
    assert result.summary["max_gap"] > 2.0
    # On the testbed the ordering choice is marginal.
    assert result.summary["testbed_median_gap_affected"] < 0.10
