"""The analyzer's wall-clock budget: whole-program analysis stays under 5 s.

The interprocedural layer (call graph + dataflow) made ``make analyze`` a
whole-program pass; this benchmark pins the contract that it stays a
pre-commit-speed tool.  The budget is a hard product requirement (the CI
analyze job runs on every push), so the threshold is asserted under
``--perf-strict`` rather than merely recorded.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis import run_rules

pytestmark = pytest.mark.perf_strict

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The whole-tree budget for one cold run of every registered rule,
#: including call-graph and dataflow construction (measured ~2.3 s).
FULL_TREE_BUDGET_S = 5.0

ROUNDS = 3


def test_full_tree_analysis_under_budget():
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        findings = run_rules(REPO_ROOT)
        best = min(best, time.perf_counter() - started)
    assert findings == []  # the shipped tree stays clean while we measure
    assert best < FULL_TREE_BUDGET_S, (
        f"full-tree analysis took {best:.2f}s (budget {FULL_TREE_BUDGET_S}s)")
