"""Engine hot-path floors: fast scheduler and protocol paths vs the legacy engine.

The event-engine overhaul (tuple-heap scheduler with lazy cancellation,
closure-free MAC, cached medium resolution, MORE/ExOR agent fast paths) is
asserted here against the retained pre-refactor implementations
(``SimConfig(engine="legacy")``), on the exact workloads whose committed
baselines live in ``BENCH_coding.json`` (schema ``bench-baseline/v3``, see
``make bench-baseline`` and docs/performance.md):

* scheduler events/s on the canonical timer workload (≥ 1.5x floor;
  measured ~2.3x);
* end-to-end MORE wall clock on the fig_4_2-style single-flow run (≥ 1.5x
  live floor; the committed baselines show ≥ 2x against the pre-refactor
  v2 measurement — the live floor is set conservatively because both sides
  of the ratio move under machine load);
* the ``large_mesh_200`` scale preset completes, delivers, and stays under
  a generous absolute wall-clock ceiling.

All ratios are measured interleaved and best-of-N so transient load hits
both sides alike.  Bit-identity of the two engines is not asserted here —
that is tier-1 territory (``tests/sim/test_engine_differential.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.runner import RunConfig, run_single_flow
from repro.scenarios import build_topology, get_preset
from repro.sim.events import (
    BENCH_EVENTS,
    EventQueue,
    LegacyEventQueue,
    pump_timer_workload,
)

pytestmark = pytest.mark.perf_strict

#: Conservative live floors (committed measurements are well above these;
#: the margin absorbs machine-load jitter on the loser *and* the winner).
ENGINE_EPS_FLOOR = 1.5
MORE_WALL_FLOOR = 1.5
#: Generous ceiling for one MORE flow on the 200-node mesh (measured ~0.3 s).
LARGE_MESH_WALL_CEILING = 5.0

ROUNDS = 5


def _interleaved_best(tasks: dict[str, callable], rounds: int = ROUNDS) -> dict[str, float]:
    """Best-of wall clock per task, rounds interleaved across tasks."""
    best = {name: float("inf") for name in tasks}
    for _ in range(rounds):
        for name, task in tasks.items():
            start = time.perf_counter()
            task()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_scheduler_events_per_second_floor():
    """The tuple-heap scheduler clears the legacy queue by a wide margin."""
    digests = {}

    def run(name, factory):
        def task():
            queue = factory()
            digests[name] = pump_timer_workload(queue)
        return task

    best = _interleaved_best({"fast": run("fast", EventQueue),
                              "legacy": run("legacy", LegacyEventQueue)})
    assert digests["fast"] == digests["legacy"]  # identical dispatch sequence
    speedup = best["legacy"] / best["fast"]
    eps = BENCH_EVENTS / best["fast"]
    assert speedup >= ENGINE_EPS_FLOOR, (
        f"scheduler speedup {speedup:.2f}x below {ENGINE_EPS_FLOOR}x "
        f"({eps:,.0f} events/s fast)")


def test_more_fig_4_2_wall_clock_floor():
    """End-to-end MORE on the fig_4_2-style single flow: fast vs legacy engine."""
    topology = build_topology(get_preset("fig_4_2").topology)
    results = {}

    def run(engine):
        config = RunConfig(total_packets=96, batch_size=32, packet_size=1500,
                           seed=2, engine=engine)

        def task():
            results[engine] = run_single_flow(topology, "MORE", 17, 2,
                                              config=config)
        return task

    best = _interleaved_best({"fast": run("fast"), "legacy": run("legacy")})
    # Same trace either way (the cheap end-to-end identity check; the full
    # RNG-state differential lives in tier-1).
    assert results["fast"].delivered_packets == results["legacy"].delivered_packets
    assert results["fast"].duration == results["legacy"].duration
    assert results["fast"].data_transmissions == results["legacy"].data_transmissions
    speedup = best["legacy"] / best["fast"]
    assert speedup >= MORE_WALL_FLOOR, (
        f"MORE end-to-end speedup {speedup:.2f}x below {MORE_WALL_FLOOR}x "
        f"(fast {best['fast']:.3f}s, legacy {best['legacy']:.3f}s)")


def test_large_mesh_200_completes_under_ceiling():
    """The 200-node scale preset finishes a MORE transfer within the floor."""
    spec = get_preset("large_mesh_200")
    topology = build_topology(spec.topology)
    source, destination = spec.workload.params["pairs"][0]
    config = spec.run_config(seed=spec.seeds[0])

    best = float("inf")
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = run_single_flow(topology, "MORE", source, destination,
                                 config=config)
        best = min(best, time.perf_counter() - start)
    assert result.completed, "large_mesh_200 MORE transfer did not complete"
    assert result.delivered_packets == config.total_packets
    assert best < LARGE_MESH_WALL_CEILING, (
        f"large_mesh_200 took {best:.2f}s (ceiling {LARGE_MESH_WALL_CEILING}s)")
