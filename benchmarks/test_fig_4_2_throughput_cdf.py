"""Figure 4-2: CDF of unicast throughput for MORE, ExOR and Srcr.

Paper result: MORE's median throughput is ~22% above ExOR and ~95% above
Srcr; the most challenged pairs gain 10-12x over Srcr; 90% of MORE flows
exceed 50 pkt/s while Srcr's 10th percentile sits around 10 pkt/s.
The benchmark regenerates the CDF series and checks the ordering and the
approximate gain factors (the synthetic testbed reproduces the shape, not
the exact numbers).
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_2

from conftest import run_once, save_report


def test_figure_4_2_unicast_throughput(benchmark, testbed, run_config, pair_count):
    result = run_once(benchmark, figure_4_2, topology=testbed, pair_count=pair_count,
                      seed=1, config=run_config)
    print("\n" + result.report)
    save_report(result)

    more_over_exor = result.summary["more_over_exor_median_gain"]
    more_over_srcr = result.summary["more_over_srcr_median_gain"]

    # Shape checks: MORE > ExOR and MORE > Srcr in the median, with gains in
    # the same ballpark as the paper's 1.2x and 1.95x.
    assert more_over_exor > 1.0
    assert more_over_srcr > 1.2
    assert 1.0 < more_over_exor < 2.0
    assert 1.2 < more_over_srcr < 4.0
    # Challenged flows gain far more than the median flow.
    assert result.summary["max_pairwise_gain_over_srcr"] > more_over_srcr
