"""Figure 4-6: Srcr with Onoe autorate vs MORE/ExOR at a fixed 11 Mb/s.

Paper result: opportunistic routing keeps its advantage even when Srcr is
allowed automatic rate selection; autorate does not clearly beat the fixed
maximum rate because it reacts to interference losses by dropping to slow,
airtime-hungry rates.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4_6

from conftest import run_once, save_report


def test_figure_4_6_autorate(benchmark, testbed, run_config, paper_scale):
    pair_count = 40 if paper_scale else 8
    result = run_once(benchmark, figure_4_6, topology=testbed, pair_count=pair_count,
                      seed=4, config=run_config)
    print("\n" + result.report)
    save_report(result)

    # MORE keeps a clear advantage over Srcr-with-autorate.
    assert result.summary["more_over_srcr_autorate_median_gain"] > 1.1
    # Autorate does not dramatically outperform the fixed maximum rate
    # (the paper finds it slightly *worse* on average).
    assert result.summary["autorate_over_fixed_median_gain"] < 1.5
