"""Packaging metadata for the MORE reproduction.

Metadata is declared here (rather than in ``pyproject.toml``'s ``[project]``
table) so the package also installs editable via the legacy path
(``pip install -e . --no-use-pep517``) in offline environments that lack the
``wheel`` package required by PEP 660 editable builds; ``pyproject.toml``
carries only the build-system requirements and tool configuration.
"""

from setuptools import find_packages, setup

setup(
    name="more-repro",
    version="1.0.0",
    description=(
        "Reproduction of MORE: Trading Structure for Randomness in Wireless "
        "Opportunistic Routing (SIGCOMM 2007)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark", "hypothesis"],
        # Static-analysis extras: `make analyze` runs the repro.analysis
        # rules with the stdlib alone, but enforces the strict-mypy
        # typed-core gate (and full-strength ruff linting) when these are
        # installed.  CI installs them explicitly.
        "dev": ["mypy>=1.8", "ruff"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
    ],
)
