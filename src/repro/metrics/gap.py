"""ETX-order vs EOTX-order cost gap (Section 5.7).

Both MORE and ExOR order forwarders by ETX even though Chapter 5 shows EOTX
is the optimal ordering.  Section 5.7 quantifies the resulting inefficiency:

* Proposition 6 constructs a topology (Figure 5-1) on which the gap —
  the ratio of total expected transmissions with ETX ordering to that with
  EOTX ordering — can be made arbitrarily large;
* on the real testbed the gap turns out to be negligible (more than 40% of
  flows unaffected; median gap of the affected flows about 0.2%).

This module computes the gap for arbitrary topologies (via Algorithm 1 run
under both orderings) and provides the closed-form expressions for the
Figure 5-1 topology so tests can validate the limit ``gap -> k`` as
``p -> 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.credits import expected_transmissions
from repro.metrics.etx import DEFAULT_LINK_THRESHOLD
from repro.topology.graph import Topology


@dataclass(frozen=True)
class GapResult:
    """Cost comparison of ETX-ordered vs EOTX-ordered forwarding for one pair.

    Attributes:
        source: flow source node.
        destination: flow destination node.
        etx_cost: total expected transmissions with ETX ordering.
        eotx_cost: total expected transmissions with EOTX ordering.
    """

    source: int
    destination: int
    etx_cost: float
    eotx_cost: float

    @property
    def gap(self) -> float:
        """Cost ratio (>= 1 in theory; 1 means the orderings agree)."""
        if self.eotx_cost <= 0.0:
            return 1.0
        return self.etx_cost / self.eotx_cost

    @property
    def affected(self) -> bool:
        """True if the ordering choice changes the total cost measurably."""
        return abs(self.etx_cost - self.eotx_cost) > 1e-9


def cost_gap(topology: Topology, source: int, destination: int,
             threshold: float = DEFAULT_LINK_THRESHOLD) -> GapResult:
    """Compute the ETX-vs-EOTX cost gap for one source-destination pair."""
    etx_plan = expected_transmissions(topology, source, destination, metric="etx",
                                      threshold=threshold)
    eotx_plan = expected_transmissions(topology, source, destination, metric="eotx",
                                       threshold=threshold)
    return GapResult(
        source=source,
        destination=destination,
        etx_cost=etx_plan.total_cost,
        eotx_cost=eotx_plan.total_cost,
    )


def gap_survey(topology: Topology, pairs: list[tuple[int, int]],
               threshold: float = DEFAULT_LINK_THRESHOLD) -> list[GapResult]:
    """Compute the gap for a list of source-destination pairs."""
    return [cost_gap(topology, s, d, threshold=threshold) for s, d in pairs]


def summarize_gaps(results: list[GapResult]) -> dict[str, float]:
    """Summary statistics matching the presentation in Section 5.7.

    Returns a dict with:

    * ``fraction_unaffected`` — share of flows whose cost the ordering does
      not change (the paper reports > 40%);
    * ``median_gap_affected`` — median relative excess cost
      (``gap - 1``) among affected flows (the paper reports about 0.2%);
    * ``max_gap`` — worst observed ratio.
    """
    if not results:
        return {"fraction_unaffected": 1.0, "median_gap_affected": 0.0, "max_gap": 1.0}
    unaffected = [r for r in results if not r.affected]
    affected = [r for r in results if r.affected]
    median_excess = float(np.median([r.gap - 1.0 for r in affected])) if affected else 0.0
    return {
        "fraction_unaffected": len(unaffected) / len(results),
        "median_gap_affected": median_excess,
        "max_gap": float(max(r.gap for r in results)),
    }


def figure_5_1_etx_cost(bridge_delivery: float) -> float:
    """Closed-form total cost with ETX ordering on the Figure 5-1 topology.

    ETX ranks node B no closer to the destination than the source, so only
    node A can forward and the cost is that of the path src -> A -> dst,
    namely ``1/p + 1``.
    """
    return 1.0 / bridge_delivery + 1.0


def figure_5_1_eotx_cost(bridge_delivery: float, branch_count: int) -> float:
    """Closed-form total cost with EOTX ordering on the Figure 5-1 topology.

    Routing through B and the k parallel C nodes costs
    ``1 / (1 - (1-p)^k) + 2`` (source -> B, B -> some C, C -> destination).
    """
    p = bridge_delivery
    return 1.0 / (1.0 - (1.0 - p) ** branch_count) + 2.0


def figure_5_1_gap(bridge_delivery: float, branch_count: int) -> float:
    """Closed-form gap for the Figure 5-1 topology (Proposition 6).

    The limit as ``bridge_delivery -> 0`` is ``branch_count``, which is what
    makes the gap unbounded.
    """
    return figure_5_1_etx_cost(bridge_delivery) / figure_5_1_eotx_cost(
        bridge_delivery, branch_count
    )
