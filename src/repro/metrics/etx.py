"""The ETX routing metric (De Couto et al.) used by Srcr, ExOR and MORE.

ETX of a link is the expected number of transmissions to get a frame across
it; ETX of a path is the sum over its links; ETX of a *node* (with respect
to a destination) is the ETX of its best path to that destination.  MORE and
ExOR use node ETX to order forwarders ("closer to the destination" means
lower ETX, Table 3.1), and Srcr uses path ETX to pick routes.

Two flavours are supported:

* ``ack_aware=False`` (default): link ETX = 1 / p_forward, as used in the
  paper's examples and in the Chapter 3/5 analysis;
* ``ack_aware=True``: link ETX = 1 / (p_forward * p_reverse), the original
  ETX definition that also charges for lost link-layer ACKs.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.topology.graph import Topology

#: Links with delivery probability below this are treated as unusable;
#: otherwise a 1% link would dominate every metric with an ETX of 100+.
DEFAULT_LINK_THRESHOLD = 0.05


def link_etx(topology: Topology, sender: int, receiver: int, ack_aware: bool = False,
             threshold: float = DEFAULT_LINK_THRESHOLD) -> float:
    """ETX of the directed link ``sender -> receiver`` (inf if unusable)."""
    forward = topology.delivery(sender, receiver)
    if forward <= threshold:
        return math.inf
    if ack_aware:
        reverse = topology.delivery(receiver, sender)
        if reverse <= threshold:
            return math.inf
        return 1.0 / (forward * reverse)
    return 1.0 / forward


def _link_cost_matrix(topology: Topology, ack_aware: bool,
                      threshold: float) -> np.ndarray:
    """``cost[s, r]`` = ETX of the directed link ``s -> r`` (inf if unusable).

    The vectorized form of :func:`link_etx` over the whole mesh — identical
    arithmetic (``1 / p`` rsp. ``1 / (p_fwd * p_rev)``), so every matrix
    entry is bit-equal to the scalar call.
    """
    delivery = topology.delivery_matrix()
    usable = delivery > threshold
    if ack_aware:
        usable &= usable.T
        with np.errstate(divide="ignore", invalid="ignore"):
            cost = 1.0 / (delivery * delivery.T)
    else:
        with np.errstate(divide="ignore"):
            cost = 1.0 / delivery
    return np.where(usable, cost, math.inf)


def etx_to_destination(topology: Topology, destination: int, ack_aware: bool = False,
                       threshold: float = DEFAULT_LINK_THRESHOLD,
                       cost_matrix: np.ndarray | None = None) -> np.ndarray:
    """Best-path ETX from every node to ``destination`` (Dijkstra).

    The relaxation step is vectorized: settling a node relaxes every
    in-neighbour with one array operation instead of a per-link python
    loop, which is what makes control-plane setup on 200-node meshes
    affordable.  Distances are identical to the per-link formulation —
    every candidate is the same ``settled + 1/p`` sum, and Dijkstra's final
    distances do not depend on tie-breaking among equal keys.

    Args:
        cost_matrix: optional precomputed :func:`_link_cost_matrix` (must
            match ``ack_aware``/``threshold``); callers that run several
            queries on one topology pass it to skip the O(n^2) rebuild.

    Returns:
        A vector ``d`` with ``d[destination] == 0`` and ``d[i] == inf`` for
        nodes with no usable path.
    """
    count = topology.node_count
    cost = cost_matrix if cost_matrix is not None \
        else _link_cost_matrix(topology, ack_aware, threshold)
    distances = np.full(count, math.inf)
    distances[destination] = 0.0
    heap: list[tuple[float, int]] = [(0.0, destination)]
    visited = np.zeros(count, dtype=bool)
    while heap:
        distance, node = heapq.heappop(heap)
        if visited[node]:
            continue
        visited[node] = True
        # Relax every link neighbor -> node at once (distances are toward
        # the destination).
        candidates = distance + cost[:, node]
        improved = np.nonzero((candidates < distances) & ~visited)[0]
        if improved.size:
            distances[improved] = candidates[improved]
            for neighbor in improved:
                heapq.heappush(heap, (float(candidates[neighbor]), int(neighbor)))
    return distances


def best_path(topology: Topology, source: int, destination: int, ack_aware: bool = False,
              threshold: float = DEFAULT_LINK_THRESHOLD) -> list[int]:
    """The minimum-ETX path from ``source`` to ``destination``.

    Returns:
        The node list ``[source, ..., destination]``.

    Raises:
        ValueError: if no usable path exists.
    """
    cost = _link_cost_matrix(topology, ack_aware, threshold)
    distances = etx_to_destination(topology, destination, ack_aware=ack_aware,
                                   threshold=threshold, cost_matrix=cost)
    if math.isinf(distances[source]):
        raise ValueError(f"no usable path from {source} to {destination}")
    count = topology.node_count
    path = [source]
    current = source
    excluded = np.zeros(count, dtype=bool)
    excluded[source] = True
    while current != destination:
        # One vectorized scan per hop; argmin picks the lowest-index
        # minimum, matching the strict-improvement scalar scan.
        candidates = cost[current] + distances
        candidates[excluded] = math.inf
        best_next = int(np.argmin(candidates))
        if math.isinf(candidates[best_next]):
            raise ValueError(f"path reconstruction stuck at node {current}")
        path.append(best_next)
        excluded[best_next] = True
        current = best_next
    return path


def path_etx(topology: Topology, path: list[int], ack_aware: bool = False,
             threshold: float = DEFAULT_LINK_THRESHOLD) -> float:
    """Total ETX of an explicit path (sum of its link ETXs)."""
    total = 0.0
    for sender, receiver in zip(path[:-1], path[1:]):
        total += link_etx(topology, sender, receiver, ack_aware=ack_aware, threshold=threshold)
    return total


def hop_count(topology: Topology, source: int, destination: int,
              ack_aware: bool = False, threshold: float = DEFAULT_LINK_THRESHOLD) -> int:
    """Number of hops on the best-ETX path between two nodes."""
    return len(best_path(topology, source, destination, ack_aware=ack_aware,
                         threshold=threshold)) - 1


def etx_order(topology: Topology, destination: int, ack_aware: bool = False,
              threshold: float = DEFAULT_LINK_THRESHOLD) -> list[int]:
    """Nodes sorted by increasing ETX distance to ``destination``.

    Unreachable nodes are omitted.  This ordering defines "closer to the
    destination" for MORE and ExOR forwarder lists.
    """
    distances = etx_to_destination(topology, destination, ack_aware=ack_aware,
                                   threshold=threshold)
    reachable = [i for i in range(topology.node_count) if not math.isinf(distances[i])]
    return sorted(reachable, key=lambda i: (distances[i], i))
