"""The ETX routing metric (De Couto et al.) used by Srcr, ExOR and MORE.

ETX of a link is the expected number of transmissions to get a frame across
it; ETX of a path is the sum over its links; ETX of a *node* (with respect
to a destination) is the ETX of its best path to that destination.  MORE and
ExOR use node ETX to order forwarders ("closer to the destination" means
lower ETX, Table 3.1), and Srcr uses path ETX to pick routes.

Two flavours are supported:

* ``ack_aware=False`` (default): link ETX = 1 / p_forward, as used in the
  paper's examples and in the Chapter 3/5 analysis;
* ``ack_aware=True``: link ETX = 1 / (p_forward * p_reverse), the original
  ETX definition that also charges for lost link-layer ACKs.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.topology.graph import Topology

#: Links with delivery probability below this are treated as unusable;
#: otherwise a 1% link would dominate every metric with an ETX of 100+.
DEFAULT_LINK_THRESHOLD = 0.05


def link_etx(topology: Topology, sender: int, receiver: int, ack_aware: bool = False,
             threshold: float = DEFAULT_LINK_THRESHOLD) -> float:
    """ETX of the directed link ``sender -> receiver`` (inf if unusable)."""
    forward = topology.delivery(sender, receiver)
    if forward <= threshold:
        return math.inf
    if ack_aware:
        reverse = topology.delivery(receiver, sender)
        if reverse <= threshold:
            return math.inf
        return 1.0 / (forward * reverse)
    return 1.0 / forward


def etx_to_destination(topology: Topology, destination: int, ack_aware: bool = False,
                       threshold: float = DEFAULT_LINK_THRESHOLD) -> np.ndarray:
    """Best-path ETX from every node to ``destination`` (Dijkstra).

    Returns:
        A vector ``d`` with ``d[destination] == 0`` and ``d[i] == inf`` for
        nodes with no usable path.
    """
    count = topology.node_count
    distances = np.full(count, math.inf)
    distances[destination] = 0.0
    heap: list[tuple[float, int]] = [(0.0, destination)]
    visited = np.zeros(count, dtype=bool)
    while heap:
        distance, node = heapq.heappop(heap)
        if visited[node]:
            continue
        visited[node] = True
        for neighbor in range(count):
            if neighbor == node or visited[neighbor]:
                continue
            # Relax the link neighbor -> node (distances are toward the destination).
            cost = link_etx(topology, neighbor, node, ack_aware=ack_aware, threshold=threshold)
            if math.isinf(cost):
                continue
            candidate = distance + cost
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def best_path(topology: Topology, source: int, destination: int, ack_aware: bool = False,
              threshold: float = DEFAULT_LINK_THRESHOLD) -> list[int]:
    """The minimum-ETX path from ``source`` to ``destination``.

    Returns:
        The node list ``[source, ..., destination]``.

    Raises:
        ValueError: if no usable path exists.
    """
    distances = etx_to_destination(topology, destination, ack_aware=ack_aware,
                                   threshold=threshold)
    if math.isinf(distances[source]):
        raise ValueError(f"no usable path from {source} to {destination}")
    path = [source]
    current = source
    visited = {source}
    while current != destination:
        best_next = None
        best_cost = math.inf
        for neighbor in range(topology.node_count):
            if neighbor == current or neighbor in visited:
                continue
            cost = link_etx(topology, current, neighbor, ack_aware=ack_aware,
                            threshold=threshold)
            if math.isinf(cost):
                continue
            candidate = cost + distances[neighbor]
            if candidate < best_cost:
                best_cost = candidate
                best_next = neighbor
        if best_next is None:
            raise ValueError(f"path reconstruction stuck at node {current}")
        path.append(best_next)
        visited.add(best_next)
        current = best_next
    return path


def path_etx(topology: Topology, path: list[int], ack_aware: bool = False,
             threshold: float = DEFAULT_LINK_THRESHOLD) -> float:
    """Total ETX of an explicit path (sum of its link ETXs)."""
    total = 0.0
    for sender, receiver in zip(path[:-1], path[1:]):
        total += link_etx(topology, sender, receiver, ack_aware=ack_aware, threshold=threshold)
    return total


def hop_count(topology: Topology, source: int, destination: int,
              ack_aware: bool = False, threshold: float = DEFAULT_LINK_THRESHOLD) -> int:
    """Number of hops on the best-ETX path between two nodes."""
    return len(best_path(topology, source, destination, ack_aware=ack_aware,
                         threshold=threshold)) - 1


def etx_order(topology: Topology, destination: int, ack_aware: bool = False,
              threshold: float = DEFAULT_LINK_THRESHOLD) -> list[int]:
    """Nodes sorted by increasing ETX distance to ``destination``.

    Unreachable nodes are omitted.  This ordering defines "closer to the
    destination" for MORE and ExOR forwarder lists.
    """
    distances = etx_to_destination(topology, destination, ack_aware=ack_aware,
                                   threshold=threshold)
    reachable = [i for i in range(topology.node_count) if not math.isinf(distances[i])]
    return sorted(reachable, key=lambda i: (distances[i], i))
