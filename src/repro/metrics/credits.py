"""Expected transmission counts, TX credits and forwarder pruning.

This module implements the machinery of Section 3.2.1 and Section 5.6:

* :func:`expected_transmissions` — Algorithm 1: given a forwarder ordering
  (by ETX or EOTX), compute for each node the expected number of
  transmissions ``z_i`` it must make per source packet, and the expected
  number of packets ``L_i`` it must forward.
* :func:`tx_credits` — Equation 3.3: the number of transmissions a forwarder
  makes per packet heard from upstream, which is the quantity MORE nodes
  actually use at run time (the credit counter increment).
* :func:`prune_forwarders` — the 10% pruning rule.
* :func:`cap_forwarders` — the fixed-size alternative (top-N relays by
  expected load), which is what keeps kilonode meshes routable: at that
  density the load spreads so thin that the fraction rule prunes *every*
  relay.
* :func:`load_distribution` — Algorithm 6: the flow-method computation of
  ``z`` and the edge flows ``x_ij`` from the per-node costs, which
  Section 5.6.2 shows coincides with Algorithm 1 when the EOTX order is
  used and losses are independent.
* :func:`forwarding_plan` — the one-stop entry point MORE's source calls to
  build a forwarder list with credits (what goes into the packet header).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.etx import DEFAULT_LINK_THRESHOLD, etx_to_destination
from repro.metrics.eotx import eotx_dijkstra
from repro.topology.graph import Topology

#: Forwarders expected to perform less than this fraction of the total
#: transmissions are pruned (Section 3.2.1, "Pruning").
DEFAULT_PRUNING_FRACTION = 0.10


@dataclass
class TransmissionPlan:
    """The per-flow forwarding state computed by the source.

    Attributes:
        source: source node id.
        destination: destination node id.
        participants: nodes taking part (destination first, source last),
            ordered by increasing distance-to-destination under ``metric``.
        distances: metric distance of every node in the topology
            (``inf`` for unreachable nodes).
        z: expected transmissions per source packet, indexed by node id.
        load: expected packets to forward per source packet (``L_i``).
        tx_credit: TX credit per node id (Eq. 3.3); 0 for non-participants
            and for the source (which is clocked by ACKs, not receptions).
        x: dict mapping (sender, receiver) to the expected innovative flow
            on that hyper-edge component (only filled by the flow method).
        metric: "etx" or "eotx" — which ordering was used.
    """

    source: int
    destination: int
    participants: list[int]
    distances: np.ndarray
    z: np.ndarray
    load: np.ndarray
    tx_credit: np.ndarray
    x: dict[tuple[int, int], float] = field(default_factory=dict)
    metric: str = "etx"

    @property
    def total_cost(self) -> float:
        """Total expected transmissions per delivered packet, sum_i z_i."""
        return float(self.z.sum())

    def forwarder_list(self, include_endpoints: bool = False) -> list[int]:
        """Intermediate forwarders ordered by proximity to the destination."""
        if include_endpoints:
            return list(self.participants)
        return [n for n in self.participants if n not in (self.source, self.destination)]


def _metric_distances(topology: Topology, destination: int, metric: str,
                      threshold: float) -> np.ndarray:
    """Distance-to-destination vector under the requested metric."""
    if metric == "etx":
        return etx_to_destination(topology, destination, threshold=threshold)
    if metric == "eotx":
        return eotx_dijkstra(topology, destination, threshold=threshold)
    raise ValueError(f"unknown ordering metric {metric!r}; expected 'etx' or 'eotx'")


def candidate_forwarders(topology: Topology, source: int, destination: int,
                         metric: str = "etx",
                         threshold: float = DEFAULT_LINK_THRESHOLD) -> tuple[list[int], np.ndarray]:
    """Participants of a flow, ordered by increasing distance to the destination.

    Only nodes strictly closer to the destination than the source are useful
    forwarders (Section 3.2.1); the source itself closes the list.

    Returns:
        ``(participants, distances)`` where participants[0] is the
        destination and participants[-1] is the source.
    """
    distances = _metric_distances(topology, destination, metric, threshold)
    if math.isinf(distances[source]):
        raise ValueError(f"source {source} cannot reach destination {destination}")
    members = [
        node for node in range(topology.node_count)
        if node != source and not math.isinf(distances[node])
        and distances[node] < distances[source]
    ]
    members.sort(key=lambda n: (distances[n], n))
    members.append(source)
    if members[0] != destination:
        raise RuntimeError("destination must be the closest participant to itself")
    return members, distances


def expected_transmissions(topology: Topology, source: int, destination: int,
                           metric: str = "etx",
                           threshold: float = DEFAULT_LINK_THRESHOLD) -> TransmissionPlan:
    """Algorithm 1: expected per-node transmission counts ``z_i``.

    Nodes are ordered by increasing distance to the destination under
    ``metric``; packets conceptually flow from the source (position n) down
    the order, and a node forwards a packet only if no node closer to the
    destination heard it.
    """
    participants, distances = candidate_forwarders(topology, source, destination,
                                                   metric=metric, threshold=threshold)
    count = topology.node_count
    eps = topology.loss_matrix()
    order = participants  # order[0] = destination ... order[-1] = source
    n = len(order)
    load = np.zeros(count)
    z = np.zeros(count)
    load[source] = 1.0  # L_n = 1: the source generates the packet.

    # Walk from the source (index n-1) down to index 1; index 0 is the
    # destination which never forwards.
    for position in range(n - 1, 0, -1):
        node = order[position]
        if load[node] <= 0.0:
            continue
        # Probability that at least one strictly closer node hears node's
        # transmission.
        miss_all_closer = 1.0
        for closer_position in range(position):
            miss_all_closer *= eps[node, order[closer_position]]
        success = 1.0 - miss_all_closer
        if success <= 0.0:
            # The node cannot make progress; it is useless as a forwarder.
            z[node] = 0.0
            continue
        z[node] = load[node] / success
        # Distribute node's transmissions onto the loads of closer nodes:
        # node j (position closer_position) must forward the packets it
        # receives from node that no node even closer received.
        miss_closer_prefix = 1.0
        for closer_position in range(1, position):
            closer = order[closer_position]
            miss_closer_prefix *= eps[node, order[closer_position - 1]]
            load[closer] += z[node] * miss_closer_prefix * (1.0 - eps[node, closer])

    credits = tx_credits(topology, order, z)
    return TransmissionPlan(
        source=source,
        destination=destination,
        participants=order,
        distances=distances,
        z=z,
        load=load,
        tx_credit=credits,
        metric=metric,
    )


def tx_credits(topology: Topology, order: list[int], z: np.ndarray) -> np.ndarray:
    """Equation 3.3: transmissions a node makes per packet heard from upstream.

    ``order`` lists participants by increasing distance to the destination;
    "upstream" of a node are the participants that appear after it in the
    order (farther from the destination).  The source has no upstream, so its
    credit is left at zero — MORE clocks the source by batch ACKs instead.
    """
    credits = np.zeros(topology.node_count)
    delivery = topology.delivery_matrix()
    for position, node in enumerate(order):
        if position == len(order) - 1:
            continue  # the source
        expected_received = 0.0
        for upstream_position in range(position + 1, len(order)):
            upstream = order[upstream_position]
            expected_received += z[upstream] * delivery[upstream, node]
        if expected_received > 0.0 and z[node] > 0.0:
            credits[node] = z[node] / expected_received
    return credits


def prune_forwarders(topology: Topology, plan: TransmissionPlan,
                     fraction: float = DEFAULT_PRUNING_FRACTION) -> TransmissionPlan:
    """Drop forwarders whose expected transmissions are below ``fraction`` of the total.

    The source and destination are never pruned.  Credits are recomputed over
    the surviving participants so the run-time behaviour stays consistent, and
    pruned nodes also lose their metric distance (set to ``inf``): the
    returned plan is self-consistent, so a "participant" check keyed off
    finite distances agrees with ``participants`` instead of resurrecting
    pruned forwarders.
    """
    total = plan.z.sum()
    if total <= 0.0:
        return plan
    keep = []
    for node in plan.participants:
        if node in (plan.source, plan.destination):
            keep.append(node)
        elif plan.z[node] >= fraction * total:
            keep.append(node)
    return _restricted_plan(topology, plan, keep)


def cap_forwarders(topology: Topology, plan: TransmissionPlan,
                   max_forwarders: int) -> TransmissionPlan:
    """Keep at most ``max_forwarders`` relays: the highest-load ones.

    This is the deterministic-size counterpart of the 10% rule, mirroring
    the fixed forwarder-list budget of MORE's packet header.  The fraction
    rule degenerates on dense kilonode meshes — the expected load spreads
    over a hundred-plus candidates so *no* relay reaches 10% of the total
    and pruning strands the flow — whereas keeping the ``max_forwarders``
    relays with the largest expected transmission counts ``z_i`` retains
    the backbone that actually carries the traffic.  The source and
    destination are never counted against the cap, credits are recomputed
    over the survivors, and dropped relays lose their metric distance,
    exactly as in :func:`prune_forwarders`.
    """
    if max_forwarders < 0:
        raise ValueError("max_forwarders must be non-negative")
    relays = [node for node in plan.participants
              if node not in (plan.source, plan.destination)]
    if len(relays) <= max_forwarders:
        return plan
    top = set(sorted(relays, key=lambda node: (-plan.z[node], plan.distances[node],
                                               node))[:max_forwarders])
    keep = [node for node in plan.participants
            if node in (plan.source, plan.destination) or node in top]
    return _restricted_plan(topology, plan, keep)


def _restricted_plan(topology: Topology, plan: TransmissionPlan,
                     keep: list[int]) -> TransmissionPlan:
    """Rebuild a plan over the surviving participants ``keep`` (in order)."""
    kept = set(keep)
    pruned_z = plan.z.copy()
    pruned_load = plan.load.copy()
    pruned_distances = plan.distances.copy()
    for node in plan.participants:
        if node not in kept:
            pruned_z[node] = 0.0
            pruned_load[node] = 0.0
            pruned_distances[node] = math.inf
    credits = tx_credits(topology, keep, pruned_z)
    return TransmissionPlan(
        source=plan.source,
        destination=plan.destination,
        participants=keep,
        distances=pruned_distances,
        z=pruned_z,
        load=pruned_load,
        tx_credit=credits,
        x=plan.x,
        metric=plan.metric,
    )


def load_distribution(topology: Topology, source: int, destination: int,
                      threshold: float = DEFAULT_LINK_THRESHOLD) -> TransmissionPlan:
    """Algorithm 6: optimal ``z`` and edge flows ``x`` from the EOTX costs.

    Nodes are processed in decreasing EOTX; each node's unit of load is
    split across cheaper nodes according to the probability that they are
    the cheapest successful recipient ("water filling", Proposition 2).
    """
    participants, distances = candidate_forwarders(topology, source, destination,
                                                   metric="eotx", threshold=threshold)
    count = topology.node_count
    delivery = topology.delivery_matrix()
    order = participants
    n = len(order)
    load = np.zeros(count)
    z = np.zeros(count)
    x: dict[tuple[int, int], float] = {}
    load[source] = 1.0

    for position in range(n - 1, 0, -1):
        node = order[position]
        if load[node] <= 0.0:
            continue
        # q_j = probability at least one of the j cheapest participants
        # receives a transmission from node (independent losses).
        q_previous = 0.0
        shares = []
        for closer_position in range(position):
            closer = order[closer_position]
            p = delivery[node, closer]
            q_current = 1.0 - (1.0 - q_previous) * (1.0 - p)
            shares.append((closer, q_current - q_previous))
            q_previous = q_current
        if q_previous <= 0.0:
            continue
        z[node] = load[node] / q_previous
        for closer, share in shares:
            flow = share * z[node]
            if flow > 0.0:
                x[(node, closer)] = x.get((node, closer), 0.0) + flow
                load[closer] += flow

    credits = tx_credits(topology, order, z)
    return TransmissionPlan(
        source=source,
        destination=destination,
        participants=order,
        distances=distances,
        z=z,
        load=load,
        tx_credit=credits,
        x=x,
        metric="eotx",
    )


def forwarding_plan(topology: Topology, source: int, destination: int,
                    metric: str = "etx", prune: bool = True,
                    pruning_fraction: float = DEFAULT_PRUNING_FRACTION,
                    threshold: float = DEFAULT_LINK_THRESHOLD,
                    max_forwarders: int | None = None) -> TransmissionPlan:
    """Build the forwarder list + credits a MORE source puts in its headers.

    This is Algorithm 1 followed by the 10% pruning rule.  ``metric`` selects
    the ordering: the deployed MORE uses ETX (Section 5.7 notes both
    protocols pre-date EOTX); pass ``"eotx"`` for the theoretically optimal
    ordering.

    ``max_forwarders`` swaps the fraction rule for the fixed-size cap of
    :func:`cap_forwarders` (top-``N`` relays by expected load) — the form
    of pruning that survives kilonode densities, where the 10% rule keeps
    no relay at all.  ``None`` (the default) keeps the fraction rule,
    today's behaviour bit for bit.
    """
    plan = expected_transmissions(topology, source, destination, metric=metric,
                                  threshold=threshold)
    if max_forwarders is not None:
        plan = cap_forwarders(topology, plan, max_forwarders)
    elif prune:
        plan = prune_forwarders(topology, plan, fraction=pruning_fraction)
    return plan
