"""Routing metrics and the Chapter 5 theory: ETX, EOTX, credits, LP, gaps."""

from repro.metrics.credits import (
    DEFAULT_PRUNING_FRACTION,
    TransmissionPlan,
    candidate_forwarders,
    expected_transmissions,
    forwarding_plan,
    load_distribution,
    prune_forwarders,
    tx_credits,
)
from repro.metrics.etx import (
    DEFAULT_LINK_THRESHOLD,
    best_path,
    etx_order,
    etx_to_destination,
    hop_count,
    link_etx,
    path_etx,
)
from repro.metrics.eotx import (
    eotx_bellman_ford,
    eotx_dijkstra,
    eotx_order,
    eotx_recursive,
)
from repro.metrics.gap import (
    GapResult,
    cost_gap,
    figure_5_1_eotx_cost,
    figure_5_1_etx_cost,
    figure_5_1_gap,
    gap_survey,
    summarize_gaps,
)
from repro.metrics.lp import FlowSolution, solve_min_cost_flow, verify_flow_conservation

__all__ = [
    "DEFAULT_LINK_THRESHOLD",
    "DEFAULT_PRUNING_FRACTION",
    "FlowSolution",
    "GapResult",
    "TransmissionPlan",
    "best_path",
    "candidate_forwarders",
    "cost_gap",
    "eotx_bellman_ford",
    "eotx_dijkstra",
    "eotx_order",
    "eotx_recursive",
    "etx_order",
    "etx_to_destination",
    "expected_transmissions",
    "figure_5_1_eotx_cost",
    "figure_5_1_etx_cost",
    "figure_5_1_gap",
    "forwarding_plan",
    "gap_survey",
    "hop_count",
    "link_etx",
    "load_distribution",
    "path_etx",
    "prune_forwarders",
    "solve_min_cost_flow",
    "summarize_gaps",
    "tx_credits",
    "verify_flow_conservation",
]
