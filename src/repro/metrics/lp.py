"""Minimum-cost information flow LP (Section 5.3).

Chapter 5 formulates the problem of delivering one unit of information from
a source to a sink over a lossy broadcast medium as a linear program:

* variables: ``z_i`` (expected transmissions of node ``i``) and ``x_ij``
  (innovative flow from ``i`` to ``j``);
* flow conservation at every node (Eq. 5.1);
* one *cost constraint* per hyper-edge ``(i, K)``:
  ``q_iK * z_i >= sum_{k in K} x_ik`` (Eq. 5.2), where ``q_iK`` is the
  probability that at least one node in ``K`` receives ``i``'s transmission;
* objective: minimise ``sum_i z_i`` (Eq. 5.3).

The number of cost constraints is exponential in the node degree, which is
why the paper's O(n^2) EOTX algorithms matter; this module implements the
*reference* LP (full subset enumeration, independent losses) with
:func:`scipy.optimize.linprog` so that tests can verify Proposition 4:
``EOTX(source) == LP optimum``.

A polynomial-size variant, :func:`solve_min_cost_flow` with
``prefix_constraints_only=True``, keeps only the constraints on the
cheapest-``i`` prefix sets that Propositions 2-3 prove are sufficient.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.metrics.etx import DEFAULT_LINK_THRESHOLD
from repro.metrics.eotx import eotx_dijkstra
from repro.topology.graph import Topology


@dataclass
class FlowSolution:
    """Solution of the min-cost information flow LP.

    Attributes:
        total_cost: optimal objective value, sum of all ``z_i``.
        z: per-node expected transmissions.
        x: dict mapping (sender, receiver) to innovative flow.
        status: scipy solver status string.
    """

    total_cost: float
    z: np.ndarray
    x: dict[tuple[int, int], float]
    status: str


def _neighbor_sets(delivery: np.ndarray, node: int, threshold: float) -> list[int]:
    """Usable receivers of ``node``'s transmissions."""
    return [j for j in range(delivery.shape[0])
            if j != node and delivery[node, j] > threshold]


def _subset_probability(delivery: np.ndarray, node: int, subset: tuple[int, ...]) -> float:
    """q_iK = probability at least one node of ``subset`` receives from ``node``."""
    miss = 1.0
    for receiver in subset:
        miss *= 1.0 - delivery[node, receiver]
    return 1.0 - miss


def solve_min_cost_flow(topology: Topology, source: int, destination: int,
                        demand: float = 1.0,
                        threshold: float = DEFAULT_LINK_THRESHOLD,
                        prefix_constraints_only: bool = False,
                        max_subset_size: int = 12) -> FlowSolution:
    """Solve the Section 5.3 LP for a unicast flow.

    Args:
        topology: the mesh (independent per-receiver losses assumed).
        source: source node id.
        destination: sink node id.
        demand: R, the amount of flow to deliver (the optimum scales
            linearly, Proposition 1).
        threshold: links below this delivery probability are ignored.
        prefix_constraints_only: keep only the cheapest-prefix cost
            constraints (polynomially many), justified by Propositions 2-3.
        max_subset_size: safety limit on the neighbourhood size when
            enumerating all subsets.

    Returns:
        A :class:`FlowSolution`.

    Raises:
        ValueError: if the source cannot reach the destination, or subset
            enumeration would be too large.
    """
    if source == destination:
        raise ValueError("source and destination must differ")
    delivery = topology.delivery_matrix()
    delivery[delivery <= threshold] = 0.0
    count = topology.node_count

    costs = eotx_dijkstra(topology, destination, threshold=threshold)
    if math.isinf(costs[source]):
        raise ValueError(f"source {source} cannot reach destination {destination}")

    # Only nodes that can reach the destination participate.
    participants = [i for i in range(count) if not math.isinf(costs[i])]
    index_of = {node: idx for idx, node in enumerate(participants)}
    n = len(participants)

    # Variable layout: z for each participant (destination's z included but
    # forced to zero flow usefulness), then x_ij for each usable directed link
    # between participants.
    links = [(i, j) for i in participants for j in participants
             if i != j and delivery[i, j] > 0.0]
    link_index = {link: n + idx for idx, link in enumerate(links)}
    variable_count = n + len(links)

    objective = np.zeros(variable_count)
    objective[:n] = 1.0  # minimise sum of z_i

    # Equality constraints: flow conservation at every participant except the
    # destination (its balance is implied by the others).
    a_eq_rows = []
    b_eq = []
    for node in participants:
        if node == destination:
            continue
        row = np.zeros(variable_count)
        for (i, j), col in link_index.items():
            if i == node:
                row[col] += 1.0
            if j == node:
                row[col] -= 1.0
        a_eq_rows.append(row)
        b_eq.append(demand if node == source else 0.0)
    a_eq = np.vstack(a_eq_rows) if a_eq_rows else None

    # Inequality constraints (scipy wants A_ub @ v <= b_ub):
    #   sum_{k in K} x_ik - q_iK * z_i <= 0
    a_ub_rows = []
    for node in participants:
        receivers = [j for j in participants if j != node and delivery[node, j] > 0.0]
        if not receivers:
            continue
        if prefix_constraints_only:
            ordered = sorted(receivers, key=lambda j: (costs[j], j))
            subsets = [tuple(ordered[: size + 1]) for size in range(len(ordered))]
        else:
            if len(receivers) > max_subset_size:
                raise ValueError(
                    f"node {node} has {len(receivers)} usable neighbours; full subset "
                    f"enumeration capped at {max_subset_size} (use prefix_constraints_only)"
                )
            subsets = [
                subset
                for size in range(1, len(receivers) + 1)
                for subset in itertools.combinations(receivers, size)
            ]
        for subset in subsets:
            row = np.zeros(variable_count)
            row[index_of[node]] = -_subset_probability(delivery, node, subset)
            for receiver in subset:
                row[link_index[(node, receiver)]] = 1.0
            a_ub_rows.append(row)
    a_ub = np.vstack(a_ub_rows) if a_ub_rows else None
    b_ub = np.zeros(len(a_ub_rows)) if a_ub_rows else None

    result = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=[(0.0, None)] * variable_count,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")

    z = np.zeros(count)
    for node, idx in index_of.items():
        z[node] = float(result.x[idx])
    flows = {
        link: float(result.x[col])
        for link, col in link_index.items()
        if result.x[col] > 1e-9
    }
    return FlowSolution(total_cost=float(result.fun), z=z, x=flows, status=result.message)


def verify_flow_conservation(solution: FlowSolution, source: int, destination: int,
                             demand: float = 1.0, tolerance: float = 1e-6) -> bool:
    """Check Eq. 5.1 on an LP (or algorithmic) solution."""
    nodes = set()
    for (i, j) in solution.x:
        nodes.add(i)
        nodes.add(j)
    nodes.update({source, destination})
    for node in nodes:
        outflow = sum(f for (i, _j), f in solution.x.items() if i == node)
        inflow = sum(f for (_i, j), f in solution.x.items() if j == node)
        expected = demand if node == source else (-demand if node == destination else 0.0)
        if abs((outflow - inflow) - expected) > tolerance:
            return False
    return True
