"""The EOTX metric (Chapter 5): minimum expected opportunistic transmissions.

EOTX of a node ``s`` with respect to a destination ``t`` is the minimum
expected total number of transmissions (summed over all nodes) needed to
deliver one packet from ``s`` to ``t`` when forwarding follows the
opportunistic rule "of all successful recipients, only the cheapest
forwards".  Chapter 5 proves EOTX equals the optimum of the min-cost
information-flow LP, and gives three ways to compute it, all implemented
here:

* :func:`eotx_recursive` — the literal recursive definition (Eq. 5.14),
  enumerating reception subsets.  Exponential; used only for cross-checks on
  tiny topologies.
* :func:`eotx_bellman_ford` — Algorithms 3 + 4 (Recompute in a
  Bellman–Ford loop), O(n^3) worst case.
* :func:`eotx_dijkstra` — Algorithm 5, the O(n^2) Dijkstra-style algorithm
  for independent losses.  This is the production implementation.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.metrics.etx import DEFAULT_LINK_THRESHOLD
from repro.topology.graph import Topology


def _usable_delivery(topology: Topology, threshold: float) -> np.ndarray:
    """Delivery matrix with sub-threshold links zeroed out."""
    delivery = topology.delivery_matrix()
    delivery[delivery <= threshold] = 0.0
    return delivery


def eotx_dijkstra(topology: Topology, destination: int,
                  threshold: float = DEFAULT_LINK_THRESHOLD) -> np.ndarray:
    """EOTX of every node toward ``destination`` (Algorithm 5).

    The algorithm visits nodes in increasing cost order.  For every still
    open node ``i`` it maintains:

    * ``T[i]`` — the partial numerator ``1 + sum_k p_ik * P_k * d(k)`` over
      already-closed nodes ``k``;
    * ``P[i]`` — the probability that *none* of the closed nodes receives a
      transmission from ``i``.

    so that ``d(i) = T[i] / (1 - P[i])`` once all cheaper nodes are closed,
    which is exactly the closed form (5.15).

    Returns:
        A vector ``d`` with ``d[destination] == 0`` and ``inf`` for nodes
        that cannot reach the destination at all.
    """
    delivery = _usable_delivery(topology, threshold)
    count = topology.node_count
    d = np.full(count, math.inf)
    T = np.ones(count)
    P = np.ones(count)
    d[destination] = 0.0
    open_nodes = set(range(count))
    heap: list[tuple[float, int]] = [(0.0, destination)]
    closed = np.zeros(count, dtype=bool)
    while heap:
        cost, node = heapq.heappop(heap)
        if closed[node] or cost > d[node]:
            continue
        closed[node] = True
        open_nodes.discard(node)
        for i in list(open_nodes):
            p = delivery[i, node]
            if p <= 0.0:
                continue
            T[i] += p * P[i] * d[node]
            P[i] *= 1.0 - p
            if P[i] < 1.0:
                d[i] = T[i] / (1.0 - P[i])
                heapq.heappush(heap, (float(d[i]), i))
    return d


def eotx_bellman_ford(topology: Topology, destination: int,
                      threshold: float = DEFAULT_LINK_THRESHOLD,
                      max_iterations: int | None = None) -> np.ndarray:
    """EOTX via the Bellman–Ford style relaxation (Algorithms 3 and 4)."""
    delivery = _usable_delivery(topology, threshold)
    count = topology.node_count
    d = np.full(count, math.inf)
    d[destination] = 0.0
    iterations = max_iterations if max_iterations is not None else count

    def recompute(node: int, costs: np.ndarray) -> float:
        """Procedure Recompute(i): closed form over nodes cheaper than d(i)."""
        order = sorted(range(count), key=lambda j: (costs[j], j))
        numerator = 1.0
        q_previous = 0.0
        for candidate in order:
            if candidate == node:
                continue
            if math.isinf(costs[candidate]):
                break
            p = delivery[node, candidate]
            # Admit the candidate only if its cost beats our current estimate
            # T / q (the "has better cost, admit as forwarder" rule of
            # Procedure Recompute); once a candidate fails this test every
            # later (costlier) one fails it too.
            if q_previous > 0.0 and numerator / q_previous <= costs[candidate]:
                break
            q_current = 1.0 - (1.0 - q_previous) * (1.0 - p)
            numerator += (q_current - q_previous) * costs[candidate]
            q_previous = q_current
        if q_previous <= 0.0:
            return math.inf
        return numerator / q_previous

    for _ in range(iterations):
        updated = d.copy()
        for node in range(count):
            if node == destination:
                continue
            updated[node] = recompute(node, d)
        if np.allclose(
            np.nan_to_num(updated, posinf=1e18), np.nan_to_num(d, posinf=1e18),
            rtol=1e-12, atol=1e-12
        ):
            d = updated
            break
        d = updated
    return d


def eotx_recursive(topology: Topology, destination: int,
                   threshold: float = DEFAULT_LINK_THRESHOLD) -> np.ndarray:
    """EOTX by direct evaluation of the recursive definition (Eq. 5.14).

    Enumerates all reception subsets of each node's neighbourhood, so it is
    exponential in the maximum degree; intended for cross-validation on
    topologies with at most ~12 usable neighbours per node.
    """
    delivery = _usable_delivery(topology, threshold)
    count = topology.node_count
    # Process nodes in increasing cost order so every min over a reception
    # set only refers to already-final costs; we obtain that order from the
    # Dijkstra implementation and then recompute each cost from scratch via
    # subset enumeration, which keeps the check independent of (5.15).
    reference = eotx_dijkstra(topology, destination, threshold=threshold)
    order = sorted(range(count), key=lambda j: (reference[j], j))
    d = np.full(count, math.inf)
    d[destination] = 0.0
    for node in order:
        if node == destination or math.isinf(reference[node]):
            continue
        neighbors = [j for j in range(count) if delivery[node, j] > 0.0 and not math.isinf(d[j])]
        if not neighbors:
            continue
        if len(neighbors) > 16:
            raise ValueError(
                "eotx_recursive enumerates reception subsets and supports at most 16 "
                f"usable neighbours per node; node {node} has {len(neighbors)}"
            )
        expected_forward_cost = 0.0
        probability_someone_cheaper = 0.0
        for size in range(1, len(neighbors) + 1):
            for subset in itertools.combinations(neighbors, size):
                probability = 1.0
                for j in neighbors:
                    p = delivery[node, j]
                    probability *= p if j in subset else (1.0 - p)
                if probability == 0.0:
                    continue
                best = min(d[j] for j in subset)
                if best < math.inf:
                    expected_forward_cost += probability * best
                    probability_someone_cheaper += probability
        # Condition on at least one cheaper node receiving: the transmitter
        # itself "receives" its own packet, so failed rounds simply repeat.
        if probability_someone_cheaper <= 0.0:
            continue
        d[node] = (1.0 + expected_forward_cost) / probability_someone_cheaper
    return d


def eotx_order(topology: Topology, destination: int,
               threshold: float = DEFAULT_LINK_THRESHOLD) -> list[int]:
    """Nodes sorted by increasing EOTX toward ``destination`` (unreachable omitted)."""
    costs = eotx_dijkstra(topology, destination, threshold=threshold)
    reachable = [i for i in range(topology.node_count) if not math.isinf(costs[i])]
    return sorted(reachable, key=lambda i: (costs[i], i))
