"""Deterministic mobility and link-churn processes (dynamic topologies).

Everything in the paper's evaluation is frozen at t=0: the delivery matrix
never drifts, so forwarder plans computed once can never go stale.  The
paper's own argument — MORE's stateless random coding tolerates imprecise,
*stale* link state better than ExOR's rigid schedule — is only testable when
the topology actually changes under the protocols.  This module provides the
dynamics:

* :class:`RandomWaypoint` — each node repeatedly picks a uniform target in
  the arena, travels to it at a uniform-random speed, pauses, and repeats
  (the classic MANET mobility model).
* :class:`RandomWalk` — each epoch every node takes a step of
  uniform-random speed in a uniform-random direction, reflecting at the
  arena bounds (Brownian-style drift for slow topology ageing).
* :class:`MarkovLinkChurn` — position-free link flapping: every link runs a
  two-state up/down Markov chain on the epoch grid; down links have their
  delivery scaled by ``down_scale``.  This is the model for topologies
  without coordinates (chains, diamonds, random meshes).

Realisations are sampled on a configurable **epoch grid**
(``epoch_length`` seconds per epoch) and are a *pure function of
``(seed, epoch)``*, exactly like the PR 3 channel models: waypoint legs are
drawn from ``default_rng((seed, stream, node, leg))``, random-walk steps
from ``default_rng((seed, stream, epoch))`` and churn flips from a
counter-based SplitMix64 over ``(seed, link, epoch)``.  No draw ever
touches the simulator's main generator, and querying epochs in any order
replays the identical trajectory — which is what keeps back-to-back
protocol runs at one seed on the *same* dynamic topology and parallel
sweep cells bit-identical to serial ones.

Position-based models derive each epoch's delivery matrix from the node
coordinates through the *same* propagation formula the static generators
use (:func:`repro.topology.generator.path_loss_margin_db` +
:func:`~repro.topology.generator.margin_to_delivery`, no shadowing), so a
mesh that stops moving stops changing.  :class:`MarkovLinkChurn` instead
scales the topology's nominal matrix, leaving positions untouched.

A :class:`MobilitySpec` is the declarative form (``kind`` + ``params``)
that rides inside :class:`~repro.scenarios.spec.ScenarioSpec` JSON and the
``repro run/sweep --mobility`` CLI flag; :func:`build_mobility_model`
turns it into a live process (``None`` for a static scenario).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.rng import splitmix64 as _splitmix64
from repro.topology.generator import margin_to_delivery, path_loss_margin_db
from repro.topology.graph import Topology

#: Stream key mixed with the cell seed so mobility randomness is independent
#: of (and cannot perturb) both the simulator's main RNG stream and the
#: channel-model streams.
_MOBILITY_STREAM = 0x0B171E5


@dataclass
class MobilitySpec:
    """Declarative mobility description: ``kind`` plus its parameters.

    Round-trips through dicts/JSON inside a scenario spec.  ``params`` are
    keyword arguments of the model named by ``kind`` (see
    :data:`MOBILITY_MODELS`); an optional ``seed`` param pins the mobility
    RNG stream independently of the cell seed.  ``kind="none"`` is a
    static scenario (today's behaviour, bit for bit).
    """

    kind: str = "none"
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def is_static(self) -> bool:
        """True if this spec describes a static (immobile) topology."""
        return self.kind == "none" and not self.params

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MobilitySpec":
        if "kind" not in data:
            raise ValueError("mobility spec needs a 'kind' field")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


class MobilityModel:
    """A time-varying topology realisation sampled on an epoch grid.

    Subclasses implement :meth:`positions_at` (``None`` for position-free
    models) and :meth:`delivery_at`; both must be pure functions of
    ``(seed, epoch)``.  The medium calls :meth:`bind` once before any query
    and then advances epoch by epoch as simulated time passes.
    """

    kind = "none"

    def __init__(self, seed: int = 0, epoch_length: float = 1.0) -> None:
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        self.seed = int(seed)
        self.epoch_length = float(epoch_length)
        self.topology: Topology | None = None
        self._base: np.ndarray | None = None
        self._coords0: np.ndarray | None = None

    def bind(self, topology: Topology) -> None:
        """Attach the process to a topology; called by the medium once."""
        self.topology = topology
        self._base = topology.delivery_matrix()
        positions = topology.node_positions()
        self._coords0 = None
        if positions is not None:
            coords = np.zeros((len(positions), 3))
            for index, position in enumerate(positions):
                coords[index, :min(len(position), 3)] = position[:3]
            self._coords0 = coords
        self._prepare()

    def _prepare(self) -> None:
        """Subclass hook: build per-node/per-link state after ``bind``."""

    def epoch_of(self, now: float) -> int:
        """The epoch-grid index containing simulated time ``now``."""
        return max(0, int(now / self.epoch_length))

    def positions_at(self, epoch: int) -> np.ndarray | None:
        """Node coordinates at ``epoch`` (``(n, 3)``), or ``None`` if the
        model does not move nodes.  Must not be mutated by the caller."""
        raise NotImplementedError

    def delivery_at(self, epoch: int) -> np.ndarray:
        """The effective delivery matrix at ``epoch`` (not to be mutated)."""
        raise NotImplementedError

    def _bound_base(self) -> np.ndarray:
        """The bound topology's nominal delivery matrix (after :meth:`bind`)."""
        base = self._base
        assert base is not None, "mobility model queried before bind()"
        return base


class _PositionMobility(MobilityModel):
    """Shared machinery of the position-based models.

    The arena is ``[x0, x1] x [y0, y1]``: the initial positions' bounding
    box unless ``area`` pins a ``[0, area]`` square.  Motion is 2-D; any z
    coordinate (building floor) is frozen.  Each epoch's delivery matrix
    comes from the shared log-distance propagation formula evaluated at the
    epoch's coordinates (deterministic — compose with a
    :class:`~repro.sim.channels.DistanceFading` channel for fading on top).
    """

    def __init__(self, seed: int = 0, epoch_length: float = 1.0,
                 area: float | None = None) -> None:
        super().__init__(seed, epoch_length)
        if area is not None and area <= 0:
            raise ValueError("area must be positive")
        self.area = None if area is None else float(area)
        self._delivery_epoch = -1
        self._delivery: np.ndarray | None = None

    def _prepare(self) -> None:
        if self._coords0 is None:
            raise ValueError(
                f"{self.kind} mobility needs node coordinates; this topology "
                "has none (use a grid / indoor_testbed / random_geometric "
                "topology, or the position-free link_churn model)")
        if self.area is not None:
            low = np.zeros(2)
            high = np.full(2, self.area)
        else:
            low = self._coords0[:, :2].min(axis=0)
            high = self._coords0[:, :2].max(axis=0)
            span = np.maximum(high - low, 1.0)
            low, high = low - 0.05 * span, high + 0.05 * span
        self._low, self._high = low, high
        self._delivery_epoch = -1
        self._delivery = None

    @property
    def _coords(self) -> np.ndarray:
        """The bound initial coordinates (:meth:`_prepare` guarantees them)."""
        coords = self._coords0
        assert coords is not None, "position mobility used before bind()"
        return coords

    def positions_at(self, epoch: int) -> np.ndarray:
        # Position models always move nodes; narrows the base class's
        # ``np.ndarray | None`` for delivery_at below.
        raise NotImplementedError

    def delivery_at(self, epoch: int) -> np.ndarray:
        delivery = self._delivery
        if delivery is None or epoch != self._delivery_epoch:
            coords = self.positions_at(epoch)
            deltas = coords[:, None, :] - coords[None, :, :]
            distance = np.sqrt((deltas ** 2).sum(axis=2))
            delivery = margin_to_delivery(path_loss_margin_db(distance))
            np.fill_diagonal(delivery, 0.0)
            self._delivery = delivery
            self._delivery_epoch = epoch
        return delivery


class RandomWaypoint(_PositionMobility):
    """The classic random-waypoint model on the epoch grid.

    Each node's trajectory is a sequence of *legs*: pick a uniform target
    in the arena, travel there at a speed uniform in
    ``[speed_min, speed_max]``, pause for ``pause_time``, repeat.  Leg k of
    node i is drawn from ``default_rng((seed, stream, i, k))``, so the
    whole trajectory — and hence every epoch realisation — is a pure
    function of the seed.

    Args:
        epoch_length: seconds per epoch-grid step.
        speed_min / speed_max: node speed range in m/s.
        pause_time: dwell time at each waypoint, seconds.
        area: side of a ``[0, area]`` square arena (default: the initial
            positions' bounding box).
        seed: mobility RNG stream seed (defaults to the cell seed).
    """

    kind = "random_waypoint"

    def __init__(self, seed: int = 0, epoch_length: float = 1.0,
                 speed_min: float = 0.5, speed_max: float = 2.0,
                 pause_time: float = 0.0, area: float | None = None) -> None:
        super().__init__(seed, epoch_length, area)
        if not 0 < speed_min <= speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_time = float(pause_time)

    def _prepare(self) -> None:
        super()._prepare()
        count = self._coords.shape[0]
        # Per-node leg lists: (p0, p1, travel_time) plus the cumulative
        # end-of-leg times (travel + pause), extended lazily.
        self._legs: list[list[tuple[np.ndarray, np.ndarray, float]]] = \
            [[] for _ in range(count)]
        self._leg_ends: list[list[float]] = [[] for _ in range(count)]
        self._positions_cache: dict[int, np.ndarray] = {}

    def _extend_legs(self, node: int, until: float) -> None:
        legs = self._legs[node]
        ends = self._leg_ends[node]
        while not ends or ends[-1] <= until:
            index = len(legs)
            start = legs[-1][1] if legs else self._coords[node, :2]
            rng = np.random.default_rng((self.seed, _MOBILITY_STREAM, node, index))
            target = rng.uniform(self._low, self._high)
            speed = rng.uniform(self.speed_min, self.speed_max)
            travel = float(np.linalg.norm(target - start)) / speed
            legs.append((start, target, travel))
            ends.append((ends[-1] if ends else 0.0) + travel + self.pause_time)

    def _node_position(self, node: int, t: float) -> np.ndarray:
        self._extend_legs(node, t)
        ends = self._leg_ends[node]
        index = bisect_right(ends, t)
        start, target, travel = self._legs[node][index]
        leg_start = ends[index - 1] if index else 0.0
        elapsed = t - leg_start
        if travel <= 0.0 or elapsed >= travel:
            return target
        return start + (target - start) * (elapsed / travel)

    def positions_at(self, epoch: int) -> np.ndarray:
        cached = self._positions_cache.get(epoch)
        if cached is None:
            t = epoch * self.epoch_length
            coords = self._coords.copy()
            for node in range(coords.shape[0]):
                coords[node, :2] = self._node_position(node, t)
            cached = self._positions_cache[epoch] = coords
        return cached


class RandomWalk(_PositionMobility):
    """Reflected random walk: one uniform-direction step per node per epoch.

    Every epoch each node moves ``speed * epoch_length`` metres (speed
    uniform in ``[speed_min, speed_max]``) in a uniform-random direction,
    reflecting off the arena bounds.  The step field of epoch k is drawn
    from ``default_rng((seed, stream, k))`` for all nodes at once, so the
    trajectory folds deterministically from epoch 0 whatever the query
    order.

    Args:
        epoch_length: seconds per epoch-grid step.
        speed_min / speed_max: node speed range in m/s.
        area: side of a ``[0, area]`` square arena (default: the initial
            positions' bounding box).
        seed: mobility RNG stream seed (defaults to the cell seed).
    """

    kind = "random_walk"

    def __init__(self, seed: int = 0, epoch_length: float = 1.0,
                 speed_min: float = 0.2, speed_max: float = 1.5,
                 area: float | None = None) -> None:
        super().__init__(seed, epoch_length, area)
        if not 0 <= speed_min <= speed_max:
            raise ValueError("need 0 <= speed_min <= speed_max")
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)

    def _prepare(self) -> None:
        super()._prepare()
        self._trajectory: list[np.ndarray] = [self._coords.copy()]

    def positions_at(self, epoch: int) -> np.ndarray:
        trajectory = self._trajectory
        while len(trajectory) <= epoch:
            step_epoch = len(trajectory)
            rng = np.random.default_rng((self.seed, _MOBILITY_STREAM, step_epoch))
            count = self._coords.shape[0]
            angle = rng.uniform(0.0, 2.0 * np.pi, size=count)
            speed = rng.uniform(self.speed_min, self.speed_max, size=count)
            step = (speed * self.epoch_length)[:, None] \
                * np.stack([np.cos(angle), np.sin(angle)], axis=1)
            coords = trajectory[-1].copy()
            moved = coords[:, :2] + step
            # Reflect at the arena bounds (possibly more than once for
            # steps longer than the arena — folded, not clamped).
            span = self._high - self._low
            folded = np.mod(moved - self._low, 2.0 * span)
            coords[:, :2] = self._low + np.where(folded > span,
                                                 2.0 * span - folded, folded)
            trajectory.append(coords)
        return trajectory[epoch]


class MarkovLinkChurn(MobilityModel):
    """Position-free link flapping: per-link up/down chains on the epoch grid.

    Every directed link runs a two-state Markov chain sampled once per
    epoch; the per-epoch transition probabilities are the CTMC exposure
    ``1 - exp(-epoch_length / mean_time)``.  A down link's delivery is the
    nominal (topology) value scaled by ``down_scale``.  Epoch 0 draws each
    link's state from the stationary mix, and the flip draw of
    ``(link, epoch)`` is a counter-based SplitMix64 uniform, so the whole
    realisation is a pure function of the seed regardless of query order.

    Args:
        epoch_length: seconds per epoch-grid step.
        mean_up_time: mean sojourn in the up state, seconds.
        mean_down_time: mean sojourn in the down state, seconds.
        down_scale: delivery multiplier while a link is down (0 = outage).
        symmetric: churn both directions of a link together (default), as
            physical obstructions do.
        seed: mobility RNG stream seed (defaults to the cell seed).
    """

    kind = "link_churn"

    def __init__(self, seed: int = 0, epoch_length: float = 1.0,
                 mean_up_time: float = 5.0, mean_down_time: float = 1.0,
                 down_scale: float = 0.0, symmetric: bool = True) -> None:
        super().__init__(seed, epoch_length)
        if mean_up_time <= 0 or mean_down_time <= 0:
            raise ValueError("state sojourn times must be positive")
        if not 0.0 <= down_scale <= 1.0:
            raise ValueError("down_scale must lie in [0, 1]")
        self.mean_up_time = float(mean_up_time)
        self.mean_down_time = float(mean_down_time)
        self.down_scale = float(down_scale)
        self.symmetric = bool(symmetric)

    def _uniform(self, epoch: int) -> np.ndarray:
        """Counter-based uniforms in [0, 1) for every link at one epoch."""
        key = np.uint64(((self.seed ^ _MOBILITY_STREAM) * 0x9E3779B97F4A7C15)
                        & 0xFFFFFFFFFFFFFFFF)
        mixed = _splitmix64(_splitmix64(self._link_ids + key)
                            + np.uint64(epoch))
        return (mixed >> np.uint64(11)).astype(np.float64) * 2.0 ** -53

    def _prepare(self) -> None:
        count = self._bound_base().shape[0]
        grid_i, grid_j = np.meshgrid(np.arange(count), np.arange(count),
                                     indexing="ij")
        if self.symmetric:
            # Both directions of a pair share one chain (one link id).
            pair_lo = np.minimum(grid_i, grid_j)
            pair_hi = np.maximum(grid_i, grid_j)
            self._link_ids = (pair_lo * count + pair_hi).astype(np.uint64)
        else:
            self._link_ids = (grid_i * count + grid_j).astype(np.uint64)
        total = self.mean_up_time + self.mean_down_time
        self._p_up_stationary = self.mean_up_time / total
        self._p_drop = 1.0 - float(np.exp(-self.epoch_length / self.mean_up_time))
        self._p_recover = 1.0 - float(np.exp(-self.epoch_length
                                             / self.mean_down_time))
        self._state_epoch = -1
        self._up: np.ndarray | None = None
        self._delivery: np.ndarray | None = None
        self._delivery_epoch = -1

    def _advance_to(self, epoch: int) -> np.ndarray:
        if epoch < self._state_epoch:
            # Rare backwards query (e.g. a fresh reader): replay from 0.
            self._state_epoch = -1
        up = self._up
        if self._state_epoch < 0 or up is None:
            up = self._uniform(0) < self._p_up_stationary
            self._state_epoch = 0
        while self._state_epoch < epoch:
            next_epoch = self._state_epoch + 1
            draw = self._uniform(next_epoch)
            flip = np.where(up, draw < self._p_drop, draw < self._p_recover)
            up = up ^ flip
            self._state_epoch = next_epoch
        self._up = up
        return up

    def up_mask(self, epoch: int) -> np.ndarray:
        """Boolean matrix of links that are up at ``epoch``."""
        return self._advance_to(epoch).copy()

    def positions_at(self, epoch: int) -> np.ndarray | None:
        return None  # churn never moves nodes

    def delivery_at(self, epoch: int) -> np.ndarray:
        delivery = self._delivery
        if delivery is None or epoch != self._delivery_epoch:
            up = self._advance_to(epoch)
            scale = np.where(up, 1.0, self.down_scale)
            delivery = self._bound_base() * scale
            self._delivery = delivery
            self._delivery_epoch = epoch
        return delivery


#: Mobility models addressable from a :class:`MobilitySpec`.
MOBILITY_MODELS: dict[str, type[MobilityModel]] = {
    RandomWaypoint.kind: RandomWaypoint,
    RandomWalk.kind: RandomWalk,
    MarkovLinkChurn.kind: MarkovLinkChurn,
}

#: Spec kinds accepted by :func:`build_mobility_model` (``none`` = static).
MOBILITY_KINDS = ("none",) + tuple(sorted(MOBILITY_MODELS))


def build_mobility_model(spec: MobilitySpec | None,
                         seed: int = 0) -> MobilityModel | None:
    """Instantiate the process a spec describes (``None``/static = no motion).

    ``seed`` (normally the cell seed) drives the model's private RNG stream
    unless the spec params pin their own ``seed`` — the same convention as
    the channel models.
    """
    if spec is None or spec.kind == "none":
        if spec is not None and spec.params:
            raise ValueError("mobility kind 'none' accepts no parameters")
        return None
    try:
        cls = MOBILITY_MODELS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown mobility kind {spec.kind!r}; expected one "
                         f"of {MOBILITY_KINDS}") from None
    params = dict(spec.params)
    params.setdefault("seed", int(seed))
    try:
        return cls(**params)
    except TypeError as error:
        # Surface bad `mobility.<param>` overrides as a one-line user error.
        raise ValueError(f"bad parameter for mobility {spec.kind!r}: {error}") \
            from None
