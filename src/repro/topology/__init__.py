"""Wireless mesh topologies: the data model and synthetic generators."""

from repro.topology.estimation import (
    DEFAULT_OPTIMISM_EXPONENT,
    DEFAULT_PROBE_COUNT,
    perfect_estimates,
    probe_estimated_topology,
)
from repro.topology.generator import (
    chain,
    cost_gap_topology,
    diamond,
    grid,
    indoor_testbed,
    random_geometric,
    random_mesh,
    two_hop_relay,
)
from repro.topology.graph import Node, Topology
from repro.topology.mobility import (
    MOBILITY_KINDS,
    MarkovLinkChurn,
    MobilityModel,
    MobilitySpec,
    RandomWalk,
    RandomWaypoint,
    build_mobility_model,
)

__all__ = [
    "DEFAULT_OPTIMISM_EXPONENT",
    "DEFAULT_PROBE_COUNT",
    "MOBILITY_KINDS",
    "MarkovLinkChurn",
    "MobilityModel",
    "MobilitySpec",
    "Node",
    "RandomWalk",
    "RandomWaypoint",
    "Topology",
    "build_mobility_model",
    "chain",
    "cost_gap_topology",
    "diamond",
    "grid",
    "indoor_testbed",
    "perfect_estimates",
    "probe_estimated_topology",
    "random_geometric",
    "random_mesh",
    "two_hop_relay",
]
