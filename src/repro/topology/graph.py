"""Wireless mesh topology model.

A :class:`Topology` captures everything the routing metrics, the theory of
Chapter 5 and the simulator need to know about the network:

* the set of nodes (with optional 2-D/3-D positions, used by the synthetic
  testbed generator and by the interference model);
* the matrix of marginal delivery probabilities ``p[i, j]`` — the probability
  that a single broadcast by ``i`` is successfully received by ``j`` — which
  is the quantity ETX probing measures (Section 3.1.1);
* derived loss probabilities ``eps[i, j] = 1 - p[i, j]`` used by the
  Chapter 3 credit algorithms.

The reception model follows the paper's assumption of *independent*
receptions across receivers (Section 3.2.1, Section 5.5), which the
simulator also honours unless an interference event intervenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Node:
    """A mesh router.

    Attributes:
        node_id: dense integer identifier (index into probability matrices).
        name: human-readable label.
        position: optional (x, y) or (x, y, z) coordinates in metres.
    """

    node_id: int
    name: str = ""
    position: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"n{self.node_id}")


class Topology:
    """A wireless mesh described by per-link delivery probabilities."""

    def __init__(self, delivery: np.ndarray, positions: list[tuple[float, ...]] | None = None,
                 names: list[str] | None = None) -> None:
        matrix = np.asarray(delivery, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("delivery matrix must be square")
        if np.any((matrix < 0) | (matrix > 1)):
            raise ValueError("delivery probabilities must lie in [0, 1]")
        self._delivery = matrix.copy()
        np.fill_diagonal(self._delivery, 0.0)
        count = matrix.shape[0]
        if positions is not None and len(positions) != count:
            raise ValueError("positions length must match node count")
        if names is not None and len(names) != count:
            raise ValueError("names length must match node count")
        self.nodes = [
            Node(
                node_id=i,
                name=names[i] if names else f"n{i}",
                position=tuple(positions[i]) if positions else (),
            )
            for i in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def node_count(self) -> int:
        """Number of nodes in the mesh."""
        return len(self.nodes)

    def delivery_matrix(self) -> np.ndarray:
        """Copy of the full delivery-probability matrix."""
        return self._delivery.copy()

    def node_positions(self) -> list[tuple[float, ...]] | None:
        """Positions of all nodes, or ``None`` unless every node has one.

        The explicit all-nodes check (rather than the truthiness of node
        0's position) is what consumers that *must not* silently lose
        coordinates — estimation, subtopologies, the mobility layer —
        key off: a topology either carries a position for every node or
        none at all.
        """
        positions = [node.position for node in self.nodes]
        if any(position is None or len(position) == 0 for position in positions):
            return None
        return positions

    def delivery(self, sender: int, receiver: int) -> float:
        """Delivery probability from ``sender`` to ``receiver``."""
        return float(self._delivery[sender, receiver])

    def loss(self, sender: int, receiver: int) -> float:
        """Loss probability ``eps`` from ``sender`` to ``receiver``."""
        return 1.0 - float(self._delivery[sender, receiver])

    def loss_matrix(self) -> np.ndarray:
        """Matrix of loss probabilities (diagonal forced to 1)."""
        eps = 1.0 - self._delivery
        np.fill_diagonal(eps, 1.0)
        return eps

    def set_delivery(self, sender: int, receiver: int, probability: float,
                     symmetric: bool = False) -> None:
        """Set the delivery probability of a directed (or symmetric) link."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("delivery probability must lie in [0, 1]")
        if sender == receiver:
            raise ValueError("self links are not allowed")
        self._delivery[sender, receiver] = probability
        if symmetric:
            self._delivery[receiver, sender] = probability

    def neighbors(self, node: int, threshold: float = 0.0) -> list[int]:
        """Nodes reachable from ``node`` with delivery probability > threshold."""
        return [j for j in range(self.node_count)
                if j != node and self._delivery[node, j] > threshold]

    def links(self, threshold: float = 0.0) -> list[tuple[int, int, float]]:
        """All directed links with delivery probability above ``threshold``."""
        result = []
        for i in range(self.node_count):
            for j in range(self.node_count):
                if i != j and self._delivery[i, j] > threshold:
                    result.append((i, j, float(self._delivery[i, j])))
        return result

    # ------------------------------------------------------------------ #
    # Derived statistics (used to calibrate the synthetic testbed)
    # ------------------------------------------------------------------ #

    def link_loss_rates(self, threshold: float = 0.05) -> np.ndarray:
        """Loss rates of all usable links (delivery above ``threshold``)."""
        rates = [1.0 - p for _, _, p in self.links(threshold)]
        return np.asarray(rates, dtype=float)

    def average_loss_rate(self, threshold: float = 0.05) -> float:
        """Mean loss rate over usable links (paper reports about 27%)."""
        rates = self.link_loss_rates(threshold)
        return float(rates.mean()) if rates.size else 0.0

    def connectivity_check(self, threshold: float = 0.05) -> bool:
        """True if the graph of usable links is strongly connected."""
        count = self.node_count
        usable = self._delivery > threshold
        reachable = np.zeros(count, dtype=bool)
        stack = [0]
        reachable[0] = True
        while stack:
            node = stack.pop()
            for nxt in np.nonzero(usable[node])[0]:
                if not reachable[nxt]:
                    reachable[nxt] = True
                    stack.append(int(nxt))
        if not reachable.all():
            return False
        # Reverse direction.
        reachable = np.zeros(count, dtype=bool)
        stack = [0]
        reachable[0] = True
        while stack:
            node = stack.pop()
            for nxt in np.nonzero(usable[:, node])[0]:
                if not reachable[nxt]:
                    reachable[nxt] = True
                    stack.append(int(nxt))
        return bool(reachable.all())

    # ------------------------------------------------------------------ #
    # Reception sampling (used by expectation-free tests)
    # ------------------------------------------------------------------ #

    def sample_receivers(self, sender: int, rng: np.random.Generator) -> list[int]:
        """Sample the set of nodes that receive one broadcast from ``sender``.

        Receptions are independent across receivers per the paper's model.
        """
        draws = rng.random(self.node_count)
        received = np.nonzero(draws < self._delivery[sender])[0]
        return [int(i) for i in received if i != sender]

    def subtopology(self, node_ids: list[int]) -> "Topology":
        """Restrict the topology to the given nodes (relabelled densely)."""
        index = np.asarray(node_ids, dtype=int)
        matrix = self._delivery[np.ix_(index, index)]
        all_positions = self.node_positions()
        positions = [all_positions[i] for i in node_ids] if all_positions else None
        names = [self.nodes[i].name for i in node_ids]
        return Topology(matrix, positions=positions, names=names)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Topology(nodes={self.node_count}, links={len(self.links())})"
