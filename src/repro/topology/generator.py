"""Topology generators.

The paper evaluates MORE on a 20-node, 3-floor indoor testbed whose link
loss rates range from 0 to 60% and average about 27%, with best paths of 1-5
hops (Section 4.1).  We cannot use that physical testbed, so
:func:`indoor_testbed` synthesises a statistically comparable one: nodes are
placed on three office floors and per-link delivery probabilities are derived
from a log-distance path-loss model with log-normal shadowing, then clipped
so the resulting loss statistics match the paper's.

The module also provides the small analytic topologies used throughout the
thesis: the two-hop relay of Figure 1-1, chain/diamond/grid topologies for
unit tests, uniformly random meshes, and the contrived ETX-vs-EOTX gap
topology of Figure 5-1.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology

#: Reference distance (m) at which delivery is essentially perfect.
_REFERENCE_DISTANCE = 5.0
#: Path-loss exponent typical of indoor office environments.
_PATH_LOSS_EXPONENT = 3.3
#: Shadowing standard deviation in dB.
_SHADOWING_SIGMA_DB = 6.0
#: SNR margin (dB) mapped onto delivery probability via a logistic curve.
_SNR_AT_REFERENCE_DB = 26.0
_DELIVERY_LOGISTIC_SCALE = 6.0
#: Floor separation penalty in dB per floor crossed.
_FLOOR_PENALTY_DB = 15.0
#: Best achievable frame delivery probability.  Urban 802.11 deployments see
#: a residual frame loss even on short links (local WLAN interference, the
#: paper reports an average transmission success rate of only 66% on its
#: testbed), so no link is perfect.
_MAX_DELIVERY = 0.90
#: Upper bound of the per-link ambient-interference loss, applied
#: multiplicatively on top of the path-loss model.
_AMBIENT_LOSS_MAX = 0.15
#: Delivery probabilities below this are treated as "no link".
_MIN_DELIVERY = 0.05


def path_loss_margin_db(distance, reference_distance: float = _REFERENCE_DISTANCE,
                        path_loss_exponent: float = _PATH_LOSS_EXPONENT,
                        snr_at_reference_db: float = _SNR_AT_REFERENCE_DB):
    """SNR margin (dB) at ``distance`` under the log-distance model.

    Accepts scalars or arrays.  This is the one propagation formula shared
    by the static generators here and the time-varying
    :class:`repro.sim.channels.DistanceFading` channel model, so a fading
    channel over a generated mesh is consistent with its nominal matrix.
    """
    ratio = np.maximum(distance, 0.1) / reference_distance
    return snr_at_reference_db - 10.0 * path_loss_exponent * np.log10(ratio)


def margin_to_delivery(margin_db, logistic_scale: float = _DELIVERY_LOGISTIC_SCALE,
                       max_delivery: float = _MAX_DELIVERY,
                       min_delivery: float = _MIN_DELIVERY,
                       ambient_factor=1.0):
    """Map an SNR margin to a frame delivery probability (scalar or array).

    Logistic curve, multiplied by any ambient-loss factor, capped at
    ``max_delivery``, with sub-``min_delivery`` links cut to zero — the
    shared tail end of the propagation model above.
    """
    probability = 1.0 / (1.0 + np.exp(-np.asarray(margin_db, dtype=float)
                                      / logistic_scale))
    probability = probability * ambient_factor
    probability = np.minimum(probability, max_delivery)
    return np.where(probability < min_delivery, 0.0, probability)


def _distance_to_delivery(distance: float, floors_crossed: int,
                          rng: np.random.Generator) -> float:
    """Map a link distance (and floor separation) to a delivery probability.

    Log-distance path loss with log-normal shadowing gives an SNR margin,
    which a logistic curve converts into a frame delivery probability; this
    produces the long tail of intermediate-quality links that Roofnet-style
    measurements (and the paper's testbed) report.
    """
    if distance <= 0:
        return 1.0
    shadowing_db = rng.normal(0.0, _SHADOWING_SIGMA_DB)
    margin_db = (path_loss_margin_db(distance)
                 - _FLOOR_PENALTY_DB * floors_crossed + shadowing_db)
    probability = margin_to_delivery(
        margin_db, ambient_factor=1.0 - rng.uniform(0.0, _AMBIENT_LOSS_MAX))
    return float(probability)


def indoor_testbed(node_count: int = 20, floors: int = 3, floor_width: float = 90.0,
                   floor_depth: float = 40.0, seed: int = 7) -> Topology:
    """Generate a synthetic multi-floor indoor testbed.

    Args:
        node_count: number of mesh routers (paper: 20).
        floors: number of building floors (paper: 3).
        floor_width: floor extent along x in metres.
        floor_depth: floor extent along y in metres.
        seed: RNG seed; the default produces a connected topology whose link
            loss statistics match the paper (losses 0-60%, mean about 27%).

    Returns:
        A connected :class:`Topology` with symmetric links and 3-D positions.
    """
    rng = np.random.default_rng(seed)
    positions: list[tuple[float, float, float]] = []
    per_floor = int(np.ceil(node_count / floors))
    for index in range(node_count):
        floor = index // per_floor
        x = rng.uniform(0.0, floor_width)
        y = rng.uniform(0.0, floor_depth)
        z = floor * 4.0
        positions.append((float(x), float(y), float(z)))

    delivery = np.zeros((node_count, node_count), dtype=float)
    for i in range(node_count):
        for j in range(i + 1, node_count):
            xi, yi, zi = positions[i]
            xj, yj, zj = positions[j]
            distance = float(np.hypot(xi - xj, yi - yj))
            floors_crossed = int(round(abs(zi - zj) / 4.0))
            probability = _distance_to_delivery(distance, floors_crossed, rng)
            delivery[i, j] = probability
            delivery[j, i] = probability

    topology = Topology(delivery, positions=positions)
    _ensure_connected(topology, positions, rng)
    return topology


def _ensure_connected(topology: Topology, positions: list[tuple[float, float, float]],
                      rng: np.random.Generator) -> None:
    """Patch in minimum-quality links until the topology is connected.

    Real deployments are connected by construction (operators add relays);
    the synthetic generator occasionally isolates a node, so we join each
    isolated component to its geometrically nearest neighbour with a mid
    quality link rather than re-rolling the whole layout.
    """
    while not topology.connectivity_check():
        count = topology.node_count
        usable = topology.delivery_matrix() > 0.05
        reachable = np.zeros(count, dtype=bool)
        stack = [0]
        reachable[0] = True
        while stack:
            node = stack.pop()
            for nxt in np.nonzero(usable[node] | usable[:, node])[0]:
                if not reachable[nxt]:
                    reachable[nxt] = True
                    stack.append(int(nxt))
        inside = np.nonzero(reachable)[0]
        outside = np.nonzero(~reachable)[0]
        if outside.size == 0:
            break
        best: tuple[float, int, int] | None = None
        for i in outside:
            for j in inside:
                xi, yi, zi = positions[i]
                xj, yj, zj = positions[j]
                distance = float(np.hypot(xi - xj, yi - yj) + abs(zi - zj))
                if best is None or distance < best[0]:
                    best = (distance, int(i), int(j))
        assert best is not None
        probability = float(rng.uniform(0.4, min(0.7, _MAX_DELIVERY)))
        topology.set_delivery(best[1], best[2], probability, symmetric=True)


def random_geometric(node_count: int = 16, area: float = 120.0, seed: int = 0) -> Topology:
    """A random geometric mesh: nodes uniform in an ``area`` × ``area`` square.

    Link qualities come from the same log-distance/shadowing model as
    :func:`indoor_testbed` (single floor), so the loss-rate distribution is
    Roofnet-like rather than uniform; the layout is patched to be connected.
    This is the outdoor-style counterpart of the indoor testbed and the
    topology family used by relay-count/rate studies of MORE.
    """
    if node_count < 2:
        raise ValueError("a mesh needs at least two nodes")
    rng = np.random.default_rng(seed)
    positions = [(float(rng.uniform(0.0, area)), float(rng.uniform(0.0, area)), 0.0)
                 for _ in range(node_count)]
    delivery = np.zeros((node_count, node_count), dtype=float)
    for i in range(node_count):
        for j in range(i + 1, node_count):
            xi, yi, _ = positions[i]
            xj, yj, _ = positions[j]
            distance = float(np.hypot(xi - xj, yi - yj))
            probability = _distance_to_delivery(distance, 0, rng)
            delivery[i, j] = delivery[j, i] = probability
    topology = Topology(delivery, positions=positions)
    _ensure_connected(topology, positions, rng)
    return topology


def two_hop_relay(source_to_relay: float = 1.0, relay_to_destination: float = 1.0,
                  source_to_destination: float = 0.49) -> Topology:
    """The motivating example of Figure 1-1 (src, relay R, dst).

    Node ids: 0 = source, 1 = relay, 2 = destination.  Default probabilities
    reproduce the ETX comparison in Section 2.1.1 (direct-path ETX 1/0.49).
    """
    delivery = np.zeros((3, 3))
    delivery[0, 1] = delivery[1, 0] = source_to_relay
    delivery[1, 2] = delivery[2, 1] = relay_to_destination
    delivery[0, 2] = delivery[2, 0] = source_to_destination
    return Topology(delivery, names=["src", "R", "dst"])


def chain(hops: int, link_delivery: float = 0.8, skip_delivery: float = 0.0) -> Topology:
    """A linear chain of ``hops`` links (hops+1 nodes).

    Node 0 is the source end, node ``hops`` the destination end.  If
    ``skip_delivery`` is non-zero every two-hop-apart pair also gets a direct
    (weaker) link, modelling the "skipping hops" scenario of Figure 2-1(a).
    """
    if hops < 1:
        raise ValueError("a chain needs at least one hop")
    count = hops + 1
    delivery = np.zeros((count, count))
    for i in range(hops):
        delivery[i, i + 1] = delivery[i + 1, i] = link_delivery
    if skip_delivery > 0:
        for i in range(count - 2):
            delivery[i, i + 2] = delivery[i + 2, i] = skip_delivery
    return Topology(delivery)


def diamond(source_to_relays: float = 0.5, relays_to_destination: float = 0.5,
            relay_count: int = 2, direct: float = 0.0) -> Topology:
    """Source -> {relays} -> destination, the multi-forwarder scenario of Fig 2-1(b).

    Node 0 is the source, nodes 1..relay_count are relays, the last node is
    the destination.
    """
    if relay_count < 1:
        raise ValueError("need at least one relay")
    count = relay_count + 2
    destination = count - 1
    delivery = np.zeros((count, count))
    for relay in range(1, relay_count + 1):
        delivery[0, relay] = delivery[relay, 0] = source_to_relays
        delivery[relay, destination] = delivery[destination, relay] = relays_to_destination
    if direct > 0:
        delivery[0, destination] = delivery[destination, 0] = direct
    return Topology(delivery)


def grid(rows: int, cols: int, link_delivery: float = 0.7,
         diagonal_delivery: float = 0.3) -> Topology:
    """A rows x cols grid mesh with optional diagonal links."""
    count = rows * cols
    delivery = np.zeros((count, count))
    positions = []
    spacing = 10.0
    for r in range(rows):
        for c in range(cols):
            positions.append((c * spacing, r * spacing, 0.0))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                right = node + 1
                delivery[node, right] = delivery[right, node] = link_delivery
            if r + 1 < rows:
                down = node + cols
                delivery[node, down] = delivery[down, node] = link_delivery
            if diagonal_delivery > 0 and c + 1 < cols and r + 1 < rows:
                diag = node + cols + 1
                delivery[node, diag] = delivery[diag, node] = diagonal_delivery
            if diagonal_delivery > 0 and c > 0 and r + 1 < rows:
                diag = node + cols - 1
                delivery[node, diag] = delivery[diag, node] = diagonal_delivery
    return Topology(delivery, positions=positions)


def random_mesh(node_count: int, density: float = 0.4, seed: int = 0,
                min_delivery: float = 0.1, max_delivery: float = 1.0) -> Topology:
    """A random symmetric mesh; each pair is linked with probability ``density``.

    Link qualities are uniform in [min_delivery, max_delivery].  The result
    is re-rolled until connected (bounded number of attempts).
    """
    rng = np.random.default_rng(seed)
    for _ in range(200):
        delivery = np.zeros((node_count, node_count))
        for i in range(node_count):
            for j in range(i + 1, node_count):
                if rng.random() < density:
                    quality = rng.uniform(min_delivery, max_delivery)
                    delivery[i, j] = delivery[j, i] = quality
        topology = Topology(delivery)
        if node_count <= 1 or topology.connectivity_check(threshold=min_delivery / 2):
            return topology
    raise RuntimeError("failed to generate a connected random mesh; raise density")


def cost_gap_topology(bridge_delivery: float = 0.1, branch_count: int = 8) -> Topology:
    """The Figure 5-1 topology proving the ETX-vs-EOTX gap is unbounded.

    Layout (node ids):

    * 0 — source
    * 1 — node A (perfect link to destination, lossy link from source)
    * 2 — node B (perfect link from source, lossy links to the C branch)
    * 3 .. 2+branch_count — nodes C_1..C_k (perfect links to destination)
    * last — destination

    The source reaches A with probability ``p`` (the ``bridge_delivery``
    parameter) and B with probability 1.  B reaches each C_i with
    probability ``p``; each C_i reaches the destination with probability 1;
    A reaches the destination with probability 1.  ETX ranks B as far from
    the destination as the source (ETX = 1/p + 1), so ETX-ordered forwarding
    can only use A, costing 1/p + 1 transmissions, while EOTX-ordered
    forwarding goes through B at a cost of 1/(1-(1-p)^k) + 2.
    """
    if not 0 < bridge_delivery < 1:
        raise ValueError("bridge_delivery must lie strictly between 0 and 1")
    if branch_count < 1:
        raise ValueError("need at least one branch node")
    count = 3 + branch_count + 1
    destination = count - 1
    source, node_a, node_b = 0, 1, 2
    delivery = np.zeros((count, count))
    delivery[source, node_a] = delivery[node_a, source] = bridge_delivery
    delivery[source, node_b] = delivery[node_b, source] = 1.0
    delivery[node_a, destination] = delivery[destination, node_a] = 1.0
    for branch in range(branch_count):
        node_c = 3 + branch
        delivery[node_b, node_c] = delivery[node_c, node_b] = bridge_delivery
        delivery[node_c, destination] = delivery[destination, node_c] = 1.0
    names = ["src", "A", "B"] + [f"C{i + 1}" for i in range(branch_count)] + ["dst"]
    return Topology(delivery, names=names)
