"""Link-quality estimation as seen by the routing control plane.

The data plane of the simulator uses the *true* per-link delivery
probabilities of 1500-byte data frames.  Routing protocols, however, never
see those: they see ETX estimates derived from periodic probe frames
(Section 3.1.1 — "nodes periodically ping each other and estimate the
delivery probability on each link"; Section 4.1.2 — a 10-minute ETX
measurement phase feeds all three protocols).

Probe frames are short and sent at the base rate, so they experience a lower
frame error rate than long data frames sent at 5.5 or 11 Mb/s; probe windows
are also finite, so the estimates carry sampling noise.  Both effects are
modelled here:

* **Optimism** — a data frame of ``data_bits`` survives roughly
  ``p_bit^data_bits``; a probe of ``probe_bits`` survives
  ``p_bit^probe_bits``; hence ``p_probe = p_data ** (probe_bits/data_bits)``
  (independent bit errors).  The control plane therefore sees
  ``p_data ** optimism_exponent`` with ``optimism_exponent < 1``.
* **Sampling noise** — the estimate is formed from ``probe_count``
  Bernoulli trials of the probe delivery probability.

This asymmetry is the heart of the paper's motivation: a best-path protocol
commits to one nexthop based on these optimistic estimates and pays for
every mis-estimate with retransmissions, while opportunistic protocols use
whichever receptions actually happen.  Experiments can disable either effect
to quantify its contribution (the ablation benchmark does exactly that).
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology

#: Default ratio of probe-frame airtime to data-frame airtime used to derive
#: the optimism exponent: ETX probes are small control frames at the base
#: rate while data frames are 1500 B at 5.5/11 Mb/s.
DEFAULT_OPTIMISM_EXPONENT = 0.45

#: Number of probes in the measurement window (10 minutes at ~1 probe/6 s).
DEFAULT_PROBE_COUNT = 100


def probe_estimated_topology(topology: Topology,
                             optimism_exponent: float = DEFAULT_OPTIMISM_EXPONENT,
                             probe_count: int = DEFAULT_PROBE_COUNT,
                             seed: int | tuple[int, ...] = 0) -> Topology:
    """The topology as the routing control plane believes it to be.

    Args:
        topology: ground-truth data-frame delivery probabilities.
        optimism_exponent: exponent applied to the true probability to model
            probes seeing a lower error rate than data frames (1.0 = probes
            behave exactly like data frames, i.e. a perfectly informed
            control plane).
        probe_count: probes per link in the measurement window; 0 disables
            sampling noise.
        seed: RNG seed for the sampling noise.

    Returns:
        A new :class:`Topology` with the estimated delivery probabilities.
    """
    if not 0.0 < optimism_exponent <= 1.0:
        raise ValueError("optimism_exponent must lie in (0, 1]")
    if probe_count < 0:
        raise ValueError("probe_count must be non-negative")
    rng = np.random.default_rng(seed)
    true_delivery = topology.delivery_matrix()
    probe_delivery = np.where(true_delivery > 0.0,
                              true_delivery ** optimism_exponent, 0.0)
    if probe_count > 0:
        successes = rng.binomial(probe_count, np.clip(probe_delivery, 0.0, 1.0))
        estimated = successes / probe_count
        # A link never observed to deliver a probe is invisible to routing.
        estimated[probe_delivery <= 0.0] = 0.0
    else:
        estimated = probe_delivery
    # Carry positions iff every node has one (an explicit all-nodes check:
    # truthiness of node 0's position alone silently dropped coordinates,
    # which the mobility layer depends on surviving estimation).
    positions = topology.node_positions()
    names = [node.name for node in topology.nodes]
    return Topology(estimated, positions=positions, names=names)


def perfect_estimates(topology: Topology) -> Topology:
    """A control-plane view identical to the ground truth (ablation baseline)."""
    return probe_estimated_topology(topology, optimism_exponent=1.0, probe_count=0)
