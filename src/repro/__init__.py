"""repro: a reproduction of MORE (Trading Structure for Randomness in
Wireless Opportunistic Routing, SIGCOMM 2007).

The package provides:

* :mod:`repro.gf` — GF(2^8) arithmetic with the paper's 64 KiB lookup table;
* :mod:`repro.coding` — intra-flow random linear network coding;
* :mod:`repro.topology` — mesh topologies including a synthetic stand-in for
  the paper's 20-node indoor testbed;
* :mod:`repro.metrics` — ETX, EOTX, transmission credits and the Chapter 5
  min-cost flow theory;
* :mod:`repro.sim` — a discrete-event 802.11 substrate (CSMA/CA, losses,
  collisions, capture, spatial reuse);
* :mod:`repro.protocols` — MORE, ExOR and Srcr agents running on that
  substrate;
* :mod:`repro.experiments` — workloads and harnesses reproducing every table
  and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
