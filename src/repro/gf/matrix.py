"""Matrix algebra over GF(2^8).

The destination in MORE decodes a batch by inverting the K x K matrix of
code vectors (Section 3.1.3).  Forwarders never invert matrices; they only
need rank / linear-independence checks, which live in
:mod:`repro.coding.buffer`.  This module provides the general-purpose matrix
routines used by the decoder and by tests:

* ``row_reduce`` — Gaussian elimination to (reduced) row-echelon form,
* ``rank`` — matrix rank over the field,
* ``invert`` — matrix inverse (raises if singular),
* ``solve`` — solve ``A x = B`` for ``x``,
* ``is_invertible`` — convenience predicate.

All matrices are numpy ``uint8`` arrays interpreted element-wise as field
elements.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import scale_and_add, vec_scale
from repro.gf.tables import INV


class SingularMatrixError(ValueError):
    """Raised when attempting to invert or solve with a singular matrix."""


def _as_field_matrix(matrix: np.ndarray) -> np.ndarray:
    """Validate and copy the input as a 2-D uint8 matrix."""
    array = np.asarray(matrix, dtype=np.uint8)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {array.shape}")
    return array.copy()


def row_reduce(matrix: np.ndarray, reduced: bool = True) -> tuple[np.ndarray, list[int]]:
    """Gaussian-eliminate ``matrix`` over GF(2^8).

    Args:
        matrix: 2-D array of field elements.
        reduced: if True produce reduced row-echelon form (pivots are 1 and
            are the only non-zero entry in their column); otherwise stop at
            row-echelon form.

    Returns:
        A tuple ``(echelon, pivot_columns)`` where ``echelon`` is the
        eliminated matrix and ``pivot_columns`` lists the column index of
        each pivot row in order.
    """
    work = _as_field_matrix(matrix)
    rows, cols = work.shape
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a row at or below pivot_row with a non-zero entry in col.
        candidates = np.nonzero(work[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        swap = pivot_row + int(candidates[0])
        if swap != pivot_row:
            work[[pivot_row, swap]] = work[[swap, pivot_row]]
        # Normalise the pivot row so the pivot is 1.
        pivot_value = int(work[pivot_row, col])
        if pivot_value != 1:
            work[pivot_row] = vec_scale(work[pivot_row], int(INV[pivot_value]))
        # Eliminate the pivot column from the other rows.
        start = 0 if reduced else pivot_row + 1
        for row in range(start, rows):
            if row == pivot_row:
                continue
            factor = int(work[row, col])
            if factor:
                scale_and_add(work[row], work[pivot_row], factor)
        pivot_columns.append(col)
        pivot_row += 1
    return work, pivot_columns


def rank(matrix: np.ndarray) -> int:
    """Return the rank of ``matrix`` over GF(2^8)."""
    _, pivots = row_reduce(matrix, reduced=False)
    return len(pivots)


def is_invertible(matrix: np.ndarray) -> bool:
    """Return True if the square matrix is invertible over GF(2^8)."""
    array = np.asarray(matrix, dtype=np.uint8)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    return rank(array) == array.shape[0]


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2^8).

    ``rhs`` may be a vector or a matrix whose rows correspond to the rows of
    ``matrix`` (this is how the decoder recovers native packets: the rhs rows
    are the coded payloads).

    Raises:
        SingularMatrixError: if ``matrix`` is singular.
    """
    a = _as_field_matrix(matrix)
    b = np.asarray(rhs, dtype=np.uint8)
    vector_rhs = b.ndim == 1
    if vector_rhs:
        b = b.reshape(-1, 1)
    if a.shape[0] != a.shape[1]:
        raise ValueError("solve requires a square coefficient matrix")
    if a.shape[0] != b.shape[0]:
        raise ValueError("rhs row count must match the coefficient matrix")
    augmented = np.concatenate([a, b.copy()], axis=1)
    echelon, pivots = row_reduce(augmented, reduced=True)
    if len(pivots) < a.shape[0] or any(p >= a.shape[1] for p in pivots):
        raise SingularMatrixError("coefficient matrix is singular over GF(2^8)")
    solution = echelon[:, a.shape[1]:]
    return solution[:, 0] if vector_rhs else solution


def invert(matrix: np.ndarray) -> np.ndarray:
    """Return the inverse of a square matrix over GF(2^8).

    Raises:
        SingularMatrixError: if the matrix is singular.
    """
    a = _as_field_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError("only square matrices can be inverted")
    identity = np.eye(a.shape[0], dtype=np.uint8)
    return solve(a, identity)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Delegates to the vectorized :func:`repro.gf.kernels.gf_matmul`; kept
    here so callers of the matrix API need not know about the kernel layer.
    """
    from repro.gf.kernels import gf_matmul

    return gf_matmul(a, b)
