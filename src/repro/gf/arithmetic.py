"""Scalar and vectorised arithmetic over GF(2^8).

Two layers are provided:

* scalar helpers (``add``, ``mul``, ``div``, ``inv``, ``pow``) operating on
  Python ints, used by the matrix code and in tests;
* vectorised kernels operating on numpy ``uint8`` arrays, used on packet
  payloads, where a 1500-byte packet is a vector of 1500 field elements.

The vector kernels implement exactly the operations MORE performs per packet:
multiply a payload by a coefficient and XOR-accumulate it into a buffer
(``scale_and_add``), which is the inner loop of both coding and decoding.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import EXP, FIELD_SIZE, INV, LOG, MUL


def add(a: int, b: int) -> int:
    """Add two field elements (addition in GF(2^8) is XOR)."""
    return (a ^ b) & 0xFF


def sub(a: int, b: int) -> int:
    """Subtract two field elements (identical to addition in GF(2^8))."""
    return (a ^ b) & 0xFF


def mul(a: int, b: int) -> int:
    """Multiply two field elements via the product table."""
    return int(MUL[a & 0xFF, b & 0xFF])


def inv(a: int) -> int:
    """Return the multiplicative inverse of ``a``.

    Raises:
        ZeroDivisionError: if ``a`` is zero.
    """
    if a & 0xFF == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
    return int(INV[a & 0xFF])


def div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` in the field."""
    if b & 0xFF == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a & 0xFF == 0:
        return 0
    return int(EXP[(LOG[a & 0xFF] - LOG[b & 0xFF]) % (FIELD_SIZE - 1)])


def power(a: int, exponent: int) -> int:
    """Raise a field element to an integer power."""
    a &= 0xFF
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    log_total = (int(LOG[a]) * exponent) % (FIELD_SIZE - 1)
    return int(EXP[log_total])


def vec_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition of two byte vectors."""
    return np.bitwise_xor(a, b)


def vec_scale(vector: np.ndarray, coefficient: int) -> np.ndarray:
    """Multiply every element of ``vector`` by the scalar ``coefficient``.

    This is a single row lookup in the 64 KiB product table, mirroring the
    paper's implementation trick.
    """
    coefficient &= 0xFF
    if coefficient == 0:
        return np.zeros_like(vector)
    if coefficient == 1:
        return vector.copy()
    return MUL[coefficient][vector]


def scale_and_add(accumulator: np.ndarray, vector: np.ndarray, coefficient: int) -> None:
    """In-place ``accumulator ^= coefficient * vector``.

    This is the hot loop of coding, pre-coding and decoding.  The
    accumulator is modified in place so forwarders can maintain their
    pre-coded packet incrementally (Section 3.2.3(c)).
    """
    coefficient &= 0xFF
    if coefficient == 0:
        return
    if coefficient == 1:
        np.bitwise_xor(accumulator, vector, out=accumulator)
        return
    np.bitwise_xor(accumulator, MUL[coefficient][vector], out=accumulator)


def vec_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise product of two byte vectors."""
    return MUL[a, b]


#: count -> bytes(count); the all-zero images used by the degenerate-draw
#: guard (a raw-bytes compare is ~10x cheaper than ndarray.any() at K<=128).
_ZERO_BYTES: dict[int, bytes] = {}


def _zero_bytes(count: int) -> bytes:
    zero = _ZERO_BYTES.get(count)
    if zero is None:
        zero = _ZERO_BYTES[count] = bytes(count)
    return zero


def random_coefficients(count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` random field elements uniformly from GF(2^8).

    Zero coefficients are allowed, matching random linear network coding:
    the probability that a whole code vector is degenerate is negligible for
    the batch sizes MORE uses (K >= 8).
    """
    return rng.integers(0, FIELD_SIZE, size=count, dtype=np.uint8)


def random_nonzero_coefficient(rng: np.random.Generator) -> int:
    """Draw a single non-zero random field element."""
    return int(rng.integers(1, FIELD_SIZE))


def random_code_vector(count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a random code vector, re-drawing the degenerate all-zero one.

    Individual zero coefficients are allowed (they are in random linear
    network coding), but an all-zero vector would produce a packet that
    carries no information, so it is re-drawn.  This is the single guard
    shared by the source encoder (coefficients over native packets) and the
    forwarder encoder (combination coefficients over buffered packets).
    """
    zero = _zero_bytes(count)
    coefficients = rng.integers(0, FIELD_SIZE, size=count, dtype=np.uint8)
    while coefficients.tobytes() == zero:
        coefficients = rng.integers(0, FIELD_SIZE, size=count, dtype=np.uint8)
    return coefficients
