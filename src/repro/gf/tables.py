"""Lookup tables for GF(2^8) arithmetic.

MORE performs all network-coding arithmetic in the finite field GF(2^8)
(one field element per payload byte).  Section 4.6(a) of the paper explains
that the implementation keeps a 64 KiB table of all 256x256 byte products so
that multiplying a packet by a random coefficient reduces to table lookups.
This module builds exactly those tables once at import time:

``EXP`` / ``LOG``
    Discrete exponential / logarithm with respect to the generator 0x03 of
    the multiplicative group, used to derive the other tables and for scalar
    inverse computation.

``MUL``
    The full 256x256 product table (numpy ``uint8``), i.e. the paper's
    64 KiB lookup table.  ``MUL[a, b] == gf_mul(a, b)``.

``INV``
    Multiplicative inverses; ``INV[0]`` is defined as 0 and never used by
    callers that respect field semantics.

The reducing polynomial is the AES polynomial x^8 + x^4 + x^3 + x + 1
(0x11B).  Any primitive polynomial works for network coding; we pick the
conventional one so the tables can be validated against well-known vectors.
"""

from __future__ import annotations

import numpy as np

#: Order of the field (number of elements).
FIELD_SIZE = 256

#: Reducing polynomial for GF(2^8): x^8 + x^4 + x^3 + x + 1.
REDUCING_POLYNOMIAL = 0x11B

#: Generator of the multiplicative group used to build EXP/LOG.
GENERATOR = 0x03


def _carryless_multiply(a: int, b: int) -> int:
    """Multiply two field elements bit-by-bit, reducing modulo the polynomial.

    This is the slow reference implementation used only to build the lookup
    tables and in tests that validate them.
    """
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= REDUCING_POLYNOMIAL
    return result & 0xFF


def _build_exp_log() -> tuple[np.ndarray, np.ndarray]:
    """Build exponential and logarithm tables for the generator."""
    exp = np.zeros(FIELD_SIZE * 2, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x = _carryless_multiply(x, GENERATOR)
    # Duplicate the table so EXP[log a + log b] never needs a modulo.
    for i in range(FIELD_SIZE - 1, FIELD_SIZE * 2):
        exp[i] = exp[i - (FIELD_SIZE - 1)]
    return exp, log


def _build_mul_table(exp: np.ndarray, log: np.ndarray) -> np.ndarray:
    """Build the full 256x256 product table (the paper's 64 KiB table)."""
    table = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
    a = np.arange(1, FIELD_SIZE)
    b = np.arange(1, FIELD_SIZE)
    log_a = log[a][:, None]
    log_b = log[b][None, :]
    table[1:, 1:] = exp[log_a + log_b]
    return table


def _build_inverse_table(exp: np.ndarray, log: np.ndarray) -> np.ndarray:
    """Build the multiplicative-inverse table (0 maps to 0)."""
    inv = np.zeros(FIELD_SIZE, dtype=np.uint8)
    for a in range(1, FIELD_SIZE):
        inv[a] = exp[(FIELD_SIZE - 1) - log[a]]
    return inv


EXP, LOG = _build_exp_log()
MUL = _build_mul_table(EXP, LOG)
INV = _build_inverse_table(EXP, LOG)

#: Size in bytes of the product table, reported for the memory-overhead
#: discussion in Section 4.6(b) of the paper (64 KiB).
MUL_TABLE_BYTES = MUL.nbytes
