"""Vectorized batch-coding kernels over GF(2^8).

The scalar helpers in :mod:`repro.gf.arithmetic` operate one coefficient at
a time, which forces every encoder and buffer to run a K-iteration Python
loop per packet.  These kernels lift the arithmetic to whole matrices so
that coding N packets, pre-coding over a forwarder's buffer, or reducing a
vector against a stored row-echelon matrix is a handful of numpy array
operations:

``gf_matmul``
    ``C = A @ B`` over the field: the workhorse.  Encoding N packets of a
    K-packet batch is one ``(N, K) @ (K, S)`` product; reducing an incoming
    vector against stored pivot rows is a ``(1, r) @ (r, K)`` product.

``ShiftedRows``
    A cacheable expansion of a right operand for repeated products against
    the *same* matrix (the source encoder codes thousands of packets over
    one fixed batch).  See below for the formulation.

``gf_outer``
    Outer product ``column[:, None] * row[None, :]`` — the rank-1 update
    used when a new pivot is eliminated from every stored row at once.

``scale_rows`` / ``scale_and_add_rows``
    Row-wise scaling by a coefficient per row, plain and XOR-accumulating —
    the batched form of :func:`repro.gf.arithmetic.scale_and_add`.

``gf_vecmat_nibble`` / ``gf_vecmat_logexp``
    Alternative formulations of the elimination inner loop, selectable per
    buffer through :data:`VECMAT_KERNELS` (see
    :class:`repro.coding.buffer.BatchBuffer`'s ``kernel`` argument).  All
    three produce bit-identical results — GF(2^8) arithmetic is exact — so
    the choice is purely a performance trade-off; see the table-size notes
    on each kernel and docs/performance.md for the measured crossovers.

All kernels are exact: GF(2^8) arithmetic has no rounding, so the
vectorized results are bit-identical to the scalar loops they replace
(the differential tests in ``tests/coding`` assert exactly that).

Two formulations are used, picked by operand shape:

* **LOG/EXP gather** (small products): ``a * b = EXP[LOG[a] + LOG[b]]``
  with a sentinel logarithm for zero, evaluated as one broadcast gather
  into a 2 KiB table that stays resident in L1.  This beats the 64 KiB
  product table for the ``(1, r) @ (r, K)`` reductions on the hot
  receive path, where building any per-operand structure would dominate.

* **XOR of shifted rows** (large products): multiplication by a field
  element is GF(2)-linear, so ``c * row`` is the XOR of ``x^j * row`` over
  the set bits ``j`` of ``c``.  Stacking the eight polynomial shifts of
  every row of ``B`` once turns each output row into an XOR-reduce of
  ~4K selected rows, processed eight bytes at a time through a ``uint64``
  view — roughly an order of magnitude faster than per-byte table lookups
  for batch-sized products, and the stack is cacheable across calls
  (:class:`ShiftedRows`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gf.tables import EXP, FIELD_SIZE, LOG, MUL

#: The calling convention every elimination kernel shares:
#: ``(vector, matrix) -> vector @ matrix`` over GF(2^8).
VecmatKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Upper bound on the intermediate (rows, k, s) tensors of the gather path.
_CHUNK_BYTES = 1 << 23  # 8 MiB

#: Sentinel "logarithm of zero": any sum involving it lands in the zero
#: region of the padded antilog table, so zero operands multiply to zero
#: without masking.
_LOG_ZERO = 1024

#: int16 log table with the zero sentinel.
_LOG16 = np.full(FIELD_SIZE, _LOG_ZERO, dtype=np.int16)
_LOG16[1:] = LOG[1:].astype(np.int16)

#: Antilog table padded so indices up to 2 * _LOG_ZERO resolve (to zero
#: beyond the genuine 510 exponent entries).
_EXP_PAD = np.zeros(2 * _LOG_ZERO + 1, dtype=np.uint8)
_EXP_PAD[:510] = EXP[:510]

#: Reducing polynomial reduced to uint16 work width (x^8 := 0x1B after the
#: overflow bit is dropped).
_POLY_LOW = 0x11B


def _as_matrix(array: np.ndarray, name: str) -> np.ndarray:
    matrix = np.asarray(array, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {matrix.shape}")
    return matrix


def _matmul_gather(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """LOG/EXP formulation: one broadcast gather into the padded antilog."""
    n, k = left.shape
    s = right.shape[1]
    result = np.zeros((n, s), dtype=np.uint8)
    log_right = _LOG16[right]
    rows_per_chunk = max(1, _CHUNK_BYTES // max(1, 2 * k * s))
    for start in range(0, n, rows_per_chunk):
        stop = min(start + rows_per_chunk, n)
        exponents = _LOG16[left[start:stop, :, None]] + log_right[None, :, :]
        np.bitwise_xor.reduce(_EXP_PAD[exponents], axis=1,
                              out=result[start:stop])
    return result


def _xtimes(matrix: np.ndarray) -> np.ndarray:
    """Multiply every element by x (the generator polynomial shift)."""
    wide = matrix.astype(np.uint16)
    return (((wide << 1) ^ ((wide >> 7) * _POLY_LOW)) & 0xFF).astype(np.uint8)


class ShiftedRows:
    """The stacked-shifted-rows expansion of a right operand ``B``.

    For each row ``k`` of ``B`` the eight products ``x^j * B[k]`` are
    precomputed and stacked (row ``8 k + j``).  ``c * B[k]`` is then the
    XOR of the stacked rows selected by the set bits of ``c``, and a full
    ``(N, K) @ B`` product is one XOR-reduce per output row over a
    ``uint64`` view of the stack — no table gathers at all.

    Build once per right operand and reuse: the source encoder keeps one
    instance per batch, so each coded packet costs a single reduce.
    """

    #: Row widths up to this use the cached-log gather for single-vector
    #: products (measured crossover: the gather wins below ~64 bytes, the
    #: uint64 stack XOR wins for full 1500-byte payloads).
    VEC_GATHER_MAX_WIDTH = 64

    def __init__(self, matrix: np.ndarray) -> None:
        rows = _as_matrix(matrix, "matrix")
        self.k, self.s = rows.shape
        # Pad the row width to a multiple of 8 so the stack can be viewed
        # as uint64 words.
        padded = (self.s + 7) // 8 * 8
        self._stack = np.zeros((self.k * 8, padded), dtype=np.uint8)
        shifted = rows
        for j in range(8):
            self._stack[j::8, : self.s] = shifted
            if j < 7:
                shifted = _xtimes(shifted)
        self._words = self._stack.view(np.uint64) if padded else None
        # Original operand rows, kept for the narrow single-vector products
        # of the per-transmission encode path (one MUL-table gather beats
        # the stacked XOR below ~64-byte rows; wide operands never use it).
        self._rows: np.ndarray | None = None
        if self.s and self.s <= self.VEC_GATHER_MAX_WIDTH:
            self._rows = rows

    def vecmul(self, vector: np.ndarray) -> np.ndarray:
        """``vector @ B`` for one 1-D coefficient vector (hot encode path).

        Bit-identical to ``matmul(vector[None, :])[0]``; narrow operands
        take one MUL-table gather plus one XOR-reduce (no per-call operand
        prep), wide ones the stacked-XOR formulation.
        """
        rows = self._rows
        if rows is None:
            return self.matmul(vector.reshape(1, -1))[0]
        if vector.shape[0] != self.k:
            raise ValueError(
                f"inner dimensions do not match: ({vector.shape[0]},) @ "
                f"({self.k}, {self.s})"
            )
        return np.bitwise_xor.reduce(MUL[vector[:, None], rows], axis=0)

    def matmul(self, a: np.ndarray) -> np.ndarray:
        """``a @ B`` over GF(2^8) for an ``(n, k)`` coefficient matrix."""
        left = _as_matrix(a, "a")
        n = left.shape[0]
        if left.shape[1] != self.k:
            raise ValueError(
                f"inner dimensions do not match: {left.shape} @ ({self.k}, {self.s})"
            )
        if self._words is None or n == 0 or self.k == 0:
            return np.zeros((n, self.s), dtype=np.uint8)
        bits = np.unpackbits(left[:, :, None], axis=2,
                             bitorder="little").reshape(n, self.k * 8)
        out = np.zeros((n, self._words.shape[1]), dtype=np.uint64)
        for i in range(n):
            selected = np.nonzero(bits[i])[0]
            if selected.size:
                np.bitwise_xor.reduce(self._words[selected], axis=0, out=out[i])
        return out.view(np.uint8)[:, : self.s]


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8), fully vectorized.

    Args:
        a: ``(n, k)`` matrix of field elements.
        b: ``(k, s)`` matrix of field elements.

    Returns:
        The ``(n, s)`` product, where multiplication is field
        multiplication and addition is XOR.
    """
    left = _as_matrix(a, "a")
    right = _as_matrix(b, "b")
    n, k = left.shape
    if right.shape[0] != k:
        raise ValueError(
            f"inner dimensions do not match: {left.shape} @ {right.shape}"
        )
    s = right.shape[1]
    if n == 0 or k == 0 or s == 0:
        return np.zeros((n, s), dtype=np.uint8)
    # Building the shifted-row stack costs ~8 passes over B; it pays off
    # once several output rows amortise it.  Single-vector reductions (the
    # hot receive path) stay on the gather formulation.
    if n >= 8 and s >= 8:
        return ShiftedRows(right).matmul(left)
    return _matmul_gather(left, right)


def gf_vecmat(vector: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """``vector @ matrix`` over GF(2^8) for a 1-D coefficient vector.

    The single-packet form used by the innovation check and the incremental
    Gauss–Jordan reduction — the hottest kernel entry point, so the gather
    runs directly (no matmul dispatch, no chunking, no output staging);
    results are bit-identical to ``gf_matmul(vector[None, :], matrix)[0]``.
    """
    coefficients = np.asarray(vector, dtype=np.uint8)
    if coefficients.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {coefficients.shape}")
    right = _as_matrix(matrix, "matrix")
    k = coefficients.shape[0]
    if right.shape[0] != k:
        raise ValueError(
            f"inner dimensions do not match: (1, {k}) @ {right.shape}"
        )
    if k == 0 or right.shape[1] == 0:
        return np.zeros(right.shape[1], dtype=np.uint8)
    # Product-table gather: for the single-vector shape, one fancy index
    # into the 64 KiB MUL table plus one XOR-reduce beats the two-gather
    # LOG/EXP route (no intermediate int16 tensor).
    return np.bitwise_xor.reduce(MUL[coefficients[:, None], right], axis=0)


def gf_vecmat_reference(vector: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """The original ``vector @ matrix`` route: through :func:`gf_matmul`.

    Kept as the measurable pre-optimisation reduction path (engine
    differential tests and the legacy-mode buffers); bit-identical to
    :func:`gf_vecmat`, just slower for single-vector shapes.
    """
    coefficients = np.asarray(vector, dtype=np.uint8)
    if coefficients.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {coefficients.shape}")
    return gf_matmul(coefficients[None, :], matrix)[0]


#: Split (nibble) product tables, 4 KiB each: ``_NIB_LO[c, x] = c * x`` for
#: the low nibble ``x`` in 0..15, and ``_NIB_HI[c, h] = c * (h << 4)`` for
#: the high nibble.  Field multiplication is GF(2)-linear in each operand,
#: so ``c * m = _NIB_LO[c, m & 0xF] ^ _NIB_HI[c, m >> 4]`` — two gathers
#: into tables an eighth the size of the 64 KiB ``MUL`` table.
_NIB_LO = MUL[:, :16].copy()
_NIB_HI = MUL[:, ::16].copy()


def _vec_operands(vector: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shared validation for the ``vector @ matrix`` kernel family."""
    coefficients = np.asarray(vector, dtype=np.uint8)
    if coefficients.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {coefficients.shape}")
    right = _as_matrix(matrix, "matrix")
    if right.shape[0] != coefficients.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: (1, {coefficients.shape[0]}) @ "
            f"{right.shape}"
        )
    return coefficients, right


def gf_vecmat_nibble(vector: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """``vector @ matrix`` via the split (nibble) product tables.

    Bit-identical to :func:`gf_vecmat`; trades the single 64 KiB-table
    gather for two gathers into 4 KiB tables that fit in L1 alongside the
    matrix rows.  In numpy the extra gather + XOR outweighs the locality
    win at every shape the elimination loop sees (see docs/performance.md),
    so this stays a selectable alternative rather than the default; in a
    cache-constrained native port the trade-off flips.
    """
    coefficients, right = _vec_operands(vector, matrix)
    if coefficients.shape[0] == 0 or right.shape[1] == 0:
        return np.zeros(right.shape[1], dtype=np.uint8)
    column = coefficients[:, None]
    products = _NIB_LO[column, right & 0x0F]
    products ^= _NIB_HI[column, right >> 4]
    return np.bitwise_xor.reduce(products, axis=0)


def gf_vecmat_logexp(vector: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """``vector @ matrix`` via the LOG/EXP (add-exponents) formulation.

    Bit-identical to :func:`gf_vecmat`; one gather into the 0.5 KiB log
    table per operand plus one into the 2 KiB padded antilog, with the
    zero-sentinel trick absorbing zero operands without masking.  The
    int16 exponent intermediate makes it slower than the MUL-table gather
    for the elimination shapes, but its tables are the smallest of the
    family.
    """
    coefficients, right = _vec_operands(vector, matrix)
    if coefficients.shape[0] == 0 or right.shape[1] == 0:
        return np.zeros(right.shape[1], dtype=np.uint8)
    exponents = _LOG16[coefficients[:, None]] + _LOG16[right]
    return np.bitwise_xor.reduce(_EXP_PAD[exponents], axis=0)


#: The selectable ``vector @ matrix`` kernels for the elimination inner
#: loop, keyed by the name :class:`repro.coding.buffer.BatchBuffer` and the
#: property-test harness use.  ``mul`` (the 64 KiB product-table gather) is
#: the measured default; all entries are bit-identical.
VECMAT_KERNELS: dict[str, VecmatKernel] = {
    "mul": gf_vecmat,
    "nibble": gf_vecmat_nibble,
    "logexp": gf_vecmat_logexp,
}


def resolve_vecmat(name: str) -> VecmatKernel:
    """Look up an elimination kernel by name (see :data:`VECMAT_KERNELS`)."""
    try:
        return VECMAT_KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown vecmat kernel {name!r}; expected one of "
            f"{sorted(VECMAT_KERNELS)}"
        ) from None


def gf_outer(column: np.ndarray, row: np.ndarray) -> np.ndarray:
    """Outer product ``column ⊗ row`` over GF(2^8).

    Returns the ``(len(column), len(row))`` matrix whose entry ``(i, j)``
    is ``column[i] * row[j]`` — the rank-1 update eliminating a new pivot
    from every stored row in one shot.
    """
    c = np.asarray(column, dtype=np.uint8)
    r = np.asarray(row, dtype=np.uint8)
    if c.ndim != 1 or r.ndim != 1:
        raise ValueError("gf_outer expects 1-D operands")
    return _EXP_PAD[_LOG16[c[:, None]] + _LOG16[r[None, :]]]


def scale_rows(matrix: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Multiply row ``i`` of ``matrix`` by ``coefficients[i]``, returning a copy."""
    rows = _as_matrix(matrix, "matrix")
    factors = np.asarray(coefficients, dtype=np.uint8)
    if factors.ndim != 1 or factors.shape[0] != rows.shape[0]:
        raise ValueError(
            f"need one coefficient per row: {factors.shape} vs {rows.shape}"
        )
    return _EXP_PAD[_LOG16[factors[:, None]] + _LOG16[rows]]


def scale_and_add_rows(accumulator: np.ndarray, matrix: np.ndarray,
                       coefficients: np.ndarray) -> None:
    """In-place ``accumulator[i] ^= coefficients[i] * matrix[i]`` for every row.

    The batched form of :func:`repro.gf.arithmetic.scale_and_add`: one call
    folds N scaled packets into N accumulators.
    """
    rows = _as_matrix(matrix, "matrix")
    if accumulator.shape != rows.shape:
        raise ValueError(
            f"accumulator shape {accumulator.shape} does not match {rows.shape}"
        )
    np.bitwise_xor(accumulator, scale_rows(rows, coefficients), out=accumulator)
