"""Finite-field GF(2^8) arithmetic used by MORE's network coding.

The public surface re-exports the scalar helpers, the vector kernels used on
packet payloads, the vectorized batch-coding kernels (``gf_matmul`` and
friends from :mod:`repro.gf.kernels`) and the matrix routines used by the
decoder.
"""

from repro.gf.arithmetic import (
    add,
    div,
    inv,
    mul,
    power,
    random_code_vector,
    random_coefficients,
    random_nonzero_coefficient,
    scale_and_add,
    sub,
    vec_add,
    vec_mul,
    vec_scale,
)
from repro.gf.kernels import (
    ShiftedRows,
    gf_matmul,
    gf_outer,
    gf_vecmat,
    scale_and_add_rows,
    scale_rows,
)
from repro.gf.matrix import (
    SingularMatrixError,
    invert,
    is_invertible,
    matmul,
    rank,
    row_reduce,
    solve,
)
from repro.gf.tables import EXP, FIELD_SIZE, INV, LOG, MUL, MUL_TABLE_BYTES

__all__ = [
    "EXP",
    "FIELD_SIZE",
    "INV",
    "LOG",
    "MUL",
    "MUL_TABLE_BYTES",
    "ShiftedRows",
    "SingularMatrixError",
    "add",
    "div",
    "gf_matmul",
    "gf_outer",
    "gf_vecmat",
    "inv",
    "invert",
    "is_invertible",
    "matmul",
    "mul",
    "power",
    "random_code_vector",
    "random_coefficients",
    "random_nonzero_coefficient",
    "rank",
    "row_reduce",
    "scale_and_add",
    "scale_and_add_rows",
    "scale_rows",
    "solve",
    "sub",
    "vec_add",
    "vec_mul",
    "vec_scale",
]
