"""Random linear encoders for MORE sources and forwarders.

Two encoders are provided:

* :class:`SourceEncoder` — codes over the K native packets of the current
  batch (Section 3.1.1).  Every transmission is a fresh random linear
  combination ``p' = sum_i c_i p_i``; :meth:`SourceEncoder.next_packets`
  produces N combinations with a single ``(N, K) @ (K, S)`` kernel call.
* :class:`ForwarderEncoder` — codes over the innovative coded packets a
  forwarder has buffered (Section 3.1.2) and additionally implements the
  *pre-coding* optimisation of Section 3.2.3(c): a combination is prepared
  ahead of the transmission opportunity and incrementally updated when new
  innovative packets arrive, so no coding delay is inserted in front of a
  transmission.

Both encoders draw their combination coefficients through
:func:`repro.gf.arithmetic.random_code_vector`, the shared guard that
re-draws the (astronomically unlikely) all-zero vector so every transmitted
packet carries information.

Ownership invariant: a :class:`~repro.coding.packet.CodedPacket` handed out
by ``next_packet`` / ``next_packets`` never aliases encoder-internal state —
the arrays a packet carries are private copies, so later ``add_packet``
calls (which update the pre-coded combination in place) cannot mutate a
packet already given to the MAC layer.  The forwarder additionally drops
its own references to the handed-out arrays before re-coding.
"""

from __future__ import annotations

import numpy as np

from repro.coding.buffer import BatchBuffer
from repro.coding.packet import Batch, CodedPacket
from repro.gf.arithmetic import (
    random_code_vector,
    random_nonzero_coefficient,
    scale_and_add,
)
from repro.gf.kernels import ShiftedRows, gf_vecmat, gf_vecmat_reference


class SourceEncoder:
    """Generates random linear combinations of a batch's native packets."""

    def __init__(self, batch: Batch, rng: np.random.Generator) -> None:
        if batch.size == 0:
            raise ValueError("cannot encode an empty batch")
        self.batch = batch
        self.rng = rng
        self._payloads = batch.payload_matrix()
        # The batch payloads never change, so the shifted-row stack is built
        # once (on first use — sources hold encoders for future batches too)
        # and every coded packet afterwards is a single XOR-reduce.
        self._operand: ShiftedRows | None = None
        self.packets_generated = 0

    @property
    def batch_size(self) -> int:
        """K, the number of native packets coded over."""
        return self.batch.size

    def next_packet(self) -> CodedPacket:
        """Produce a fresh coded packet over all K native packets.

        The single-packet form of :meth:`next_packets` (same draws, same
        arithmetic), without the batch-matrix scaffolding: one code-vector
        draw and one ``vector @ B`` kernel call per transmission.
        """
        if self._operand is None:
            self._operand = ShiftedRows(self._payloads)
        coefficients = random_code_vector(self.batch.size, self.rng)
        payload = self._operand.vecmul(coefficients)
        self.packets_generated += 1
        return CodedPacket.from_owned(coefficients, payload,
                                      batch_id=self.batch.batch_id)

    def next_packets(self, count: int) -> list[CodedPacket]:
        """Produce ``count`` fresh coded packets with one batched kernel call.

        The coefficient rows are drawn exactly as ``count`` sequential
        :meth:`next_packet` calls would draw them (one vector per call, with
        the all-zero re-draw guard), so the two paths are bit-identical for
        the same RNG state; only the payload arithmetic is batched.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        coefficients = np.empty((count, self.batch_size), dtype=np.uint8)
        for i in range(count):
            coefficients[i] = random_code_vector(self.batch_size, self.rng)
        if self._operand is None:
            self._operand = ShiftedRows(self._payloads)
        payloads = self._operand.matmul(coefficients)
        self.packets_generated += count
        # Both matrices were allocated for this call alone, so the packets
        # can own their rows outright — no defensive copy needed.
        return [
            CodedPacket.from_owned(coefficients[i], payloads[i],
                                   batch_id=self.batch.batch_id)
            for i in range(count)
        ]


class ForwarderEncoder:
    """Re-codes buffered innovative packets, with pre-coding support.

    The encoder owns a :class:`BatchBuffer`.  ``add_packet`` inserts a heard
    packet; if it is innovative it is also folded into the pre-coded packet
    so the next transmission reflects everything the node knows.
    """

    def __init__(self, batch_size: int, packet_size: int, rng: np.random.Generator,
                 batch_id: int = 0, fast: bool = True,
                 engine: str | None = None, kernel: str = "mul") -> None:
        self.buffer = BatchBuffer(batch_size, packet_size, fast=fast,
                                  engine=engine, kernel=kernel)
        self.rng = rng
        self.batch_id = batch_id
        #: ``fast=False`` routes the pre-code products through the original
        #: matmul dispatch (the engine differential reference path).  The
        #: buffer resolves the ``fast``/``engine`` precedence; mirror it.
        self.fast = self.buffer.fast
        self._precoded_vector: np.ndarray | None = None
        self._precoded_payload: np.ndarray | None = None
        self.packets_generated = 0

    @property
    def rank(self) -> int:
        """Number of innovative packets buffered."""
        return self.buffer.rank

    def add_packet(self, packet: CodedPacket) -> bool:
        """Insert a heard packet; returns True iff it was innovative.

        Innovative arrivals are multiplied by a fresh random coefficient and
        added to the pre-coded packet (Section 3.2.3(c)), keeping it current
        without recomputing the whole combination.
        """
        innovative = self.buffer.add(packet)
        if innovative:
            if self._precoded_vector is None:
                self._start_precode()
            else:
                coefficient = random_nonzero_coefficient(self.rng)
                scale_and_add(self._precoded_vector, packet.code_vector, coefficient)
                scale_and_add(self._precoded_payload, packet.payload, coefficient)
                if not self._precoded_vector.any():
                    # Degenerate fold: cannot happen when the arrival was
                    # genuinely innovative (an independent vector never
                    # cancels the stored combination), but re-code from the
                    # buffer rather than ever transmitting a zero vector.
                    self._start_precode()
        return innovative

    def _start_precode(self) -> None:
        """Build a pre-coded packet from scratch over the current buffer.

        One combination vector is drawn over the buffered rows (with the
        shared all-zero re-draw guard) and applied as a single ``(1, r) @
        (r, K)`` kernel product.  The buffered rows are linearly
        independent, so any non-zero combination yields a non-zero code
        vector.
        """
        if self.buffer.rank == 0:
            self._precoded_vector = None
            self._precoded_payload = None
            return
        coefficients = random_code_vector(self.buffer.rank, self.rng)
        if self.buffer.engine == "vectorized":
            # Fast path: combine through the deferred transform without
            # materialising (and copying) the reduced payload matrix —
            # bit-identical by GF associativity, pinned by the engine
            # differential tests.
            self._precoded_vector, self._precoded_payload = \
                self.buffer.combine_rows(coefficients)
            return
        vecmat = gf_vecmat if self.fast else gf_vecmat_reference
        self._precoded_vector = vecmat(coefficients,
                                       self.buffer.coefficient_matrix())
        self._precoded_payload = vecmat(coefficients,
                                        self.buffer.payload_matrix())

    def has_data(self) -> bool:
        """True if the forwarder has anything to transmit."""
        return self.buffer.rank > 0

    def next_packet(self) -> CodedPacket:
        """Hand out the pre-coded packet and immediately prepare a new one.

        Raises:
            RuntimeError: if no innovative packet has been buffered yet.
        """
        if self._precoded_vector is None or self._precoded_payload is None:
            self._start_precode()
        if self._precoded_vector is None or self._precoded_payload is None:
            raise RuntimeError("forwarder has no buffered packets to code over")
        # CodedPacket copies its arrays on construction; dropping our own
        # references before re-coding makes the ownership transfer explicit —
        # nothing the encoder does afterwards (add_packet folds, re-coding)
        # can alias the packet now owned by the caller.
        packet = CodedPacket(
            code_vector=self._precoded_vector,
            payload=self._precoded_payload,
            batch_id=self.batch_id,
        )
        assert packet.code_vector is not self._precoded_vector
        self._precoded_vector = None
        self._precoded_payload = None
        self.packets_generated += 1
        # As soon as the transmission starts, pre-code the next packet
        # (Section 3.3.3, sender side).
        self._start_precode()
        return packet

    def reset(self, batch_id: int | None = None) -> None:
        """Flush buffered packets (batch acked or superseded)."""
        self.buffer.clear()
        self._precoded_vector = None
        self._precoded_payload = None
        if batch_id is not None:
            self.batch_id = batch_id
