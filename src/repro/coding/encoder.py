"""Random linear encoders for MORE sources and forwarders.

Two encoders are provided:

* :class:`SourceEncoder` — codes over the K native packets of the current
  batch (Section 3.1.1).  Every transmission is a fresh random linear
  combination ``p' = sum_i c_i p_i``.
* :class:`ForwarderEncoder` — codes over the innovative coded packets a
  forwarder has buffered (Section 3.1.2) and additionally implements the
  *pre-coding* optimisation of Section 3.2.3(c): a combination is prepared
  ahead of the transmission opportunity and incrementally updated when new
  innovative packets arrive, so no coding delay is inserted in front of a
  transmission.
"""

from __future__ import annotations

import numpy as np

from repro.coding.buffer import BatchBuffer
from repro.coding.packet import Batch, CodedPacket
from repro.gf.arithmetic import random_coefficients, scale_and_add


class SourceEncoder:
    """Generates random linear combinations of a batch's native packets."""

    def __init__(self, batch: Batch, rng: np.random.Generator) -> None:
        if batch.size == 0:
            raise ValueError("cannot encode an empty batch")
        self.batch = batch
        self.rng = rng
        self._payloads = batch.payload_matrix()
        self.packets_generated = 0

    @property
    def batch_size(self) -> int:
        """K, the number of native packets coded over."""
        return self.batch.size

    def next_packet(self) -> CodedPacket:
        """Produce a fresh coded packet over all K native packets."""
        coefficients = random_coefficients(self.batch_size, self.rng)
        # Guard against the (astronomically unlikely) all-zero draw so that
        # every transmitted packet carries information.
        while not coefficients.any():
            coefficients = random_coefficients(self.batch_size, self.rng)
        payload = np.zeros(self.batch.packet_size, dtype=np.uint8)
        for index, coefficient in enumerate(coefficients):
            scale_and_add(payload, self._payloads[index], int(coefficient))
        self.packets_generated += 1
        return CodedPacket(
            code_vector=coefficients, payload=payload, batch_id=self.batch.batch_id
        )


class ForwarderEncoder:
    """Re-codes buffered innovative packets, with pre-coding support.

    The encoder owns a :class:`BatchBuffer`.  ``add_packet`` inserts a heard
    packet; if it is innovative it is also folded into the pre-coded packet
    so the next transmission reflects everything the node knows.
    """

    def __init__(self, batch_size: int, packet_size: int, rng: np.random.Generator,
                 batch_id: int = 0) -> None:
        self.buffer = BatchBuffer(batch_size, packet_size)
        self.rng = rng
        self.batch_id = batch_id
        self._precoded_vector: np.ndarray | None = None
        self._precoded_payload: np.ndarray | None = None
        self.packets_generated = 0

    @property
    def rank(self) -> int:
        """Number of innovative packets buffered."""
        return self.buffer.rank

    def add_packet(self, packet: CodedPacket) -> bool:
        """Insert a heard packet; returns True iff it was innovative.

        Innovative arrivals are multiplied by a fresh random coefficient and
        added to the pre-coded packet (Section 3.2.3(c)), keeping it current
        without recomputing the whole combination.
        """
        innovative = self.buffer.add(packet)
        if innovative:
            if self._precoded_vector is None:
                self._start_precode()
            else:
                coefficient = int(self.rng.integers(1, 256))
                scale_and_add(self._precoded_vector, packet.code_vector, coefficient)
                scale_and_add(self._precoded_payload, packet.payload, coefficient)
        return innovative

    def _start_precode(self) -> None:
        """Build a pre-coded packet from scratch over the current buffer."""
        stored = self.buffer.stored_packets()
        if not stored:
            self._precoded_vector = None
            self._precoded_payload = None
            return
        vector = np.zeros(self.buffer.batch_size, dtype=np.uint8)
        payload = np.zeros(self.buffer.packet_size, dtype=np.uint8)
        for packet in stored:
            coefficient = int(self.rng.integers(1, 256))
            scale_and_add(vector, packet.code_vector, coefficient)
            scale_and_add(payload, packet.payload, coefficient)
        self._precoded_vector = vector
        self._precoded_payload = payload

    def has_data(self) -> bool:
        """True if the forwarder has anything to transmit."""
        return self.buffer.rank > 0

    def next_packet(self) -> CodedPacket:
        """Hand out the pre-coded packet and immediately prepare a new one.

        Raises:
            RuntimeError: if no innovative packet has been buffered yet.
        """
        if self._precoded_vector is None or self._precoded_payload is None:
            self._start_precode()
        if self._precoded_vector is None or self._precoded_payload is None:
            raise RuntimeError("forwarder has no buffered packets to code over")
        packet = CodedPacket(
            code_vector=self._precoded_vector,
            payload=self._precoded_payload,
            batch_id=self.batch_id,
        )
        self.packets_generated += 1
        # As soon as the transmission starts, pre-code the next packet
        # (Section 3.3.3, sender side).
        self._start_precode()
        return packet

    def reset(self, batch_id: int | None = None) -> None:
        """Flush buffered packets (batch acked or superseded)."""
        self.buffer.clear()
        self._precoded_vector = None
        self._precoded_payload = None
        if batch_id is not None:
            self.batch_id = batch_id
