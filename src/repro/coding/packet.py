"""Packet abstractions for intra-flow network coding.

MORE distinguishes *native* packets (the K uncoded packets of a batch) from
*coded* packets (random linear combinations of natives, Table 3.1).  A coded
packet carries a *code vector* of K coefficients describing how it was
derived from the natives, plus the combined payload bytes.

Payloads are numpy ``uint8`` vectors; every byte is one GF(2^8) element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default packet payload size used throughout the evaluation (Section 4.1.2).
DEFAULT_PACKET_SIZE = 1500

#: Default batch size used throughout the evaluation (Section 4.1.2).
DEFAULT_BATCH_SIZE = 32


def _as_payload(data: np.ndarray | bytes | bytearray) -> np.ndarray:
    """Coerce payload bytes to a 1-D uint8 array."""
    if isinstance(data, (bytes, bytearray)):
        return np.frombuffer(bytes(data), dtype=np.uint8).copy()
    array = np.asarray(data, dtype=np.uint8)
    if array.ndim != 1:
        raise ValueError(f"payload must be 1-D, got shape {array.shape}")
    return array.copy()


@dataclass(frozen=True)
class NativePacket:
    """One uncoded packet of a batch.

    Attributes:
        index: position of the packet within its batch (0 .. K-1).
        payload: packet bytes as a uint8 vector.
    """

    index: int
    payload: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", _as_payload(self.payload))
        if self.index < 0:
            raise ValueError("native packet index must be non-negative")

    @property
    def size(self) -> int:
        """Payload length in bytes."""
        return int(self.payload.shape[0])

    def to_bytes(self) -> bytes:
        """Return the payload as immutable bytes."""
        return self.payload.tobytes()


@dataclass(frozen=True)
class CodedPacket:
    """A random linear combination of the native packets of one batch.

    Attributes:
        batch_size: K, the number of native packets in the batch.
        code_vector: length-K uint8 vector of combination coefficients.
        payload: combined payload bytes.
        batch_id: identifier of the batch this packet belongs to.
    """

    code_vector: np.ndarray
    payload: np.ndarray
    batch_id: int = 0

    def __post_init__(self) -> None:
        vector = np.asarray(self.code_vector, dtype=np.uint8)
        if vector.ndim != 1:
            raise ValueError("code vector must be 1-D")
        object.__setattr__(self, "code_vector", vector.copy())
        object.__setattr__(self, "payload", _as_payload(self.payload))

    @classmethod
    def from_owned(cls, code_vector: np.ndarray, payload: np.ndarray,
                   batch_id: int = 0) -> "CodedPacket":
        """Wrap freshly-created arrays without the defensive copy.

        The caller transfers ownership: both arrays must be uint8, 1-D and
        referenced by nothing that will mutate them afterwards.  Encoders
        use this on the batched fast path where the arrays are slices of a
        matrix allocated for this call alone; external callers should use
        the normal constructor, which copies.
        """
        assert code_vector.dtype == np.uint8 and code_vector.ndim == 1
        assert payload.dtype == np.uint8 and payload.ndim == 1
        packet = object.__new__(cls)
        object.__setattr__(packet, "code_vector", code_vector)
        object.__setattr__(packet, "payload", payload)
        object.__setattr__(packet, "batch_id", batch_id)
        return packet

    @property
    def batch_size(self) -> int:
        """K, the length of the code vector."""
        return int(self.code_vector.shape[0])

    @property
    def size(self) -> int:
        """Payload length in bytes."""
        return int(self.payload.shape[0])

    def is_zero(self) -> bool:
        """True if the code vector is all zeros (carries no information)."""
        return not bool(self.code_vector.any())

    def copy(self) -> "CodedPacket":
        """Return an independent copy of this packet."""
        return CodedPacket(
            code_vector=self.code_vector.copy(),
            payload=self.payload.copy(),
            batch_id=self.batch_id,
        )


@dataclass
class Batch:
    """A batch of K native packets produced by splitting a file.

    The source codes over one batch at a time (Section 3.1.1).
    """

    batch_id: int
    packets: list[NativePacket] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of native packets K in the batch."""
        return len(self.packets)

    @property
    def packet_size(self) -> int:
        """Payload size of the packets in this batch (bytes)."""
        if not self.packets:
            return 0
        return self.packets[0].size

    def payload_matrix(self) -> np.ndarray:
        """Stack the native payloads into a K x S matrix."""
        if not self.packets:
            return np.zeros((0, 0), dtype=np.uint8)
        return np.stack([p.payload for p in self.packets])


def split_file(
    data: bytes | bytearray | np.ndarray,
    batch_size: int = DEFAULT_BATCH_SIZE,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> list[Batch]:
    """Split a byte stream into batches of native packets.

    The final packet of the final batch is zero-padded to ``packet_size`` and
    the final batch may contain fewer than ``batch_size`` packets, exactly as
    a real transfer would (the paper notes K may vary between batches).

    Args:
        data: the file contents.
        batch_size: K, packets per batch.
        packet_size: payload bytes per packet.

    Returns:
        The ordered list of batches covering ``data``.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if packet_size <= 0:
        raise ValueError("packet_size must be positive")
    buffer = np.asarray(
        np.frombuffer(bytes(data), dtype=np.uint8)
        if isinstance(data, (bytes, bytearray))
        else np.asarray(data, dtype=np.uint8)
    )
    total_packets = max(1, int(np.ceil(buffer.size / packet_size))) if buffer.size else 0
    batches: list[Batch] = []
    for start in range(0, total_packets, batch_size):
        batch = Batch(batch_id=len(batches))
        for index in range(start, min(start + batch_size, total_packets)):
            chunk = buffer[index * packet_size : (index + 1) * packet_size]
            if chunk.size < packet_size:
                padded = np.zeros(packet_size, dtype=np.uint8)
                padded[: chunk.size] = chunk
                chunk = padded
            batch.packets.append(NativePacket(index=index - start, payload=chunk))
        batches.append(batch)
    return batches


def make_batch(
    batch_size: int = DEFAULT_BATCH_SIZE,
    packet_size: int = DEFAULT_PACKET_SIZE,
    rng: np.random.Generator | None = None,
    batch_id: int = 0,
) -> Batch:
    """Create a batch filled with random payload bytes (for tests/benchmarks)."""
    generator = rng if rng is not None else np.random.default_rng(0)
    packets = [
        NativePacket(index=i, payload=generator.integers(0, 256, size=packet_size, dtype=np.uint8))
        for i in range(batch_size)
    ]
    return Batch(batch_id=batch_id, packets=packets)
