"""Intra-flow random linear network coding (MORE Chapter 3)."""

from repro.coding.buffer import BatchBuffer
from repro.coding.decoder import BatchDecoder, decode_by_inversion
from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_PACKET_SIZE,
    Batch,
    CodedPacket,
    NativePacket,
    make_batch,
    split_file,
)

__all__ = [
    "Batch",
    "BatchBuffer",
    "BatchDecoder",
    "CodedPacket",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PACKET_SIZE",
    "ForwarderEncoder",
    "NativePacket",
    "SourceEncoder",
    "decode_by_inversion",
    "make_batch",
    "split_file",
]
