"""Destination-side batch decoder.

The destination collects innovative packets and, once it has K of them,
recovers the native packets by solving the K x K linear system of code
vectors (Section 3.1.3).  Two implementations are provided:

* :class:`BatchDecoder` — the production decoder, built on
  :class:`~repro.coding.buffer.BatchBuffer`, which performs incremental
  Gauss–Jordan elimination per arrival.  Under the default ``vectorized``
  engine the payload back-substitution is deferred: inserts touch code
  vectors (plus the transform columns) only, and :meth:`BatchDecoder.decode`
  materialises all K native payloads with a single batched product.
* :func:`decode_by_inversion` — the literal matrix-inversion formulation
  from the paper, used as a cross-check in tests and benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.coding.buffer import BatchBuffer
from repro.coding.packet import CodedPacket, NativePacket
from repro.gf.matrix import SingularMatrixError, invert, matmul


class BatchDecoder:
    """Collects coded packets of one batch and decodes once full rank.

    ``engine`` / ``kernel`` select the insertion engine and elimination
    kernel of the underlying buffer (see
    :class:`~repro.coding.buffer.BatchBuffer`); ``fast`` is the PR 4-era
    selector (``True`` = ``vectorized``, ``False`` = ``scalar``) that an
    explicit ``engine=`` overrides.
    """

    def __init__(self, batch_size: int, packet_size: int, batch_id: int = 0,
                 fast: bool = True, engine: str | None = None,
                 kernel: str = "mul") -> None:
        self.batch_id = batch_id
        self.buffer = BatchBuffer(batch_size, packet_size, fast=fast,
                                  engine=engine, kernel=kernel)

    @property
    def rank(self) -> int:
        """Number of innovative packets received so far."""
        return self.buffer.rank

    @property
    def batch_size(self) -> int:
        """K, the number of packets needed to decode."""
        return self.buffer.batch_size

    @property
    def is_complete(self) -> bool:
        """True once K innovative packets have been received."""
        return self.buffer.is_full

    def add_packet(self, packet: CodedPacket) -> bool:
        """Insert a received packet; returns True iff it was innovative."""
        return self.buffer.add(packet)

    def add_packets(self, packets: Iterable[CodedPacket]) -> list[bool]:
        """Insert one reception event's packets; one verdict per packet.

        Under the ``vectorized`` engine the whole event costs only
        code-vector eliminations — no payload arithmetic happens until
        :meth:`decode` (or an explicit payload inspection) materialises the
        deferred back-substitution in one batched product.
        """
        return self.buffer.add_packets(packets)

    def decode(self) -> list[NativePacket]:
        """Recover the native packets.

        Raises:
            RuntimeError: if fewer than K innovative packets were received.
        """
        payloads = self.buffer.decode()
        return [NativePacket(index=i, payload=payloads[i]) for i in range(self.batch_size)]

    def missing(self) -> int:
        """Number of additional innovative packets needed to decode."""
        return self.batch_size - self.rank


def decode_by_inversion(packets: list[CodedPacket]) -> np.ndarray:
    """Decode a batch by explicit matrix inversion (reference implementation).

    Args:
        packets: exactly K coded packets with linearly independent code
            vectors.

    Returns:
        A K x S matrix whose rows are the native payloads in order.

    Raises:
        ValueError: if the packet count does not equal the batch size.
        SingularMatrixError: if the code vectors are linearly dependent.
    """
    if not packets:
        raise ValueError("no packets to decode")
    batch_size = packets[0].batch_size
    if len(packets) != batch_size:
        raise ValueError(
            f"decode_by_inversion needs exactly K={batch_size} packets, got {len(packets)}"
        )
    coefficients = np.stack([p.code_vector for p in packets])
    payloads = np.stack([p.payload for p in packets])
    try:
        inverse = invert(coefficients)
    except SingularMatrixError:
        raise
    return matmul(inverse, payloads)
