"""Batch buffer with incremental innovation checking (Algorithm 2).

Every MORE node (source excepted) maintains, per flow, a buffer of the
innovative packets it has heard from the current batch.  Section 3.2.3(b) of
the paper describes the trick that makes innovation checking cheap: the code
vectors of buffered packets are kept in row-echelon (triangular) form so a
newly heard vector can be reduced against them with at most K row operations.
Only if the reduced vector is non-zero is the packet innovative; its
*payload bytes are never touched* during the check.

:class:`BatchBuffer` implements exactly that data structure, storing for each
pivot position the (reduced) code vector and the correspondingly combined
payload so the destination can later decode with a cheap back-substitution
free pass (the rows are maintained in *reduced* row-echelon form as the
paper's decoder does).

Three engines implement the same contract (selected by ``engine=``, all
bit-identical — GF(2^8) arithmetic is exact, so any algebraically equal
reformulation produces the same bytes):

``vectorized`` (the default)
    Payload arithmetic leaves the per-insert path entirely.  Each stored
    row is the code vector *augmented with a transform row*: the row's
    linear combination over the raw payloads admitted so far.  Inserts
    eliminate over the ``K x 2K`` combined matrix (code columns + transform
    columns) and stash the raw payload untouched; the reduced payload
    matrix is materialised lazily — one ``(rank, rank) @ (rank, S)``
    product, cached until the next insert — when a decode, pre-code or
    inspection actually needs the bytes.  Deferring the back-substitution
    this way is what turns per-packet payload elimination (two O(K * S)
    row passes per arrival) into a single batched product per rank
    advance/batch completion.

``eager``
    The pre-deferral vectorized path: payload rows are reduced in place on
    every insert with the same kernels.  Kept selectable so the deferral
    itself stays measurable.

``scalar``
    The original reference schedule — payloads reduced eagerly through the
    general matmul dispatch — retained as the reference side of the engine
    differential and property tests.

The elimination inner loop's ``vector @ matrix`` kernel is itself
selectable (``kernel=``, see :data:`repro.gf.kernels.VECMAT_KERNELS`):
``mul`` (64 KiB product-table gather, the measured default), ``nibble``
(split 4 KiB tables) or ``logexp`` (LOG/EXP gather).

Because the stored matrix is in *reduced* row-echelon form, reducing an
incoming vector against all pivots simultaneously (one ``(1, r) @ (r, K)``
product) is bit-identical to the paper's sequential row-by-row elimination:
no stored row has a non-zero entry in another row's pivot column, so no
reduction step can change the coefficient a later step reads.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.coding.packet import CodedPacket
from repro.gf.arithmetic import _zero_bytes, vec_scale
from repro.gf.kernels import (
    ShiftedRows,
    gf_matmul,
    gf_outer,
    gf_vecmat,
    gf_vecmat_reference,
    resolve_vecmat,
)
from repro.gf.tables import INV, MUL

#: The insertion engines of :class:`BatchBuffer`; all bit-identical.
ENGINES = ("vectorized", "eager", "scalar")


class BatchBuffer:
    """Stores the innovative coded packets of one batch in row-echelon form.

    Args:
        batch_size: K, the number of native packets in the batch.
        packet_size: payload bytes per packet.  A size of 0 is valid and is
            how the vector-only simulation mode skips payload arithmetic
            entirely: rank progression and decoding bookkeeping still work,
            but every payload is the empty vector.
        track_payloads: when False only code vectors are stored; forwarders
            that merely need rank information (e.g. in analytical tests) can
            avoid the payload memory.
        fast: legacy selector kept for the PR 4 engine dual-pathing:
            ``fast=True`` maps to the ``vectorized`` engine, ``fast=False``
            to the ``scalar`` reference.  An explicit ``engine=`` wins.
        engine: ``"vectorized"``, ``"eager"`` or ``"scalar"`` (see module
            docstring); ``None`` derives the engine from ``fast``.
        kernel: the elimination inner-loop kernel for the ``vectorized``
            engine — a key of :data:`repro.gf.kernels.VECMAT_KERNELS`.
    """

    def __init__(self, batch_size: int, packet_size: int, track_payloads: bool = True,
                 fast: bool = True, engine: str | None = None,
                 kernel: str = "mul") -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if packet_size < 0:
            raise ValueError("packet_size must be non-negative")
        if engine is None:
            engine = "vectorized" if fast else "scalar"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.batch_size = batch_size
        self.packet_size = packet_size
        self.track_payloads = track_payloads
        self.engine = engine
        #: Mirrors the engine choice for the PR 4-era dual-path call sites:
        #: True for the optimised engines, False for the scalar reference.
        self.fast = engine != "scalar"
        self._vecmat = resolve_vecmat(kernel)
        self.kernel = kernel
        self._occupied = np.zeros(batch_size, dtype=bool)
        self._rank = 0
        self.received = 0
        self.innovative = 0
        if engine == "vectorized":
            # Combined matrix: columns [0, K) hold the reduced code vectors,
            # columns [K, 2K) the transform rows (coefficients over the raw
            # payloads in admission order).  Transform columns are only
            # maintained when payload bytes can ever be asked for.
            self._with_transform = track_payloads and packet_size > 0
            width = 2 * batch_size if self._with_transform else batch_size
            self._ops = np.zeros((batch_size, width), dtype=np.uint8)
            self._matrix = self._ops[:, :batch_size]
            self._raw = (np.zeros((batch_size, packet_size), dtype=np.uint8)
                         if self._with_transform else None)
            self._payload_cache: np.ndarray | None = None
            # Cached shifted-row expansion of the admitted raw payloads for
            # the pre-code fast path; rebuilt lazily after each insert
            # (building costs about one direct vecmat, so the cache never
            # loses even under fully interleaved insert/pre-code traffic).
            self._raw_operand: ShiftedRows | None = None
            self._payload_rows = None
        else:
            # Row i, when occupied, has its leading non-zero coefficient at
            # column i.  Unoccupied rows stay all-zero.
            self._ops = None
            self._matrix = np.zeros((batch_size, batch_size), dtype=np.uint8)
            self._payload_rows = (np.zeros((batch_size, packet_size), dtype=np.uint8)
                                  if track_payloads else None)

    @property
    def rank(self) -> int:
        """Current rank (number of innovative packets stored)."""
        return self._rank

    @property
    def is_full(self) -> bool:
        """True when the buffer holds K linearly independent packets."""
        return self._rank >= self.batch_size

    def occupied_pivots(self) -> list[int]:
        """Return the pivot columns currently present, in increasing order."""
        return [int(i) for i in np.nonzero(self._occupied)[0]]

    def add(self, packet: CodedPacket) -> bool:
        """Insert a coded packet; return True iff it was innovative.

        Implements Algorithm 2 of the paper with the additional reduced-form
        maintenance used by the destination decoder: when a new pivot is
        admitted, rows above it are also cleared in that column so the stored
        matrix stays in *reduced* row-echelon form.
        """
        if packet.batch_size != self.batch_size:
            raise ValueError(
                f"packet code vector length {packet.batch_size} does not match "
                f"buffer batch size {self.batch_size}"
            )
        self.received += 1
        if self.engine == "vectorized":
            return self._add_vectorized(packet)
        return self._add_eager(packet)

    def add_packets(self, packets: Iterable[CodedPacket]) -> list[bool]:
        """Insert a whole reception event's packets; one verdict per packet.

        The batch-insert entry point of the vectorized engine: payload
        back-substitution is deferred across the entire event, so N inserts
        cost N code-vector eliminations and zero payload arithmetic — the
        payload matrix materialises once, on the first decode or pre-code
        after the event.
        """
        return [self.add(packet) for packet in packets]

    def _add_vectorized(self, packet: CodedPacket) -> bool:
        """Deferred-transform insert: code vector + transform row only."""
        batch_size = self.batch_size
        with_transform = self._with_transform
        if self.track_payloads:
            payload = packet.payload
            if payload.shape[0] != self.packet_size:
                raise ValueError(
                    f"payload length {payload.shape[0]} does not match buffer "
                    f"packet size {self.packet_size}"
                )
        ops = self._ops
        slot = self._rank
        extended = np.zeros(ops.shape[1], dtype=np.uint8)
        extended[:batch_size] = packet.code_vector
        if with_transform and slot < batch_size:
            # This arrival would occupy raw slot ``slot``; rows carry their
            # combination over admitted arrivals in the transform columns.
            extended[batch_size + slot] = 1
        # Active width: code columns plus the transform columns in use.  No
        # stored row (nor the incoming one) has a non-zero entry beyond it.
        width = batch_size + slot + 1 if with_transform else batch_size
        pivots = np.nonzero(self._occupied)[0]
        if pivots.size:
            coefficients = extended[pivots]
            if coefficients.tobytes() != _zero_bytes(pivots.size):
                extended[:width] ^= self._vecmat(
                    coefficients, ops[pivots.reshape(-1, 1), self._cols(width)])
        remaining = np.nonzero(extended[:batch_size])[0]
        if remaining.size == 0:
            # Vector reduced to zero: the packet is not innovative; its
            # payload was never read.
            return False
        column = int(remaining[0])
        inverse = int(INV[int(extended[column])])
        if inverse != 1:
            extended[:width] = vec_scale(extended[:width], inverse)
        if pivots.size:
            factors = ops[pivots, column]
            mask = factors != 0
            hit = pivots[mask]
            if hit.size:
                # Rank-1 update clearing the new pivot column from every
                # stored row at once; the MUL-table outer product beats the
                # LOG/EXP formulation at these widths.
                ops[hit, :width] ^= MUL[factors[mask][:, None], extended[:width]]
        ops[column] = extended
        self._occupied[column] = True
        self._rank += 1
        self.innovative += 1
        if with_transform:
            self._raw[slot] = payload
        self._payload_cache = None
        self._raw_operand = None
        return True

    def _cols(self, width: int) -> np.ndarray:
        """Column index vector for active-width advanced indexing."""
        cols = getattr(self, "_cols_cache", None)
        if cols is None:
            cols = self._cols_cache = np.arange(self._ops.shape[1])
        return cols[:width]

    def _add_eager(self, packet: CodedPacket) -> bool:
        """The eager engines: payload rows reduced in place per insert."""
        vector = packet.code_vector.copy()
        payload = packet.payload.copy() if self.track_payloads else None
        if payload is not None and payload.shape[0] != self.packet_size:
            raise ValueError(
                f"payload length {payload.shape[0]} does not match buffer packet size "
                f"{self.packet_size}"
            )

        # Phase 1: reduce the incoming vector against *every* stored pivot
        # row in one kernel call.  Stored rows are reduced, so the pivot
        # coefficients read from the incoming vector cannot change mid-pass
        # and the simultaneous reduction equals the sequential one.  The
        # payload reduction is deferred until the vector proves innovative:
        # a packet that reduces to zero discards its payload unread, so
        # non-innovative arrivals never pay for payload arithmetic (the
        # reductions commute — both are XORs of rows scaled by the same
        # pre-reduction coefficients — so deferral is bit-identical).
        pivots = np.nonzero(self._occupied)[0]
        fast = self.fast
        vecmat = gf_vecmat if fast else gf_vecmat_reference
        coefficients = None
        if pivots.size:
            coefficients = vector[pivots]
            if (coefficients.tobytes() != _zero_bytes(pivots.size)) if fast \
                    else coefficients.any():
                vector ^= vecmat(coefficients, self._matrix[pivots])
                if not fast and payload is not None and self.packet_size:
                    # Reference schedule: the payload is reduced eagerly,
                    # before the innovation outcome is known.
                    payload ^= vecmat(coefficients, self._payload_rows[pivots])
            else:
                coefficients = None

        # Phase 2: the first remaining non-zero column (necessarily pivot
        # free) becomes the new pivot; normalise and clean the other rows.
        remaining = np.nonzero(vector)[0]
        if fast and coefficients is not None and remaining.size \
                and payload is not None and self.packet_size:
            payload ^= gf_vecmat(coefficients, self._payload_rows[pivots])
        if remaining.size == 0:
            # Vector reduced to zero: the packet is not innovative.
            return False
        column = int(remaining[0])
        inverse = int(INV[int(vector[column])])
        vector = vec_scale(vector, inverse)
        if payload is not None:
            payload = vec_scale(payload, inverse)
        if pivots.size:
            factors = self._matrix[pivots, column]
            mask = factors != 0
            hit = pivots[mask]
            if hit.size:
                # Rank-1 update: clear the new pivot column from every
                # stored row at once.
                hit_factors = factors[mask]
                self._matrix[hit] ^= gf_outer(hit_factors, vector)
                if self.track_payloads and self.packet_size and payload is not None:
                    self._payload_rows[hit] ^= gf_outer(hit_factors, payload)
        self._matrix[column] = vector
        if self._payload_rows is not None and payload is not None:
            self._payload_rows[column] = payload
        self._occupied[column] = True
        self._rank += 1
        self.innovative += 1
        return True

    def is_innovative(self, code_vector: np.ndarray) -> bool:
        """Check whether a code vector would be innovative, without inserting it."""
        vector = np.asarray(code_vector, dtype=np.uint8)
        if vector.shape[0] != self.batch_size:
            raise ValueError("code vector length does not match batch size")
        if self._rank == 0:
            return bool(vector.any())
        if self.is_full:
            return False
        pivots = np.nonzero(self._occupied)[0]
        coefficients = vector[pivots]
        if not coefficients.any():
            return bool(vector.any())
        reduced = vector ^ gf_vecmat(coefficients, self._matrix[pivots])
        return bool(reduced.any())

    def stored_packets(self) -> list[CodedPacket]:
        """Return the stored (reduced) packets as :class:`CodedPacket` objects."""
        pivots = self.occupied_pivots()
        if not pivots:
            return []
        if self.track_payloads:
            payloads = self.payload_matrix()
        else:
            payloads = np.zeros((len(pivots), self.packet_size), dtype=np.uint8)
        return [
            CodedPacket(code_vector=self._matrix[column].copy(),
                        payload=payloads[index].copy())
            for index, column in enumerate(pivots)
        ]

    def coefficient_matrix(self) -> np.ndarray:
        """Return the stored code vectors stacked as a rank x K matrix."""
        return self._matrix[self._occupied].copy()

    def payload_matrix(self) -> np.ndarray:
        """Return the stored payloads stacked as a rank x S matrix.

        Under the ``vectorized`` engine this is where the deferred
        back-substitution lands: the reduced payloads are one
        ``transform @ raw_payloads`` product, computed on first request
        after a rank advance and cached until the next insert.
        """
        if not self.track_payloads:
            raise RuntimeError("buffer was created without payload tracking")
        if self.engine != "vectorized":
            return self._payload_rows[self._occupied].copy()
        cache = self._payload_cache
        if cache is None:
            cache = self._payload_cache = self._materialize_payloads()
        return cache.copy()

    def _materialize_payloads(self) -> np.ndarray:
        """Reduce the admitted raw payloads through the stored transform."""
        count = self._rank
        if not self._with_transform or count == 0:
            return np.zeros((count, self.packet_size), dtype=np.uint8)
        batch_size = self.batch_size
        transform = self._ops[self._occupied, batch_size:batch_size + count]
        return gf_matmul(transform, self._raw[:count])

    def combine_rows(self, coefficients: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One linear combination over the stored rows, payloads left deferred.

        The forwarder pre-code fast path (``vectorized`` engine only):
        returns ``(code_vector, payload)`` for ``coefficients @ rows``
        without ever materialising the reduced payload matrix.  The payload
        combination is re-associated through the stored transform::

            c @ (T @ R)  ==  (c @ T) @ R

        which is exact in GF(2^8), so the bytes match the materialised path
        bit for bit while costing ``O(r^2 + r*S)`` instead of the
        ``O(r^2 * S)`` back-substitution (plus a full matrix copy) per
        pre-code.  When the reduced payloads happen to be materialised
        already (a decode ran since the last insert), the cached matrix is
        combined directly — one ``(1, r) @ (r, S)`` product.

        Args:
            coefficients: one combination coefficient per stored row, in
                pivot-column order (the order of :meth:`coefficient_matrix`).

        Returns:
            The combined code vector (length K) and payload (length S),
            both freshly owned.
        """
        if self.engine != "vectorized":
            raise RuntimeError("combine_rows is a vectorized-engine fast path")
        count = self._rank
        if count == 0:
            raise RuntimeError("cannot combine over an empty buffer")
        if coefficients.shape[0] != count:
            raise ValueError(
                f"expected {count} combination coefficients, "
                f"got {coefficients.shape[0]}")
        vector = self._vecmat(coefficients, self._matrix[self._occupied])
        if not self._with_transform:
            payload = np.zeros(self.packet_size, dtype=np.uint8)
        elif self._payload_cache is not None:
            payload = self._vecmat(coefficients, self._payload_cache)
        else:
            batch_size = self.batch_size
            reduced = self._vecmat(
                coefficients,
                self._ops[self._occupied, batch_size:batch_size + count])
            if self._raw_operand is None:
                self._raw_operand = ShiftedRows(self._raw[:count])
            payload = self._raw_operand.vecmul(reduced)
        return vector, payload

    def decode(self) -> np.ndarray:
        """Recover the K native payloads; requires a full-rank buffer.

        Because the buffer maintains reduced row-echelon form incrementally,
        once rank reaches K the stored coefficient matrix is the identity and
        the stored payloads *are* the native packets, in order.

        Returns:
            A K x S matrix whose row ``i`` is native packet ``i``.

        Raises:
            RuntimeError: if the buffer is not yet full rank or payloads are
                not tracked.
        """
        if not self.track_payloads:
            raise RuntimeError("cannot decode a buffer created without payload tracking")
        if not self.is_full:
            raise RuntimeError(
                f"cannot decode: rank {self._rank} < batch size {self.batch_size}"
            )
        return self.payload_matrix()

    def clear(self) -> None:
        """Drop all stored state (used when a batch is flushed)."""
        if self._ops is not None:
            self._ops[:] = 0
            if self._raw is not None:
                self._raw[:] = 0
            self._payload_cache = None
            self._raw_operand = None
        else:
            self._matrix[:] = 0
            if self._payload_rows is not None:
                self._payload_rows[:] = 0
        self._occupied[:] = False
        self._rank = 0
