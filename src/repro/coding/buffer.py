"""Batch buffer with incremental innovation checking (Algorithm 2).

Every MORE node (source excepted) maintains, per flow, a buffer of the
innovative packets it has heard from the current batch.  Section 3.2.3(b) of
the paper describes the trick that makes innovation checking cheap: the code
vectors of buffered packets are kept in row-echelon (triangular) form so a
newly heard vector can be reduced against them with at most K row operations.
Only if the reduced vector is non-zero is the packet innovative; its
*payload bytes are never touched* during the check.

:class:`BatchBuffer` implements exactly that data structure, storing for each
pivot position the (reduced) code vector and the correspondingly combined
payload so the destination can later decode with a cheap back-substitution
free pass (the rows are maintained in *reduced* row-echelon form as the
paper's decoder does).

The rows live in two contiguous matrices (code vectors ``K x K``, payloads
``K x S``) so every reduction is a vectorized kernel call from
:mod:`repro.gf.kernels` rather than a K-iteration Python loop.  Because the
stored matrix is in *reduced* row-echelon form, reducing an incoming vector
against all pivots simultaneously (one ``(1, r) @ (r, K)`` product) is
bit-identical to the paper's sequential row-by-row elimination: no stored
row has a non-zero entry in another row's pivot column, so no reduction
step can change the coefficient a later step reads.
"""

from __future__ import annotations

import numpy as np

from repro.coding.packet import CodedPacket
from repro.gf.arithmetic import _zero_bytes, vec_scale
from repro.gf.kernels import gf_outer, gf_vecmat, gf_vecmat_reference
from repro.gf.tables import INV


class BatchBuffer:
    """Stores the innovative coded packets of one batch in row-echelon form.

    Args:
        batch_size: K, the number of native packets in the batch.
        packet_size: payload bytes per packet.  A size of 0 is valid and is
            how the vector-only simulation mode skips payload arithmetic
            entirely: rank progression and decoding bookkeeping still work,
            but every payload is the empty vector.
        track_payloads: when False only code vectors are stored; forwarders
            that merely need rank information (e.g. in analytical tests) can
            avoid the payload memory.
    """

    def __init__(self, batch_size: int, packet_size: int, track_payloads: bool = True,
                 fast: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if packet_size < 0:
            raise ValueError("packet_size must be non-negative")
        self.batch_size = batch_size
        self.packet_size = packet_size
        self.track_payloads = track_payloads
        #: ``fast=False`` keeps the original (pre-optimisation) reduction
        #: schedule — payloads reduced eagerly in phase 1 through the
        #: general matmul dispatch — as the reference side of the engine
        #: differential tests; results are bit-identical either way.
        self.fast = fast
        # Row i, when occupied, has its leading non-zero coefficient at
        # column i.  Unoccupied rows stay all-zero.
        self._matrix = np.zeros((batch_size, batch_size), dtype=np.uint8)
        self._payload_rows = (np.zeros((batch_size, packet_size), dtype=np.uint8)
                              if track_payloads else None)
        self._occupied = np.zeros(batch_size, dtype=bool)
        self._rank = 0
        self.received = 0
        self.innovative = 0

    @property
    def rank(self) -> int:
        """Current rank (number of innovative packets stored)."""
        return self._rank

    @property
    def is_full(self) -> bool:
        """True when the buffer holds K linearly independent packets."""
        return self._rank >= self.batch_size

    def occupied_pivots(self) -> list[int]:
        """Return the pivot columns currently present, in increasing order."""
        return [int(i) for i in np.nonzero(self._occupied)[0]]

    def add(self, packet: CodedPacket) -> bool:
        """Insert a coded packet; return True iff it was innovative.

        Implements Algorithm 2 of the paper with the additional reduced-form
        maintenance used by the destination decoder: when a new pivot is
        admitted, rows above it are also cleared in that column so the stored
        matrix stays in *reduced* row-echelon form.
        """
        if packet.batch_size != self.batch_size:
            raise ValueError(
                f"packet code vector length {packet.batch_size} does not match "
                f"buffer batch size {self.batch_size}"
            )
        self.received += 1
        vector = packet.code_vector.copy()
        payload = packet.payload.copy() if self.track_payloads else None
        if payload is not None and payload.shape[0] != self.packet_size:
            raise ValueError(
                f"payload length {payload.shape[0]} does not match buffer packet size "
                f"{self.packet_size}"
            )

        # Phase 1: reduce the incoming vector against *every* stored pivot
        # row in one kernel call.  Stored rows are reduced, so the pivot
        # coefficients read from the incoming vector cannot change mid-pass
        # and the simultaneous reduction equals the sequential one.  The
        # payload reduction is deferred until the vector proves innovative:
        # a packet that reduces to zero discards its payload unread, so
        # non-innovative arrivals never pay for payload arithmetic (the
        # reductions commute — both are XORs of rows scaled by the same
        # pre-reduction coefficients — so deferral is bit-identical).
        pivots = np.nonzero(self._occupied)[0]
        fast = self.fast
        vecmat = gf_vecmat if fast else gf_vecmat_reference
        coefficients = None
        if pivots.size:
            coefficients = vector[pivots]
            if (coefficients.tobytes() != _zero_bytes(pivots.size)) if fast \
                    else coefficients.any():
                vector ^= vecmat(coefficients, self._matrix[pivots])
                if not fast and payload is not None and self.packet_size:
                    # Reference schedule: the payload is reduced eagerly,
                    # before the innovation outcome is known.
                    payload ^= vecmat(coefficients, self._payload_rows[pivots])
            else:
                coefficients = None

        # Phase 2: the first remaining non-zero column (necessarily pivot
        # free) becomes the new pivot; normalise and clean the other rows.
        remaining = np.nonzero(vector)[0]
        if fast and coefficients is not None and remaining.size \
                and payload is not None and self.packet_size:
            payload ^= gf_vecmat(coefficients, self._payload_rows[pivots])
        if remaining.size == 0:
            # Vector reduced to zero: the packet is not innovative.
            return False
        column = int(remaining[0])
        inverse = int(INV[int(vector[column])])
        vector = vec_scale(vector, inverse)
        if payload is not None:
            payload = vec_scale(payload, inverse)
        if pivots.size:
            factors = self._matrix[pivots, column]
            mask = factors != 0
            hit = pivots[mask]
            if hit.size:
                # Rank-1 update: clear the new pivot column from every
                # stored row at once.
                hit_factors = factors[mask]
                self._matrix[hit] ^= gf_outer(hit_factors, vector)
                if self.track_payloads and self.packet_size and payload is not None:
                    self._payload_rows[hit] ^= gf_outer(hit_factors, payload)
        self._matrix[column] = vector
        if self._payload_rows is not None and payload is not None:
            self._payload_rows[column] = payload
        self._occupied[column] = True
        self._rank += 1
        self.innovative += 1
        return True

    def is_innovative(self, code_vector: np.ndarray) -> bool:
        """Check whether a code vector would be innovative, without inserting it."""
        vector = np.asarray(code_vector, dtype=np.uint8)
        if vector.shape[0] != self.batch_size:
            raise ValueError("code vector length does not match batch size")
        if self._rank == 0:
            return bool(vector.any())
        if self.is_full:
            return False
        pivots = np.nonzero(self._occupied)[0]
        coefficients = vector[pivots]
        if not coefficients.any():
            return bool(vector.any())
        reduced = vector ^ gf_vecmat(coefficients, self._matrix[pivots])
        return bool(reduced.any())

    def stored_packets(self) -> list[CodedPacket]:
        """Return the stored (reduced) packets as :class:`CodedPacket` objects."""
        packets = []
        for column in self.occupied_pivots():
            if self._payload_rows is not None:
                payload = self._payload_rows[column].copy()
            else:
                payload = np.zeros(self.packet_size, dtype=np.uint8)
            packets.append(CodedPacket(code_vector=self._matrix[column].copy(),
                                       payload=payload))
        return packets

    def coefficient_matrix(self) -> np.ndarray:
        """Return the stored code vectors stacked as a rank x K matrix."""
        return self._matrix[self._occupied].copy()

    def payload_matrix(self) -> np.ndarray:
        """Return the stored payloads stacked as a rank x S matrix."""
        if self._payload_rows is None:
            raise RuntimeError("buffer was created without payload tracking")
        return self._payload_rows[self._occupied].copy()

    def decode(self) -> np.ndarray:
        """Recover the K native payloads; requires a full-rank buffer.

        Because the buffer maintains reduced row-echelon form incrementally,
        once rank reaches K the stored coefficient matrix is the identity and
        the stored payloads *are* the native packets, in order.

        Returns:
            A K x S matrix whose row ``i`` is native packet ``i``.

        Raises:
            RuntimeError: if the buffer is not yet full rank or payloads are
                not tracked.
        """
        if self._payload_rows is None:
            raise RuntimeError("cannot decode a buffer created without payload tracking")
        if not self.is_full:
            raise RuntimeError(
                f"cannot decode: rank {self._rank} < batch size {self.batch_size}"
            )
        return self.payload_matrix()

    def clear(self) -> None:
        """Drop all stored state (used when a batch is flushed)."""
        self._matrix[:] = 0
        if self._payload_rows is not None:
            self._payload_rows[:] = 0
        self._occupied[:] = False
        self._rank = 0
