"""Batch buffer with incremental innovation checking (Algorithm 2).

Every MORE node (source excepted) maintains, per flow, a buffer of the
innovative packets it has heard from the current batch.  Section 3.2.3(b) of
the paper describes the trick that makes innovation checking cheap: the code
vectors of buffered packets are kept in row-echelon (triangular) form so a
newly heard vector can be reduced against them with at most K row operations.
Only if the reduced vector is non-zero is the packet innovative; its
*payload bytes are never touched* during the check.

:class:`BatchBuffer` implements exactly that data structure, storing for each
pivot position the (reduced) code vector and the correspondingly combined
payload so the destination can later decode with a cheap back-substitution
free pass (the rows are maintained in *reduced* row-echelon form as the
paper's decoder does).
"""

from __future__ import annotations

import numpy as np

from repro.coding.packet import CodedPacket
from repro.gf.arithmetic import scale_and_add, vec_scale
from repro.gf.tables import INV


class BatchBuffer:
    """Stores the innovative coded packets of one batch in row-echelon form.

    Args:
        batch_size: K, the number of native packets in the batch.
        packet_size: payload bytes per packet.
        track_payloads: when False only code vectors are stored; forwarders
            that merely need rank information (e.g. in analytical tests) can
            avoid the payload memory.
    """

    def __init__(self, batch_size: int, packet_size: int, track_payloads: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if packet_size < 0:
            raise ValueError("packet_size must be non-negative")
        self.batch_size = batch_size
        self.packet_size = packet_size
        self.track_payloads = track_payloads
        # Row i, when present, has its leading non-zero coefficient at column i.
        self._vectors: list[np.ndarray | None] = [None] * batch_size
        self._payloads: list[np.ndarray | None] = [None] * batch_size
        self._rank = 0
        self.received = 0
        self.innovative = 0

    @property
    def rank(self) -> int:
        """Current rank (number of innovative packets stored)."""
        return self._rank

    @property
    def is_full(self) -> bool:
        """True when the buffer holds K linearly independent packets."""
        return self._rank >= self.batch_size

    def occupied_pivots(self) -> list[int]:
        """Return the pivot columns currently present, in increasing order."""
        return [i for i, row in enumerate(self._vectors) if row is not None]

    def add(self, packet: CodedPacket) -> bool:
        """Insert a coded packet; return True iff it was innovative.

        Implements Algorithm 2 of the paper with the additional reduced-form
        maintenance used by the destination decoder: when a new pivot is
        admitted, rows above it are also cleared in that column so the stored
        matrix stays in *reduced* row-echelon form.
        """
        if packet.batch_size != self.batch_size:
            raise ValueError(
                f"packet code vector length {packet.batch_size} does not match "
                f"buffer batch size {self.batch_size}"
            )
        self.received += 1
        vector = packet.code_vector.copy()
        payload = packet.payload.copy() if self.track_payloads else None
        if payload is not None and payload.shape[0] != self.packet_size:
            raise ValueError(
                f"payload length {payload.shape[0]} does not match buffer packet size "
                f"{self.packet_size}"
            )

        # Phase 1: reduce the incoming vector against *every* stored pivot row
        # (stored rows are themselves reduced, so one pass suffices).  This
        # zeroes all pivot columns of the incoming vector, which is required
        # for the stored matrix to remain in *reduced* row-echelon form —
        # otherwise the full-rank matrix is not the identity and decoding
        # would return corrupted payloads.
        for column in range(self.batch_size):
            existing = self._vectors[column]
            if existing is None:
                continue
            coefficient = int(vector[column])
            if coefficient == 0:
                continue
            # u <- u - M[column] * u[column]; subtraction is XOR.
            scale_and_add(vector, existing, coefficient)
            if payload is not None and self._payloads[column] is not None:
                scale_and_add(payload, self._payloads[column], coefficient)

        # Phase 2: the first remaining non-zero column (necessarily pivot
        # free) becomes the new pivot; normalise and clean the other rows.
        pivot_columns = np.nonzero(vector)[0]
        if pivot_columns.size == 0:
            # Vector reduced to zero: the packet is not innovative.
            return False
        column = int(pivot_columns[0])
        coefficient = int(vector[column])
        inverse = int(INV[coefficient])
        vector = vec_scale(vector, inverse)
        if payload is not None:
            payload = vec_scale(payload, inverse)
        for other in range(self.batch_size):
            other_vector = self._vectors[other]
            if other == column or other_vector is None:
                continue
            factor = int(other_vector[column])
            if factor:
                scale_and_add(other_vector, vector, factor)
                if self.track_payloads and self._payloads[other] is not None and payload is not None:
                    scale_and_add(self._payloads[other], payload, factor)
        self._vectors[column] = vector
        self._payloads[column] = payload
        self._rank += 1
        self.innovative += 1
        return True

    def is_innovative(self, code_vector: np.ndarray) -> bool:
        """Check whether a code vector would be innovative, without inserting it."""
        vector = np.asarray(code_vector, dtype=np.uint8).copy()
        if vector.shape[0] != self.batch_size:
            raise ValueError("code vector length does not match batch size")
        for column in range(self.batch_size):
            coefficient = int(vector[column])
            if coefficient == 0:
                continue
            existing = self._vectors[column]
            if existing is None:
                return True
            scale_and_add(vector, existing, coefficient)
        return False

    def stored_packets(self) -> list[CodedPacket]:
        """Return the stored (reduced) packets as :class:`CodedPacket` objects."""
        packets = []
        for column in range(self.batch_size):
            vector = self._vectors[column]
            if vector is None:
                continue
            payload = self._payloads[column]
            if payload is None:
                payload = np.zeros(self.packet_size, dtype=np.uint8)
            packets.append(CodedPacket(code_vector=vector.copy(), payload=payload.copy()))
        return packets

    def coefficient_matrix(self) -> np.ndarray:
        """Return the stored code vectors stacked as a rank x K matrix."""
        rows = [v for v in self._vectors if v is not None]
        if not rows:
            return np.zeros((0, self.batch_size), dtype=np.uint8)
        return np.stack(rows)

    def payload_matrix(self) -> np.ndarray:
        """Return the stored payloads stacked as a rank x S matrix."""
        if not self.track_payloads:
            raise RuntimeError("buffer was created without payload tracking")
        rows = [p for p in self._payloads if p is not None]
        if not rows:
            return np.zeros((0, self.packet_size), dtype=np.uint8)
        return np.stack(rows)

    def decode(self) -> np.ndarray:
        """Recover the K native payloads; requires a full-rank buffer.

        Because the buffer maintains reduced row-echelon form incrementally,
        once rank reaches K the stored coefficient matrix is the identity and
        the stored payloads *are* the native packets, in order.

        Returns:
            A K x S matrix whose row ``i`` is native packet ``i``.

        Raises:
            RuntimeError: if the buffer is not yet full rank or payloads are
                not tracked.
        """
        if not self.track_payloads:
            raise RuntimeError("cannot decode a buffer created without payload tracking")
        if not self.is_full:
            raise RuntimeError(
                f"cannot decode: rank {self._rank} < batch size {self.batch_size}"
            )
        return self.payload_matrix()

    def clear(self) -> None:
        """Drop all stored state (used when a batch is flushed)."""
        self._vectors = [None] * self.batch_size
        self._payloads = [None] * self.batch_size
        self._rank = 0
