"""Statistics helpers used by the experiment harness (CDFs, percentiles)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cdf(values: list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Returns:
        ``(x, y)`` arrays where ``y[i]`` is the fraction of samples <= ``x[i]``;
        the plots in the paper (Figs 4-2, 4-4, 4-6, 4-7) are exactly these.
    """
    if not values:
        return np.zeros(0), np.zeros(0)
    x = np.sort(np.asarray(values, dtype=float))
    y = np.arange(1, x.size + 1) / x.size
    return x, y


def percentile(values: list[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) of ``values``."""
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def median(values: list[float]) -> float:
    """Median of ``values``."""
    return percentile(values, 50.0)


@dataclass(frozen=True)
class Summary:
    """Distribution summary used when reporting per-protocol throughput."""

    count: int
    mean: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float


def summarize(values: list[float]) -> Summary:
    """Summary statistics of a throughput sample."""
    if not values:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan)
    array = np.asarray(values, dtype=float)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        median=float(np.median(array)),
        p10=float(np.percentile(array, 10)),
        p90=float(np.percentile(array, 90)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def median_gain(numerator: list[float], denominator: list[float]) -> float:
    """Ratio of medians, the statistic the paper quotes for protocol gains."""
    base = median(denominator)
    if base <= 0:
        return float("nan")
    return median(numerator) / base


def pairwise_gains(numerator: list[float], denominator: list[float]) -> list[float]:
    """Per-pair throughput ratios (used for the 10-12x challenged-flow claim)."""
    gains = []
    for top, bottom in zip(numerator, denominator):
        if bottom > 0:
            gains.append(top / bottom)
    return gains
