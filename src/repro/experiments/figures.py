"""Reproduction harnesses, one per table/figure of the paper's evaluation.

Every function regenerates the data series behind one figure or table of
Chapter 4 (or the Chapter 5 gap analysis) and returns it as plain Python
data plus a formatted text report, so results can be compared directly with
the numbers the paper quotes.  Benchmarks in ``benchmarks/`` call these
functions with reduced workloads; EXPERIMENTS.md records paper-vs-measured.

The workload sizes default to values that finish in seconds-to-minutes on a
laptop; each function takes ``pair_count`` / ``runs`` style arguments so the
full-scale version of the experiment can also be launched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.coding.buffer import BatchBuffer
from repro.coding.decoder import BatchDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.packet import make_batch
from repro.experiments.runner import FlowResult, RunConfig, compare_protocols, run_flows
from repro.experiments.stats import cdf, median, median_gain, pairwise_gains, summarize
from repro.experiments.workloads import multiflow_sets, random_pairs, spatial_reuse_pairs
from repro.metrics.gap import figure_5_1_gap, gap_survey, summarize_gaps
from repro.sim.radio import RATE_11MBPS
from repro.topology.generator import cost_gap_topology, indoor_testbed
from repro.topology.graph import Topology


def default_testbed(seed: int = 7) -> Topology:
    """The synthetic 20-node, 3-floor testbed used by all Chapter 4 figures."""
    return indoor_testbed(node_count=20, floors=3, seed=seed)


@dataclass
class FigureResult:
    """Output of one figure-reproduction function."""

    name: str
    series: dict[str, list[float]]
    summary: dict[str, float]
    report: str
    extras: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.report


def _throughputs(results: list[FlowResult]) -> list[float]:
    return [r.throughput_pkts for r in results]


def _format_protocol_table(series: dict[str, list[float]]) -> str:
    lines = [f"{'protocol':<10} {'median':>8} {'mean':>8} {'p10':>8} {'p90':>8} {'n':>4}"]
    for protocol, values in series.items():
        summary = summarize(values)
        lines.append(
            f"{protocol:<10} {summary.median:8.1f} {summary.mean:8.1f} "
            f"{summary.p10:8.1f} {summary.p90:8.1f} {summary.count:4d}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Figure 4-2: CDF of unicast throughput, MORE vs ExOR vs Srcr
# --------------------------------------------------------------------------- #

def figure_4_2(topology: Topology | None = None, pair_count: int = 12, seed: int = 1,
               config: RunConfig | None = None) -> FigureResult:
    """Unicast throughput comparison over random pairs (paper Fig 4-2).

    Paper result: MORE median 22% above ExOR, 95% above Srcr; some pairs gain
    10-12x over Srcr; MORE's 10th percentile above 50 pkt/s vs Srcr's 10.
    """
    mesh = topology if topology is not None else default_testbed()
    pairs = random_pairs(mesh, pair_count, seed=seed)
    run_config = config if config is not None else RunConfig(seed=seed)
    results = compare_protocols(mesh, pairs, config=run_config)
    series = {name: _throughputs(flows) for name, flows in results.items()}
    summary = {
        "more_over_exor_median_gain": median_gain(series["MORE"], series["ExOR"]),
        "more_over_srcr_median_gain": median_gain(series["MORE"], series["Srcr"]),
        "more_p10": summarize(series["MORE"]).p10,
        "srcr_p10": summarize(series["Srcr"]).p10,
        "max_pairwise_gain_over_srcr": max(pairwise_gains(series["MORE"], series["Srcr"]),
                                           default=float("nan")),
    }
    report = (
        "Figure 4-2: unicast throughput CDF (pkt/s)\n"
        + _format_protocol_table(series)
        + f"\nMORE/ExOR median gain: {summary['more_over_exor_median_gain']:.2f}x"
        + f"\nMORE/Srcr median gain: {summary['more_over_srcr_median_gain']:.2f}x"
        + f"\nmax per-pair MORE/Srcr gain: {summary['max_pairwise_gain_over_srcr']:.1f}x"
    )
    cdfs = {name: cdf(values) for name, values in series.items()}
    return FigureResult(name="figure_4_2", series=series, summary=summary, report=report,
                        extras={"pairs": pairs, "cdf": cdfs, "results": results})


# --------------------------------------------------------------------------- #
# Figure 4-3: scatter of per-pair throughput, opportunistic vs Srcr
# --------------------------------------------------------------------------- #

def figure_4_3(topology: Topology | None = None, pair_count: int = 12, seed: int = 1,
               config: RunConfig | None = None) -> FigureResult:
    """Per-pair scatter MORE-vs-Srcr and ExOR-vs-Srcr (paper Fig 4-3).

    Paper result: points far above the 45-degree line are the challenged
    (low-Srcr-throughput) flows; good Srcr flows do not improve much.
    """
    base = figure_4_2(topology, pair_count=pair_count, seed=seed, config=config)
    srcr = base.series["Srcr"]
    more = base.series["MORE"]
    exor = base.series["ExOR"]
    # Split pairs into challenged (below-median Srcr throughput) and good.
    srcr_median = median(srcr)
    challenged_gains = [m / s for m, s in zip(more, srcr) if s <= srcr_median and s > 0]
    good_gains = [m / s for m, s in zip(more, srcr) if s > srcr_median]
    summary = {
        "mean_gain_challenged": (float(np.mean(challenged_gains))
                                 if challenged_gains else float("nan")),
        "mean_gain_good": float(np.mean(good_gains)) if good_gains else float("nan"),
        "fraction_above_diagonal_more": float(np.mean([m > s for m, s in zip(more, srcr)])),
        "fraction_above_diagonal_exor": float(np.mean([e > s for e, s in zip(exor, srcr)])),
    }
    report = (
        "Figure 4-3: scatter of per-pair throughput vs Srcr\n"
        f"mean MORE/Srcr gain for challenged flows: {summary['mean_gain_challenged']:.2f}x\n"
        f"mean MORE/Srcr gain for good flows:       {summary['mean_gain_good']:.2f}x\n"
        f"fraction of pairs above the diagonal (MORE): "
        f"{summary['fraction_above_diagonal_more']:.2f}\n"
        f"fraction of pairs above the diagonal (ExOR): "
        f"{summary['fraction_above_diagonal_exor']:.2f}"
    )
    series = {"Srcr": srcr, "MORE": more, "ExOR": exor}
    return FigureResult(name="figure_4_3", series=series, summary=summary, report=report,
                        extras={"pairs": base.extras["pairs"]})


# --------------------------------------------------------------------------- #
# Figure 4-4: spatial reuse on 4-hop paths
# --------------------------------------------------------------------------- #

def figure_4_4(topology: Topology | None = None, pair_count: int = 6, seed: int = 2,
               path_hops: int = 4, config: RunConfig | None = None) -> FigureResult:
    """Throughput on multi-hop paths with spatial reuse (paper Fig 4-4).

    Paper result: for 4-hop flows whose last hop can transmit concurrently
    with the first, MORE's median throughput is about 50% above ExOR.
    """
    mesh = topology if topology is not None else default_testbed()
    pairs = spatial_reuse_pairs(mesh, pair_count, seed=seed, path_hops=path_hops)
    if not pairs:
        # Fall back to the longest available paths so the harness still runs
        # on small or dense topologies.
        pairs = random_pairs(mesh, pair_count, seed=seed, min_hops=max(2, path_hops - 1))
    run_config = config if config is not None else RunConfig(seed=seed)
    results = compare_protocols(mesh, pairs, config=run_config)
    series = {name: _throughputs(flows) for name, flows in results.items()}
    summary = {
        "more_over_exor_median_gain": median_gain(series["MORE"], series["ExOR"]),
        "more_over_srcr_median_gain": median_gain(series["MORE"], series["Srcr"]),
        "pair_count": float(len(pairs)),
    }
    report = (
        f"Figure 4-4: spatial reuse ({path_hops}-hop paths, {len(pairs)} pairs)\n"
        + _format_protocol_table(series)
        + f"\nMORE/ExOR median gain: {summary['more_over_exor_median_gain']:.2f}x"
    )
    return FigureResult(name="figure_4_4", series=series, summary=summary, report=report,
                        extras={"pairs": pairs})


# --------------------------------------------------------------------------- #
# Figure 4-5: multiple concurrent flows
# --------------------------------------------------------------------------- #

def figure_4_5(topology: Topology | None = None, max_flows: int = 4, runs_per_point: int = 3,
               seed: int = 3, config: RunConfig | None = None) -> FigureResult:
    """Average per-flow throughput vs number of concurrent flows (paper Fig 4-5).

    Paper result: MORE and ExOR stay above Srcr but their advantage shrinks
    as congestion grows; opportunistic routing does not add capacity.
    """
    mesh = topology if topology is not None else default_testbed()
    run_config = config if config is not None else RunConfig(seed=seed)
    series: dict[str, list[float]] = {"MORE": [], "ExOR": [], "Srcr": []}
    per_count: dict[str, dict[int, float]] = {name: {} for name in series}
    # Draw one set of max_flows pairs per run and reuse its prefixes for the
    # 1..max_flows points, so the series is comparable across flow counts
    # (the paper averages 40 independent runs per point; at example scale the
    # prefix construction removes most of the pair-selection noise).
    base_sets = multiflow_sets(mesh, max_flows, runs_per_point, seed=seed)
    for flow_count in range(1, max_flows + 1):
        flow_sets = [base[:flow_count] for base in base_sets]
        for protocol in series:
            throughputs = []
            for flow_set in flow_sets:
                results = run_flows(mesh, protocol, flow_set, config=run_config)
                throughputs.extend(_throughputs(results))
            average = float(np.mean(throughputs)) if throughputs else float("nan")
            series[protocol].append(average)
            per_count[protocol][flow_count] = average
    summary = {
        f"{protocol.lower()}_single_flow": series[protocol][0] for protocol in series
    }
    summary.update({
        f"{protocol.lower()}_at_{max_flows}_flows": series[protocol][-1] for protocol in series
    })
    lines = ["Figure 4-5: average per-flow throughput vs concurrent flows (pkt/s)",
             f"{'flows':<6}" + "".join(f"{name:>10}" for name in series)]
    for index in range(max_flows):
        lines.append(f"{index + 1:<6}" + "".join(f"{series[name][index]:10.1f}" for name in series))
    return FigureResult(name="figure_4_5", series=series,
                        summary=summary, report="\n".join(lines),
                        extras={"per_count": per_count})


# --------------------------------------------------------------------------- #
# Figure 4-6: Srcr with autorate vs opportunistic routing at 11 Mb/s
# --------------------------------------------------------------------------- #

def figure_4_6(topology: Topology | None = None, pair_count: int = 8, seed: int = 4,
               config: RunConfig | None = None) -> FigureResult:
    """Autorate comparison (paper Fig 4-6).

    Paper result: MORE and ExOR at a fixed 11 Mb/s keep their advantage over
    Srcr even when Srcr uses Onoe autorate; autorate often does no better
    than the fixed maximum rate.
    """
    mesh = topology if topology is not None else default_testbed()
    pairs = random_pairs(mesh, pair_count, seed=seed)
    base_config = config if config is not None else RunConfig(seed=seed)

    fixed_config = RunConfig(**{**base_config.__dict__})
    fixed_config.bitrate = RATE_11MBPS
    opportunistic = compare_protocols(mesh, pairs, protocols=("MORE", "ExOR"),
                                      config=fixed_config)

    srcr_fixed = compare_protocols(mesh, pairs, protocols=("Srcr",), config=fixed_config)

    autorate_config = RunConfig(**{**base_config.__dict__})
    autorate_config.bitrate = RATE_11MBPS
    autorate_config.srcr_autorate = True
    srcr_autorate = compare_protocols(mesh, pairs, protocols=("Srcr",),
                                      config=autorate_config)

    series = {
        "MORE": _throughputs(opportunistic["MORE"]),
        "ExOR": _throughputs(opportunistic["ExOR"]),
        "Srcr": _throughputs(srcr_fixed["Srcr"]),
        "Srcr autorate": _throughputs(srcr_autorate["Srcr"]),
    }
    summary = {
        "more_over_srcr_autorate_median_gain": median_gain(series["MORE"],
                                                           series["Srcr autorate"]),
        "exor_over_srcr_autorate_median_gain": median_gain(series["ExOR"],
                                                           series["Srcr autorate"]),
        "autorate_over_fixed_median_gain": median_gain(series["Srcr autorate"],
                                                       series["Srcr"]),
    }
    report = (
        "Figure 4-6: opportunistic routing vs Srcr with autorate (11 Mb/s, pkt/s)\n"
        + _format_protocol_table(series)
        + "\nMORE / Srcr-autorate median gain: "
        + f"{summary['more_over_srcr_autorate_median_gain']:.2f}x"
    )
    return FigureResult(name="figure_4_6", series=series, summary=summary, report=report,
                        extras={"pairs": pairs})


# --------------------------------------------------------------------------- #
# Figure 4-7: batch size sensitivity
# --------------------------------------------------------------------------- #

def figure_4_7(topology: Topology | None = None, pair_count: int = 6, seed: int = 5,
               batch_sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
               config: RunConfig | None = None) -> FigureResult:
    """Throughput sensitivity to the batch size K (paper Fig 4-7).

    Paper result: MORE is nearly insensitive to K; ExOR degrades noticeably
    for small batches (K = 8).
    """
    mesh = topology if topology is not None else default_testbed()
    pairs = random_pairs(mesh, pair_count, seed=seed)
    base_config = config if config is not None else RunConfig(seed=seed)
    series: dict[str, list[float]] = {}
    medians: dict[str, dict[int, float]] = {"MORE": {}, "ExOR": {}}
    for batch_size in batch_sizes:
        run_config = RunConfig(**{**base_config.__dict__})
        run_config.batch_size = batch_size
        run_config.total_packets = max(batch_size * 2, base_config.total_packets)
        results = compare_protocols(mesh, pairs, protocols=("MORE", "ExOR"), config=run_config)
        for protocol in ("MORE", "ExOR"):
            values = _throughputs(results[protocol])
            series[f"{protocol} K={batch_size}"] = values
            medians[protocol][batch_size] = median(values)
    more_spread = _relative_spread(list(medians["MORE"].values()))
    exor_spread = _relative_spread(list(medians["ExOR"].values()))
    summary = {
        "more_relative_spread": more_spread,
        "exor_relative_spread": exor_spread,
        "exor_k8_vs_k32": (medians["ExOR"][8] / medians["ExOR"][32]
                           if 8 in medians["ExOR"] and medians["ExOR"].get(32, 0) > 0
                           else float("nan")),
        "more_k8_vs_k32": (medians["MORE"][8] / medians["MORE"][32]
                           if 8 in medians["MORE"] and medians["MORE"].get(32, 0) > 0
                           else float("nan")),
    }
    lines = ["Figure 4-7: batch size sensitivity (median pkt/s)",
             f"{'K':<6}{'MORE':>10}{'ExOR':>10}"]
    for batch_size in batch_sizes:
        lines.append(f"{batch_size:<6}{medians['MORE'][batch_size]:10.1f}"
                     f"{medians['ExOR'][batch_size]:10.1f}")
    lines.append(f"relative spread of medians: MORE {more_spread:.2f}, ExOR {exor_spread:.2f}")
    return FigureResult(name="figure_4_7", series=series, summary=summary,
                        report="\n".join(lines), extras={"medians": medians, "pairs": pairs})


def _relative_spread(values: list[float]) -> float:
    """(max - min) / max of a list of medians; 0 means perfectly insensitive."""
    if not values or max(values) <= 0:
        return float("nan")
    return (max(values) - min(values)) / max(values)


# --------------------------------------------------------------------------- #
# Table 4.1: computational cost of packet operations
# --------------------------------------------------------------------------- #

def table_4_1(batch_size: int = 32, packet_size: int = 1500, iterations: int = 50,
              seed: int = 0, rounds: int = 5) -> FigureResult:
    """Micro-benchmark of MORE's packet operations (paper Table 4.1).

    Paper numbers on a Celeron 800 MHz: independence check 10 us, coding at
    the source 270 us, decoding 260 us per 1500 B packet at K=32.  Absolute
    values differ on modern hardware; the structural claims (coding and
    decoding cost are comparable and dominate, the independence check is an
    order of magnitude cheaper, cost scales with K) are checked instead.

    Every quantity is measured ``rounds`` times and the best (minimum)
    per-operation time is kept — the standard best-of-N discipline, so a
    scheduler preemption or a busy sibling process inflates individual
    rounds without distorting the reported figure.
    """
    rng = np.random.default_rng(seed)
    batch = make_batch(batch_size=batch_size, packet_size=packet_size, rng=rng)
    encoder = SourceEncoder(batch, rng)

    def best_of(measure) -> float:
        """Minimum per-operation time (in us) over ``rounds`` measurements."""
        return min(measure() for _ in range(max(1, rounds))) * 1e6

    def measure_coding() -> float:
        # repro: allow-DET001 — Figure-11 harness measures real CPU cost
        start = time.perf_counter()
        for _ in range(iterations):
            encoder.next_packet()
        return (time.perf_counter() - start) / iterations  # repro: allow-DET001

    coding_us = best_of(measure_coding)

    def measure_decoding() -> float:
        decoder = BatchDecoder(batch_size=batch_size, packet_size=packet_size)
        packets = encoder.next_packets(batch_size)
        # repro: allow-DET001 — Figure-11 harness measures real CPU cost
        start = time.perf_counter()
        for packet in packets:
            decoder.add_packet(packet)
        return (time.perf_counter() - start) / batch_size  # repro: allow-DET001

    decoding_us = best_of(measure_decoding)

    # The independence check is measured against a half-full buffer — the
    # steady state a forwarder sees mid-batch — using probes that do reduce
    # against stored rows.
    check_buffer = BatchBuffer(batch_size, packet_size, track_payloads=False)
    for packet in encoder.next_packets(max(1, batch_size // 2)):
        check_buffer.add(packet)
    probes = [packet.code_vector for packet in encoder.next_packets(iterations)]

    def measure_check() -> float:
        # repro: allow-DET001 — Figure-11 harness measures real CPU cost
        start = time.perf_counter()
        for probe in probes:
            check_buffer.is_innovative(probe)
        return (time.perf_counter() - start) / len(probes)  # repro: allow-DET001

    independence_us = best_of(measure_check)

    series = {
        "independence_check_us": [independence_us],
        "coding_at_source_us": [coding_us],
        "decoding_us": [decoding_us],
    }
    summary = {
        "independence_check_us": independence_us,
        "coding_at_source_us": coding_us,
        "decoding_us": decoding_us,
        "coding_over_check_ratio": (coding_us / independence_us
                                    if independence_us > 0 else float("inf")),
        "throughput_mbps_bound": packet_size * 8 / coding_us if coding_us > 0 else float("inf"),
    }
    report = (
        f"Table 4.1: packet operation cost (K={batch_size}, {packet_size} B)\n"
        f"independence check: {independence_us:8.1f} us   (paper: 10 us)\n"
        f"coding at source:   {coding_us:8.1f} us   (paper: 270 us)\n"
        f"decoding:           {decoding_us:8.1f} us   (paper: 260 us)\n"
        f"implied coding throughput bound: {summary['throughput_mbps_bound']:.1f} Mb/s"
    )
    return FigureResult(name="table_4_1", series=series, summary=summary, report=report)


# --------------------------------------------------------------------------- #
# Figure 5-1 / Section 5.7: ETX-order vs EOTX-order cost gap
# --------------------------------------------------------------------------- #

def figure_5_1(bridge_deliveries: tuple[float, ...] = (0.3, 0.2, 0.1, 0.05, 0.02),
               branch_count: int = 8, testbed_pairs: int = 20,
               seed: int = 6) -> FigureResult:
    """ETX vs EOTX ordering gap (paper Fig 5-1 and Section 5.7).

    Paper result: on the contrived topology the gap grows without bound as
    the bridge link weakens (limit = number of C branches); on the testbed
    more than 40% of flows are unaffected and the median gap of affected
    flows is about 0.2%.
    """
    analytic = {p: figure_5_1_gap(p, branch_count) for p in bridge_deliveries}
    measured = {}
    for p in bridge_deliveries:
        topology = cost_gap_topology(bridge_delivery=p, branch_count=branch_count)
        destination = topology.node_count - 1
        results = gap_survey(topology, [(0, destination)])
        measured[p] = results[0].gap

    testbed = default_testbed(seed=seed)
    pairs = random_pairs(testbed, testbed_pairs, seed=seed)
    survey = gap_survey(testbed, pairs)
    testbed_summary = summarize_gaps(survey)

    series = {
        "bridge_delivery": list(bridge_deliveries),
        "analytic_gap": [analytic[p] for p in bridge_deliveries],
        "measured_gap": [measured[p] for p in bridge_deliveries],
    }
    summary = {
        "max_gap": max(measured.values()),
        "testbed_fraction_unaffected": testbed_summary["fraction_unaffected"],
        "testbed_median_gap_affected": testbed_summary["median_gap_affected"],
    }
    lines = [f"Figure 5-1: ETX vs EOTX cost gap (k={branch_count} branches)",
             f"{'p':<8}{'analytic':>10}{'measured':>10}"]
    for p in bridge_deliveries:
        lines.append(f"{p:<8.2f}{analytic[p]:10.2f}{measured[p]:10.2f}")
    lines.append(
        f"testbed: {summary['testbed_fraction_unaffected'] * 100:.0f}% of flows unaffected, "
        f"median gap of affected flows {summary['testbed_median_gap_affected'] * 100:.2f}%"
    )
    return FigureResult(name="figure_5_1", series=series, summary=summary,
                        report="\n".join(lines), extras={"testbed_survey": survey})


ALL_FIGURES = {
    "figure_4_2": figure_4_2,
    "figure_4_3": figure_4_3,
    "figure_4_4": figure_4_4,
    "figure_4_5": figure_4_5,
    "figure_4_6": figure_4_6,
    "figure_4_7": figure_4_7,
    "table_4_1": table_4_1,
    "figure_5_1": figure_5_1,
}
