"""Online link-state refresh: the control plane that can go stale.

The paper's harnesses compute every forwarding plan once, at t=0, from a
single probe-measurement phase (Section 4.1.2) — which is fine for a frozen
testbed but sidesteps the question its own argument raises: how well does
each protocol cope as its link state *ages*?  This module closes the loop:
a :class:`LinkStateRefresher` is a recurring simulator event that, every
``refresh_period`` simulated seconds,

1. snapshots the topology as it stands *now*
   (:meth:`~repro.sim.medium.WirelessMedium.effective_topology` — under
   mobility/churn this is the current epoch's realisation),
2. re-runs the probe estimation of Section 3.1.1 over it
   (:func:`~repro.topology.estimation.probe_estimated_topology`, with fresh
   sampling noise per refresh), and
3. rebuilds every installed flow's control state **mid-flow**: MORE's
   forwarder list + TX credits + ACK route (Algorithm 1 + Eq. 3.3 +
   pruning), ExOR's prioritised participant list and cleanup/ACK routes,
   and Srcr's best-ETX route (with detour next-hops for relays stranded
   off the new route by in-flight packets).

``refresh_period=inf`` (the default) schedules nothing at all, reproducing
today's static plans bit for bit; sweeping ``run.refresh_period`` turns
link-state staleness into an experiment axis — the ``stale_state_sweep``
preset compares MORE vs ExOR vs Srcr as plans age under mobility, which is
the structure-vs-randomness trade-off made measurable.

Refresh computations draw only from their own seed-derived stream (the
probe-noise RNG is seeded by ``(seed, refresh index)``), never from the
simulator's main generator, so enabling a refresh loop perturbs no channel
or MAC randomness.  A refresh that finds the endpoints disconnected in the
control view keeps the stale plan and retries next period — exactly what a
real control plane would do.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.metrics.credits import forwarding_plan
from repro.metrics.etx import best_path
from repro.protocols.exor.agent import (
    ExorAgent,
    ExorFlowHandle,
    _get_or_create_agent as _exor_agent,
)
from repro.protocols.more.agent import MoreAgent
from repro.protocols.more.flow import (
    MoreFlowHandle,
    _get_or_create_agent as _more_agent,
)
from repro.protocols.more.header import ForwarderEntry
from repro.protocols.srcr.agent import (
    SrcrAgent,
    SrcrFlowHandle,
    _get_or_create_agent as _srcr_agent,
)
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.experiments.runner import RunConfig
    from repro.sim.simulator import Simulator

#: Probe-noise stream tag for supervisor-initiated re-plans, so recovery
#: replans never consume the periodic refresher's ``(seed, round)`` stream.
_SUPERVISOR_STREAM = 0x5FA17


def mask_dead_nodes(topology: Topology, dead: frozenset[int]) -> Topology:
    """The control plane's view of a topology with ``dead`` nodes in it.

    A crashed (or control-silent) node answers no probes, so every link
    into or out of it measures as zero — plans computed over the masked
    view route around the corpse.  Returns ``topology`` itself when
    nothing is dead.
    """
    if not dead:
        return topology
    delivery = topology.delivery_matrix()
    indices = sorted(dead)
    delivery[indices, :] = 0.0
    delivery[:, indices] = 0.0
    positions = [node.position for node in topology.nodes]
    if not any(positions):
        positions = None
    return Topology(delivery, positions=positions,
                    names=[node.name for node in topology.nodes])


class LinkStateRefresher:
    """Recurring mid-flow control-plane rebuild for a set of flow handles.

    Attributes:
        refreshes: completed refresh rounds.
        skipped_flows: per-flow refreshes skipped because the control view
            had the endpoints disconnected (the stale plan was kept).
    """

    def __init__(self, sim: "Simulator", handles: list, config: "RunConfig") -> None:
        self.sim = sim
        self.handles = list(handles)
        self.config = config
        self.period = float(config.refresh_period)
        self.refreshes = 0
        self.skipped_flows = 0

    @property
    def enabled(self) -> bool:
        """True if a finite period and at least one flow make refreshing real."""
        return bool(self.handles) and math.isfinite(self.period) and self.period > 0

    def install(self) -> "LinkStateRefresher":
        """Schedule the first refresh; a no-op for ``refresh_period=inf``.

        With refreshing disabled not even an event is scheduled, so static
        runs are bit-identical to a build without this subsystem.
        """
        if self.enabled:
            self.sim.schedule_callback(self.period, self._tick)
        return self

    def control_view(self) -> Topology:
        """The link-state estimates of this refresh round.

        Probes measure the topology *as it stands now*
        (:meth:`RunConfig.control_view` over the medium's current
        snapshot); each round uses a fresh probe-noise stream seeded by
        ``(seed, round)`` so estimates are independent samples yet replay
        identically run to run.  Crashed and control-silent nodes answer
        no probes, so the view masks them out and plans route around them
        (:func:`mask_dead_nodes`).
        """
        true_topology = self.sim.medium.effective_topology(self.sim.now)
        faults = self.sim.faults
        if faults is not None:
            true_topology = mask_dead_nodes(
                true_topology, faults.control_dead(self.sim.now))
        return self.config.control_view(true_topology,
                                        seed=(self.config.seed, self.refreshes))

    def _tick(self) -> None:
        self.refreshes += 1
        control = self.control_view()
        for handle in self.handles:
            try:
                refresh_flow(self.sim, handle, control, self.config)
            except ValueError:
                # Endpoints disconnected in the control view: keep the
                # stale plan, retry next round (what a real control plane
                # does when probes stop returning).
                self.skipped_flows += 1
        self.sim.schedule_callback(self.period, self._tick)


class FlowSupervisor:
    """Per-flow progress watchdog: bounded re-plans, then a structured abort.

    The graceful-degradation half of the fault story.  Every
    ``progress_timeout`` simulated seconds each unfinished flow's delivery
    counters are compared against the previous check; a flow that moved
    nothing for a whole period is first **re-planned** over the
    fault-masked control view (up to :data:`MAX_REPLANS` times — MORE
    repairs its forwarder set and credits, ExOR re-ranks, Srcr detours)
    and, once re-plans are exhausted, **aborted** via
    :meth:`~repro.sim.trace.StatsCollector.record_abort` — a structured
    ``FlowAborted`` outcome that terminates the run instead of letting a
    crashed forwarder set spin it to ``max_duration``.

    ``progress_timeout=inf`` (the default) schedules nothing at all:
    unsupervised runs are bit-identical to a build without this class.

    Attributes:
        total_replans: recovery re-plans issued across all flows.
        aborts: flows given up on.
    """

    #: Re-plan attempts per flow before the structured abort.
    MAX_REPLANS = 3

    def __init__(self, sim: "Simulator", handles: list,
                 config: "RunConfig") -> None:
        self.sim = sim
        self.handles = list(handles)
        self.config = config
        self.period = float(config.progress_timeout)
        self.total_replans = 0
        self.aborts = 0
        self._replans: dict[int, int] = {}
        self._fingerprints: dict[int, tuple[int, int, int]] = {}

    @property
    def enabled(self) -> bool:
        """True if a finite timeout and at least one flow make it real."""
        return bool(self.handles) and math.isfinite(self.period) \
            and self.period > 0

    def install(self) -> "FlowSupervisor":
        """Schedule the first check; a no-op for ``progress_timeout=inf``."""
        if self.enabled:
            self.sim.schedule_callback(self.period, self._tick)
        return self

    def control_view(self) -> Topology:
        """Fault-masked link estimates for a recovery re-plan.

        Draws from its own ``(seed, stream, re-plan index)`` probe-noise
        stream so recovery never perturbs the periodic refresher's.
        """
        sim = self.sim
        topology = sim.medium.effective_topology(sim.now)
        faults = sim.faults
        if faults is not None:
            topology = mask_dead_nodes(topology,
                                       faults.control_dead(sim.now))
        return self.config.control_view(
            topology,
            seed=(self.config.seed, _SUPERVISOR_STREAM, self.total_replans))

    def _tick(self) -> None:
        sim = self.sim
        stats = sim.stats
        if stats.all_flows_complete():
            return  # terminal: every flow finished, stop rescheduling
        now = sim.events.now
        control: Topology | None = None
        for handle in self.handles:
            record = stats.flows[handle.flow_id]
            if record.finished:
                continue
            fingerprint = (record.delivered_packets,
                           record.delivered_batches,
                           record.duplicate_packets)
            if fingerprint != self._fingerprints.get(handle.flow_id):
                self._fingerprints[handle.flow_id] = fingerprint
                continue
            replans = self._replans.get(handle.flow_id, 0)
            if replans < self.MAX_REPLANS:
                self._replans[handle.flow_id] = replans + 1
                self.total_replans += 1
                if control is None:
                    control = self.control_view()
                try:
                    refresh_flow(sim, handle, control, self.config)
                except ValueError:
                    # Endpoints unreachable in the masked view (the crash
                    # partitioned the mesh, or an endpoint is down): keep
                    # the stale plan; retry or abort at the next check.
                    pass
                sim.trigger_node(record.source)
            else:
                self.aborts += 1
                faults = sim.faults
                down = sorted(faults.down_nodes()) if faults is not None \
                    else []
                stats.record_abort(
                    handle.flow_id, now,
                    reason=(f"no progress for {self.period:g}s after "
                            f"{replans} recovery re-plan(s); down nodes "
                            f"{down}"))
        self.sim.schedule_callback(self.period, self._tick)


def refresh_flow(sim: "Simulator", handle, control: Topology,
                 config: "RunConfig") -> None:
    """Rebuild one flow's control state from fresh link estimates."""
    if isinstance(handle, MoreFlowHandle):
        refresh_more_flow(sim, handle, control, config)
    elif isinstance(handle, ExorFlowHandle):
        refresh_exor_flow(sim, handle, control, config)
    elif isinstance(handle, SrcrFlowHandle):
        refresh_srcr_flow(sim, handle, control, config)
    else:
        raise TypeError(f"cannot refresh flow handle of type {type(handle).__name__}")


def refresh_more_flow(sim: "Simulator", handle: MoreFlowHandle,
                      control: Topology, config: "RunConfig") -> None:
    """Recompute a MORE flow's plan (Algorithm 1 + Eq. 3.3 + pruning) in place.

    The :class:`~repro.protocols.more.agent.MoreFlowSpec` is one object
    shared by every agent of the flow, so mutating its plan fields (and
    dropping the memoised header constants) retargets all of them at once;
    newly recruited forwarders and ACK relays get state installed, and every
    existing forwarder re-derives its cached credits / upstream sets.
    """
    spec = handle.spec
    # A flow set up with a relay cap (kilonode relay-count axis) keeps the
    # same cap across refreshes — top-N by expected load, not the 10% rule.
    plan = forwarding_plan(control, spec.source, spec.destination,
                           metric=config.more_metric, prune=True,
                           max_forwarders=spec.max_relays)
    ack_route = best_path(control, spec.destination, spec.source)
    intermediates = plan.forwarder_list(include_endpoints=False)
    spec.forwarders = [
        ForwarderEntry(node_id=node, tx_credit=float(plan.tx_credit[node]))
        for node in intermediates
    ]
    spec.tx_credit = {node: float(plan.tx_credit[node]) for node in plan.participants}
    spec.distances = {node: float(plan.distances[node]) for node in plan.participants}
    spec.ack_route = ack_route
    spec.invalidate_plan_caches()
    for node in intermediates:
        agent = _more_agent(sim, node, config.seed)
        if spec.flow_id not in agent.forward_flows:
            agent.install_forwarder(spec)
    for node in ack_route[1:-1]:
        agent = _more_agent(sim, node, config.seed)
        if spec.flow_id not in agent.specs:
            agent.install_ack_relay(spec)
    for sim_node in sim.nodes:
        agent = sim_node.agent
        if isinstance(agent, MoreAgent):
            state = agent.forward_flows.get(spec.flow_id)
            if state is not None:
                state.refresh_from_spec()


def refresh_exor_flow(sim: "Simulator", handle: ExorFlowHandle,
                      control: Topology, config: "RunConfig") -> None:
    """Recompute an ExOR flow's prioritised forwarder list and routes.

    Participants are re-ranked by the fresh ETX distances; nodes keep their
    transfer progress (:meth:`~repro.protocols.exor.agent.ExorAgent.adopt_flow`
    is the idempotent installer) and the strict schedule clamps its position
    into the resized list.
    """
    spec = handle.spec
    # Compute everything that can fail BEFORE the first spec mutation, so a
    # ValueError (e.g. an asymmetric control view with no reverse route)
    # leaves the old plan fully intact for the caller to keep.
    plan = forwarding_plan(control, spec.source, spec.destination,
                           metric="etx", prune=True)
    forward_route = best_path(control, spec.source, spec.destination)
    reverse_route = best_path(control, spec.destination, spec.source)
    spec.participants = list(plan.participants)
    spec.forward_route = forward_route
    spec.reverse_route = reverse_route
    spec.invalidate_plan_caches()
    involved = set(spec.participants) | set(spec.forward_route) \
        | set(spec.reverse_route)
    for node in involved:
        _exor_agent(sim, node).adopt_flow(spec, handle.scheduler)
    for sim_node in sim.nodes:
        agent = sim_node.agent
        if sim_node.node_id not in involved and isinstance(agent, ExorAgent) \
                and spec.flow_id in agent.specs:
            agent.adopt_flow(spec, handle.scheduler)
    handle.scheduler.notice_participants_changed()


def refresh_srcr_flow(sim: "Simulator", handle: SrcrFlowHandle,
                      control: Topology, config: "RunConfig") -> None:
    """Recompute an Srcr flow's best-ETX route; detour stranded relays.

    Relays holding queued packets but lying off the new route get per-node
    detour next-hops (their own best path to the destination, spliced onto
    the new route where they meet it) so in-flight traffic keeps moving —
    without them the old route's tail would strand packets forever.
    """
    spec = handle.spec
    route = best_path(control, spec.source, spec.destination)
    spec.route = route
    spec.detours = {}
    autorate = config.srcr_autorate
    for node in route:
        _srcr_agent(sim, node, autorate).install_flow(spec)
    route_set = set(route)
    for sim_node in sim.nodes:
        agent = sim_node.agent
        if not isinstance(agent, SrcrAgent):
            continue
        queue = agent.queues.get(spec.flow_id)
        if not queue:
            continue
        node_id = sim_node.node_id
        if node_id not in route_set and node_id not in spec.detours \
                and node_id != spec.destination:
            try:
                path = best_path(control, node_id, spec.destination)
            except ValueError:
                continue  # currently unreachable: strand until next refresh
            for hop, following in zip(path, path[1:]):
                if hop in route_set:
                    break
                spec.detours[hop] = following
                _srcr_agent(sim, following, autorate).install_flow(spec)
        # The next hop may have changed while the node sat idle.
        sim.trigger_node(node_id)
