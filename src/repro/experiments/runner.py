"""Flow runner: execute one experiment (one or more flows) on the simulator.

The runner is what every figure-reproduction function and benchmark calls:
it builds a fresh :class:`~repro.sim.simulator.Simulator` over a topology,
installs the requested protocol's flows, runs to completion (or a time
limit) and returns per-flow throughput in packets per second — the metric
the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.coding.buffer import ENGINES as CODING_ENGINES
from repro.experiments.refresh import FlowSupervisor, LinkStateRefresher
from repro.protocols.exor import setup_exor_flow
from repro.protocols.more import setup_more_flow
from repro.protocols.srcr import setup_srcr_flow
from repro.sim.channels import ChannelSpec
from repro.sim.faults import FaultSpec
from repro.sim.radio import RATE_5_5MBPS, PhyConfig, SimConfig
from repro.sim.simulator import Simulator
from repro.topology.estimation import (
    DEFAULT_OPTIMISM_EXPONENT,
    DEFAULT_PROBE_COUNT,
    probe_estimated_topology,
)
from repro.topology.graph import Topology
from repro.topology.mobility import MobilitySpec

#: Protocol names accepted by the runner.
PROTOCOLS = ("MORE", "ExOR", "Srcr")


@dataclass
class FlowResult:
    """Outcome of one flow in one simulation run."""

    protocol: str
    source: int
    destination: int
    throughput_pkts: float
    duration: float
    delivered_packets: int
    total_packets: int
    completed: bool
    data_transmissions: int
    #: True when the flow ended as a structured ``FlowAborted`` outcome
    #: (progress timeout under faults) instead of completing or timing out
    #: against ``max_duration``; ``abort_reason`` is the supervisor's why.
    aborted: bool = False
    abort_reason: str = ""

    @property
    def throughput(self) -> float:
        """Alias for ``throughput_pkts`` (packets per second)."""
        return self.throughput_pkts


@dataclass
class RunConfig:
    """Knobs shared by all experiment runs.

    The defaults are scaled down from the paper's 5 MB transfers so the whole
    benchmark suite runs in minutes; pass ``total_packets=3495`` (5 MB /
    1500 B) to reproduce the paper's transfer size exactly.

    ``estimation_exponent`` / ``estimation_probes`` control the probe-based
    link-quality estimates fed to every protocol's control plane (see
    :mod:`repro.topology.estimation`); set the exponent to 1.0 and probes to
    0 for a perfectly informed control plane (the ablation case).

    ``channel`` selects the channel model the medium resolves receptions
    against, as a :class:`~repro.sim.channels.ChannelSpec` dict
    (``{"kind": ..., "params": {...}}``); ``None`` is the static Bernoulli
    delivery matrix.  Scenario specs thread their ``channel`` section
    through here (see :meth:`repro.scenarios.spec.ScenarioSpec.run_config`).

    ``vector_only`` enables the payload-free fast path: delivery, rank
    progression and throughput are fully determined by code vectors, so
    runs that never assert payload bytes can skip all payload arithmetic
    (MORE codes over zero-length payloads, superseding
    ``coding_payload_size``; air time still uses ``packet_size``).  Results
    are bit-identical to a payload-carrying run
    with the same seeds — empty RNG draws consume no generator state — just
    faster.  Set it per scenario with the ``run.vector_only`` override or
    ``repro run/sweep --vector-only``.
    """

    total_packets: int = 96
    batch_size: int = 32
    packet_size: int = 1500
    bitrate: int = RATE_5_5MBPS
    seed: int = 0
    max_duration: float = 120.0
    coding_payload_size: int = 16
    srcr_autorate: bool = False
    more_metric: str = "etx"
    estimation_exponent: float = DEFAULT_OPTIMISM_EXPONENT
    estimation_probes: int = DEFAULT_PROBE_COUNT
    vector_only: bool = False
    channel: dict[str, Any] | None = field(default=None)
    #: Mobility / link-churn model for a dynamic topology, as a
    #: :class:`~repro.topology.mobility.MobilitySpec` dict (``None`` =
    #: static topology, today's behaviour bit for bit).
    mobility: dict[str, Any] | None = field(default=None)
    #: Seconds between link-state refreshes: a recurring simulator event
    #: that re-probes the (possibly moved) topology and rebuilds every
    #: flow's forwarding plan / forwarder list / route mid-flow.  ``inf``
    #: (the default) never refreshes — plans are computed once at t=0,
    #: exactly like the paper's harnesses — which makes staleness a sweep
    #: axis (``run.refresh_period``).  Accepts the string ``"inf"`` so the
    #: axis stays plain JSON.
    refresh_period: float = math.inf
    #: Event-engine / hot-path selection: ``fast`` (default) or ``legacy``
    #: (the pre-optimisation reference; bit-identical results, slower —
    #: see :class:`repro.sim.radio.SimConfig` and docs/performance.md).
    engine: str = "fast"
    #: Coding-buffer insertion engine for MORE flows: ``auto`` (default;
    #: follows ``engine`` — vectorized deferred-transform under ``fast``,
    #: the scalar reference under ``legacy``) or an explicit
    #: ``vectorized`` / ``eager`` / ``scalar``.  All bit-identical; see
    #: :class:`repro.coding.buffer.BatchBuffer` and docs/performance.md.
    decode_engine: str = "auto"
    #: Cap on each MORE flow's forwarder-list length (the relay-count axis
    #: of the kilonode tier): the ``N`` highest-expected-load relays are
    #: kept in place of the 10% pruning rule, which degenerates at kilonode
    #: density (see :func:`repro.metrics.credits.cap_forwarders`).
    #: ``None`` keeps the full pruned plan.
    max_relays: int | None = None
    #: Fault-process spec (node crash/recover, ACK blackouts, control
    #: silence) as a :class:`~repro.sim.faults.FaultSpec` dict (``None`` =
    #: fault-free, today's behaviour bit for bit; see
    #: :mod:`repro.sim.faults`).
    faults: dict[str, Any] | None = field(default=None)
    #: Attach the :class:`~repro.sim.monitor.SimMonitor` liveness checker:
    #: invariant violations raise a structured
    #: :class:`~repro.sim.monitor.StallDiagnosis` instead of hanging.
    monitor: bool = False
    #: Monitor check period in simulated seconds.
    monitor_interval: float = 1.0
    #: Seconds a flow may go without progress before the
    #: :class:`~repro.experiments.refresh.FlowSupervisor` re-plans it around
    #: crashed nodes and, after bounded retries, aborts it as a structured
    #: ``FlowAborted`` outcome.  ``inf`` (the default) supervises nothing —
    #: not even an event is scheduled.  Accepts the string ``"inf"`` so the
    #: axis stays plain JSON.
    progress_timeout: float = math.inf

    def __post_init__(self) -> None:
        self.refresh_period = float(self.refresh_period)
        if self.refresh_period <= 0:
            raise ValueError("refresh_period must be positive (inf = never)")
        if self.decode_engine not in ("auto",) + CODING_ENGINES:
            raise ValueError(
                f"unknown decode_engine {self.decode_engine!r}; expected "
                f"'auto' or one of {CODING_ENGINES}"
            )
        self.progress_timeout = float(self.progress_timeout)
        if self.progress_timeout <= 0:
            raise ValueError("progress_timeout must be positive (inf = never)")
        self.monitor_interval = float(self.monitor_interval)
        if self.monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")

    def channel_spec(self) -> ChannelSpec | None:
        """The channel-model spec for the simulator (``None`` = static)."""
        if self.channel is None:
            return None
        spec = ChannelSpec.from_dict(self.channel)
        return None if spec.is_static else spec

    def mobility_spec(self) -> MobilitySpec | None:
        """The mobility spec for the simulator (``None`` = static)."""
        if self.mobility is None:
            return None
        spec = MobilitySpec.from_dict(self.mobility)
        return None if spec.is_static else spec

    def faults_spec(self) -> FaultSpec | None:
        """The fault-process spec for the simulator (``None`` = fault-free)."""
        if self.faults is None:
            return None
        spec = FaultSpec.from_dict(self.faults)
        return None if spec.is_none else spec

    def control_view(self, topology: Topology,
                     seed: int | tuple[int, ...] | None = None) -> Topology:
        """The link-quality estimates the routing control plane works from.

        ``seed`` overrides the probe-noise stream (the refresh loop passes
        ``(run seed, refresh round)`` so every round samples fresh noise);
        the run seed is the default, and a perfectly informed control plane
        (exponent 1.0, no probes) returns the topology itself either way.
        """
        if self.estimation_exponent >= 1.0 and self.estimation_probes == 0:
            return topology
        return probe_estimated_topology(
            topology,
            optimism_exponent=self.estimation_exponent,
            probe_count=self.estimation_probes,
            seed=self.seed if seed is None else seed,
        )


def _make_simulator(topology: Topology, config: RunConfig, bitrate: int | None = None) -> Simulator:
    phy = PhyConfig(bitrate=bitrate if bitrate is not None else config.bitrate)
    sim_config = SimConfig(phy=phy, seed=config.seed, max_duration=config.max_duration,
                           channel_model=config.channel_spec(),
                           mobility=config.mobility_spec(),
                           engine=config.engine,
                           faults=config.faults_spec(),
                           monitor=config.monitor,
                           monitor_interval=config.monitor_interval)
    return Simulator(topology, sim_config)


def _install_flow(sim: Simulator, topology: Topology, protocol: str, source: int,
                  destination: int, config: RunConfig, flow_seed: int,
                  control_topology: Topology | None = None):
    """Install one flow of the requested protocol; returns its handle."""
    if protocol == "MORE":
        # vector_only supersedes the configured coding payload width (the
        # whole point of the mode is a zero-byte payload).
        coding_size = None if config.vector_only else config.coding_payload_size
        handle = setup_more_flow(
            sim, topology, source, destination,
            total_packets=config.total_packets,
            batch_size=config.batch_size,
            packet_size=config.packet_size,
            coding_payload_size=coding_size,
            vector_only=config.vector_only,
            metric=config.more_metric,
            seed=flow_seed,
            control_topology=control_topology,
            decode_engine=config.decode_engine,
            max_relays=config.max_relays,
        )
        return handle
    if protocol == "ExOR":
        handle = setup_exor_flow(
            sim, topology, source, destination,
            total_packets=config.total_packets,
            batch_size=config.batch_size,
            packet_size=config.packet_size,
            control_topology=control_topology,
        )
        return handle
    if protocol == "Srcr":
        handle = setup_srcr_flow(
            sim, topology, source, destination,
            total_packets=config.total_packets,
            packet_size=config.packet_size,
            use_autorate=config.srcr_autorate,
            control_topology=control_topology,
        )
        return handle
    raise ValueError(f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}")


def run_flows(topology: Topology, protocol: str, pairs: list[tuple[int, int]],
              config: RunConfig | None = None, bitrate: int | None = None) -> list[FlowResult]:
    """Run one simulation with all ``pairs`` as concurrent flows of ``protocol``.

    Returns one :class:`FlowResult` per pair, in order.
    """
    run_config = config if config is not None else RunConfig()
    sim = _make_simulator(topology, run_config, bitrate=bitrate)
    control = run_config.control_view(topology)
    handles = []
    for index, (source, destination) in enumerate(pairs):
        handles.append(
            _install_flow(sim, topology, protocol, source, destination, run_config,
                          flow_seed=run_config.seed + index, control_topology=control)
        )
    flow_ids = [handle.flow_id for handle in handles]
    # Online control plane: with a finite refresh_period, re-probe the
    # (possibly moved) topology mid-flow and rebuild every flow's plan.
    # refresh_period=inf schedules nothing — bit-identical static plans.
    LinkStateRefresher(sim, handles, run_config).install()
    # Graceful degradation under faults: with a finite progress_timeout, a
    # stalled flow is re-planned around crashed nodes a bounded number of
    # times and then aborted as a structured outcome (never an endless run).
    # progress_timeout=inf schedules nothing — bit-identical to before.
    FlowSupervisor(sim, handles, run_config).install()
    sim.run(until=run_config.max_duration,
            stop_condition=sim.stats.all_flows_complete)
    results = []
    for flow_id, (source, destination) in zip(flow_ids, pairs):
        record = sim.stats.flows[flow_id]
        if record.completed:
            throughput = record.throughput_pkts()
            duration = record.duration or 0.0
        elif record.aborted:
            duration = max((record.end_time or sim.now) - record.start_time,
                           1e-9)
            throughput = record.delivered_packets / duration
        else:
            duration = max(sim.now - record.start_time, 1e-9)
            throughput = record.delivered_packets / duration
        results.append(FlowResult(
            protocol=protocol,
            source=source,
            destination=destination,
            throughput_pkts=throughput,
            duration=duration,
            delivered_packets=record.delivered_packets,
            total_packets=record.total_packets,
            completed=record.completed,
            data_transmissions=sim.stats.total_data_transmissions(),
            aborted=record.aborted,
            abort_reason=record.abort_reason,
        ))
    return results


def run_single_flow(topology: Topology, protocol: str, source: int, destination: int,
                    config: RunConfig | None = None, bitrate: int | None = None) -> FlowResult:
    """Run one flow in isolation and return its result."""
    return run_flows(topology, protocol, [(source, destination)], config=config,
                     bitrate=bitrate)[0]


def compare_protocols(topology: Topology, pairs: list[tuple[int, int]],
                      protocols: tuple[str, ...] = PROTOCOLS,
                      config: RunConfig | None = None,
                      bitrate: int | None = None) -> dict[str, list[FlowResult]]:
    """Run every pair as a single flow under each protocol (the Fig 4-2 method).

    The same source-destination pairs and the same RNG seeds are reused
    across protocols, mirroring the paper's back-to-back runs.
    """
    results: dict[str, list[FlowResult]] = {name: [] for name in protocols}
    for source, destination in pairs:
        for protocol in protocols:
            results[protocol].append(
                run_single_flow(topology, protocol, source, destination, config=config,
                                bitrate=bitrate)
            )
    return results
