"""Compatibility face of the sweep orchestrator (and the PR 1 reference).

The real implementation lives in :mod:`repro.experiments.orchestrator`:
content-addressed result store, persistent worker pool, retry/timeout,
streaming progress and resume-after-kill journals.  This module keeps the
original public surface stable:

* :func:`run_sweep` / :func:`run_scenario` — thin shims over
  :func:`repro.experiments.orchestrator.engine.run_sweep` with the
  original signatures (new orchestrator knobs ride in ``**options``);
* :class:`SweepResult` / :data:`DEFAULT_RESULTS_DIR` — re-exported;
* :func:`load_cached_results` — now reads the content-addressed store;
* :func:`run_cells` — the original fresh-``multiprocessing.Pool``-per-call
  runner, kept verbatim as the *baseline* the benchmark suite measures the
  persistent pool against (and as the simplest possible parallel map for
  ad-hoc cell lists).
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.experiments.orchestrator.engine import (
    DEFAULT_RESULTS_DIR,
    SweepError,
    SweepResult,
)
from repro.experiments.orchestrator.engine import run_scenario as _run_scenario
from repro.experiments.orchestrator.engine import run_sweep as _run_sweep
from repro.experiments.orchestrator.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - import cycle: scenarios uses workloads
    from repro.scenarios.execute import CellResult
    from repro.scenarios.spec import ScenarioCell, ScenarioSpec

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "SweepError",
    "SweepResult",
    "load_cached_results",
    "run_cells",
    "run_scenario",
    "run_sweep",
]


def run_sweep(spec: ScenarioSpec, workers: int = 1,
              results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
              cache: bool = True, force: bool = False,
              **options: Any) -> SweepResult:
    """Run every cell of ``spec``'s sweep (see the orchestrator engine).

    The original signature is preserved; orchestrator extras (``retries``,
    ``cell_timeout``, ``progress``, ``pool``) pass through ``options``.
    """
    return _run_sweep(spec, workers=workers, results_dir=results_dir,
                      cache=cache, force=force, **options)


def run_scenario(spec: ScenarioSpec, seed: int | None = None, workers: int = 1,
                 results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
                 cache: bool = True, force: bool = False,
                 **options: Any) -> SweepResult:
    """Run a scenario, optionally pinned to a single seed (the CLI ``run`` verb)."""
    return _run_scenario(spec, seed=seed, workers=workers,
                         results_dir=results_dir, cache=cache, force=force,
                         **options)


def load_cached_results(results_dir: str | Path = DEFAULT_RESULTS_DIR,
                        scenarios: list[str] | None = None) -> dict[str, list[CellResult]]:
    """All stored cell results under ``results_dir``, grouped by scenario name.

    Used by ``python -m repro report``; unreadable entries are skipped.
    Reads the content-addressed store only — pre-orchestrator flat-cache
    files are ignored (see ``repro sweep --help`` for the migration note).
    """
    return ResultStore(results_dir, code="").iter_results(scenarios)


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(cells: list[ScenarioCell], workers: int = 1) -> list[CellResult]:
    """Execute ``cells`` with a *fresh* process pool — the PR 1 baseline.

    With ``workers <= 1`` everything runs in-process; otherwise cells are
    shipped to a newly-forked pool as dicts and results come back in
    submission order.  Either path produces identical results because every
    cell carries its own seed and the simulator is deterministic.  The
    benchmark suite measures the orchestrator's persistent pool against
    this runner; sweeps should go through :func:`run_sweep` instead.
    """
    from repro.scenarios.execute import CellResult, run_cell, run_cell_dict

    if workers <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    workers = min(workers, len(cells), os.cpu_count() or 1)
    context = _pool_context()
    with context.Pool(processes=workers) as pool:
        result_dicts = pool.map(run_cell_dict, [cell.to_dict() for cell in cells])
    return [CellResult.from_dict(data) for data in result_dicts]
