"""Parallel sweep runner: fan a scenario's cells across worker processes.

``ScenarioSpec.expand()`` turns a sweep into independent, deterministic
cells (one per sweep point × seed), so parallelism is embarrassingly simple:
each worker runs :func:`repro.scenarios.execute.run_cell` on its own cells
and the results are identical to a serial run, bit for bit.  Completed cells
are cached as JSON under ``results/<scenario>/cell-<key>.json`` keyed by a
content hash of the cell, so re-running a sweep only executes what changed.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle: scenarios uses workloads
    from repro.scenarios.execute import CellResult
    from repro.scenarios.spec import ScenarioCell, ScenarioSpec

#: Default cache root, relative to the current working directory.
DEFAULT_RESULTS_DIR = Path("results")


@dataclass
class SweepResult:
    """Outcome of one sweep: every cell's result, in expansion order."""

    scenario: str
    cells: list[CellResult]
    cached_cells: int = 0
    elapsed: float = 0.0
    workers: int = 1
    axes: list[str] = field(default_factory=list)

    def series(self, name: str) -> dict[tuple, list[float]]:
        """One named series per cell, keyed by (axis values..., seed)."""
        out = {}
        for cell in self.cells:
            key = tuple(cell.axes.get(axis) for axis in self.axes) + (cell.seed,)
            out[key] = cell.series.get(name, [])
        return out

    def report(self) -> str:
        """Text report: one block per cell plus a sweep footer."""
        blocks = [cell.report() for cell in self.cells]
        footer = (f"sweep {self.scenario}: {len(self.cells)} cells "
                  f"({self.cached_cells} cached) in {self.elapsed:.1f}s "
                  f"with {self.workers} worker(s)")
        return "\n\n".join(blocks + [footer])

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "cells": [cell.to_dict() for cell in self.cells],
            "cached_cells": self.cached_cells,
            "elapsed": self.elapsed,
            "workers": self.workers,
            "axes": list(self.axes),
        }


def cell_cache_path(results_dir: Path, cell: ScenarioCell) -> Path:
    """Where one cell's cached result lives."""
    return Path(results_dir) / cell.scenario.name / f"cell-{cell.key()}.json"


def _load_cached(path: Path) -> "CellResult | None":
    from repro.scenarios.execute import CellResult

    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return CellResult.from_dict(data["result"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None  # corrupt cache entry: recompute and overwrite


def _store_cached(path: Path, cell: ScenarioCell, result: CellResult) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"cell": cell.to_dict(), "result": result.to_dict()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(cells: list[ScenarioCell], workers: int = 1) -> list[CellResult]:
    """Execute ``cells`` (serially or across a process pool), preserving order.

    With ``workers <= 1`` everything runs in-process; otherwise cells are
    shipped to a pool as dicts and results come back in submission order.
    Either path produces identical results because every cell carries its
    own seed and the simulator is deterministic.
    """
    from repro.scenarios.execute import CellResult, run_cell, run_cell_dict

    if workers <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    workers = min(workers, len(cells), os.cpu_count() or 1)
    context = _pool_context()
    with context.Pool(processes=workers) as pool:
        result_dicts = pool.map(run_cell_dict, [cell.to_dict() for cell in cells])
    return [CellResult.from_dict(data) for data in result_dicts]


def run_sweep(spec: ScenarioSpec, workers: int = 1,
              results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
              cache: bool = True, force: bool = False) -> SweepResult:
    """Run every cell of ``spec``'s sweep, using the JSON cache when allowed.

    Args:
        spec: the scenario to expand and run.
        workers: worker processes for the uncached cells (1 = serial).
        results_dir: cache root (``None`` disables persistence entirely).
        cache: read and write cached cell results under ``results_dir``.
        force: recompute every cell even when cached (overwrites the cache).

    Returns:
        A :class:`SweepResult` with cells in deterministic expansion order.
    """
    # repro: allow-DET001 — sweep wall-time is reporting only, never behaviour
    started = time.perf_counter()
    cells = spec.expand()
    results: dict[int, CellResult] = {}
    cached = 0
    use_cache = cache and results_dir is not None
    if use_cache and not force:
        for position, cell in enumerate(cells):
            hit = _load_cached(cell_cache_path(Path(results_dir), cell))
            if hit is not None:
                results[position] = hit
                cached += 1
    pending = [(position, cell) for position, cell in enumerate(cells)
               if position not in results]
    fresh = run_cells([cell for _, cell in pending], workers=workers)
    for (position, cell), result in zip(pending, fresh):
        results[position] = result
        if use_cache:
            _store_cached(cell_cache_path(Path(results_dir), cell), cell, result)
    return SweepResult(
        scenario=spec.name,
        cells=[results[position] for position in range(len(cells))],
        cached_cells=cached,
        elapsed=time.perf_counter() - started,  # repro: allow-DET001
        workers=max(1, workers),
        axes=list(spec.sweep),
    )


def run_scenario(spec: ScenarioSpec, seed: int | None = None, workers: int = 1,
                 results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
                 cache: bool = True, force: bool = False) -> SweepResult:
    """Run a scenario, optionally pinned to a single seed (the CLI ``run`` verb)."""
    if seed is not None:
        spec = spec.with_overrides({})
        spec.seeds = (int(seed),)
    return run_sweep(spec, workers=workers, results_dir=results_dir, cache=cache,
                     force=force)


def load_cached_results(results_dir: str | Path = DEFAULT_RESULTS_DIR,
                        scenarios: list[str] | None = None) -> dict[str, list[CellResult]]:
    """All cached cell results under ``results_dir``, grouped by scenario name.

    Used by ``python -m repro report``; unreadable entries are skipped.
    """
    root = Path(results_dir)
    grouped: dict[str, list[CellResult]] = {}
    if not root.is_dir():
        return grouped
    for directory in sorted(entry for entry in root.iterdir() if entry.is_dir()):
        if scenarios and directory.name not in scenarios:
            continue
        cells = []
        for path in sorted(directory.glob("cell-*.json")):
            result = _load_cached(path)
            if result is not None:
                cells.append(result)
        if cells:
            grouped[directory.name] = cells
    return grouped
