"""Experiment harness reproducing the paper's evaluation (Chapter 4 and 5.7)."""

from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    default_testbed,
    figure_4_2,
    figure_4_3,
    figure_4_4,
    figure_4_5,
    figure_4_6,
    figure_4_7,
    figure_5_1,
    table_4_1,
)
from repro.experiments.runner import (
    PROTOCOLS,
    FlowResult,
    RunConfig,
    compare_protocols,
    run_flows,
    run_single_flow,
)
from repro.experiments.stats import Summary, cdf, median, median_gain, percentile, summarize
from repro.experiments.workloads import (
    challenged_pairs,
    multiflow_sets,
    random_pairs,
    reachable_pairs,
    spatial_reuse_pairs,
)

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "FlowResult",
    "PROTOCOLS",
    "RunConfig",
    "Summary",
    "cdf",
    "challenged_pairs",
    "compare_protocols",
    "default_testbed",
    "figure_4_2",
    "figure_4_3",
    "figure_4_4",
    "figure_4_5",
    "figure_4_6",
    "figure_4_7",
    "figure_5_1",
    "median",
    "median_gain",
    "multiflow_sets",
    "percentile",
    "random_pairs",
    "reachable_pairs",
    "run_flows",
    "run_single_flow",
    "spatial_reuse_pairs",
    "summarize",
    "table_4_1",
]
