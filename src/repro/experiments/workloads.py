"""Workload generators: which source-destination pairs each experiment uses.

The paper's evaluation selects

* random source-destination pairs across the testbed (Figs 4-2, 4-3, 4-6,
  4-7),
* flows with 4-hop best paths whose first and last hop can transmit
  concurrently — the spatial-reuse scenario (Fig 4-4),
* sets of concurrent flows with random endpoints (Fig 4-5).

These helpers reproduce those selections on an arbitrary topology.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.etx import best_path, etx_to_destination, hop_count
from repro.topology.graph import Topology


def reachable_pairs(topology: Topology, min_hops: int = 1) -> list[tuple[int, int]]:
    """All ordered pairs with a usable best path of at least ``min_hops`` hops."""
    pairs = []
    for destination in range(topology.node_count):
        distances = etx_to_destination(topology, destination)
        for source in range(topology.node_count):
            if source == destination or math.isinf(distances[source]):
                continue
            if min_hops <= 1:
                pairs.append((source, destination))
                continue
            if hop_count(topology, source, destination) >= min_hops:
                pairs.append((source, destination))
    return pairs


def random_pairs(topology: Topology, count: int, seed: int = 0,
                 min_hops: int = 1) -> list[tuple[int, int]]:
    """Select ``count`` random source-destination pairs (with replacement only
    if fewer distinct pairs exist)."""
    rng = np.random.default_rng(seed)
    candidates = reachable_pairs(topology, min_hops=min_hops)
    if not candidates:
        raise ValueError("topology has no reachable pairs with the requested hop count")
    if count <= len(candidates):
        indices = rng.choice(len(candidates), size=count, replace=False)
    else:
        indices = rng.choice(len(candidates), size=count, replace=True)
    return [candidates[int(i)] for i in indices]


def spatial_reuse_pairs(topology: Topology, count: int, seed: int = 0,
                        path_hops: int = 4, isolation_threshold: float = 0.10,
                        common_neighbor_threshold: float = 0.20) -> list[tuple[int, int]]:
    """Pairs whose best path has ``path_hops`` hops and whose first and last
    hop transmitters can transmit concurrently (Fig 4-4's selection).

    The first-hop transmitter is the source; the last-hop transmitter is the
    next-to-last node of the best path.  Concurrency requires that the two
    cannot carrier-sense each other, which in the simulator's channel model
    means (a) they cannot decode each other (delivery below
    ``isolation_threshold``) and (b) they do not both reach a common
    neighbour with delivery at least ``common_neighbor_threshold`` (the
    extended-sense rule of :class:`repro.sim.radio.ChannelConfig`).
    """
    rng = np.random.default_rng(seed)
    delivery = topology.delivery_matrix()
    candidates = []
    for source, destination in reachable_pairs(topology, min_hops=path_hops):
        try:
            path = best_path(topology, source, destination)
        except ValueError:
            continue
        if len(path) - 1 != path_hops:
            continue
        last_hop_sender = path[-2]
        forward = topology.delivery(source, last_hop_sender)
        backward = topology.delivery(last_hop_sender, source)
        if forward > isolation_threshold or backward > isolation_threshold:
            continue
        shares_neighbor = bool(np.any(
            (delivery[source] >= common_neighbor_threshold)
            & (delivery[last_hop_sender] >= common_neighbor_threshold)
        ))
        if shares_neighbor:
            continue
        candidates.append((source, destination))
    if not candidates:
        return []
    if count >= len(candidates):
        return candidates
    indices = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in indices]


def multiflow_sets(topology: Topology, flows_per_set: int, set_count: int,
                   seed: int = 0) -> list[list[tuple[int, int]]]:
    """Random sets of concurrent flows (Fig 4-5: 40 runs per flow count)."""
    rng = np.random.default_rng(seed)
    candidates = reachable_pairs(topology)
    if len(candidates) < flows_per_set:
        raise ValueError("not enough reachable pairs for the requested flow count")
    sets = []
    for _ in range(set_count):
        indices = rng.choice(len(candidates), size=flows_per_set, replace=False)
        sets.append([candidates[int(i)] for i in indices])
    return sets


def challenged_pairs(topology: Topology, count: int, seed: int = 0,
                     max_direct_delivery: float = 0.2, min_hops: int = 2) -> list[tuple[int, int]]:
    """Pairs with poor direct connectivity and multi-hop best paths.

    These are the "challenged flows" for which the paper reports the biggest
    opportunistic-routing gains (Section 4.2.2).
    """
    rng = np.random.default_rng(seed)
    candidates = [
        (source, destination)
        for source, destination in reachable_pairs(topology, min_hops=min_hops)
        if topology.delivery(source, destination) <= max_direct_delivery
    ]
    if not candidates:
        return []
    if count >= len(candidates):
        return candidates
    indices = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in indices]
