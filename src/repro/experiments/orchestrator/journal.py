"""Sweep manifest journals: the resume-after-kill bookkeeping.

One journal per *sweep identity* (a hash of the expanded spec plus the
code version), living beside the store at
``results/store/_sweeps/<sweep_id>.jsonl``.  Each ``run_sweep`` appends:

* a ``start`` record naming the scenario, the full cell-key manifest and
  how many cells the store already held, then
* one ``cell`` record per cell as it completes (``status`` is ``cached``,
  ``computed``, ``retried`` or ``failed``), and finally
* a ``finish`` record with the computed/cached totals.

The *store* is the source of truth for resume — a killed sweep's completed
cells are found by key lookup, never by replaying the journal — so the
journal needs no fsync discipline: it exists so a re-run can say
"resuming: 37/100 cells already complete", so tests can assert that only
the missing cells executed, and so a long sweep's history is auditable.
Records are appended one ``open``/``write``/``close`` at a time, which is
atomic enough for SIGKILL (a torn final line is skipped by the reader).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.experiments.orchestrator.store import ResultStore, canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import ScenarioSpec


def sweep_id(spec: "ScenarioSpec", code: str) -> str:
    """Identity of one sweep: the full spec (sweep axes included) + code."""
    payload = {"scenario": spec.to_dict(), "code_version": code}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


class SweepJournal:
    """Append-only JSONL manifest for one sweep identity."""

    def __init__(self, store: ResultStore, spec: "ScenarioSpec") -> None:
        self.sweep_id = sweep_id(spec, store.code)
        self.path = store.sweeps_dir() / f"{self.sweep_id}.jsonl"

    def append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def start(self, scenario: str, keys: list[str], cached: int) -> None:
        self.append({"event": "start", "scenario": scenario,
                     "cells": len(keys), "cached": cached, "keys": keys})

    def cell(self, index: int, key: str, status: str, attempt: int = 1) -> None:
        self.append({"event": "cell", "index": index, "key": key,
                     "status": status, "attempt": attempt})

    def finish(self, computed: int, cached: int) -> None:
        self.append({"event": "finish", "computed": computed, "cached": cached})

    def records(self) -> list[dict[str, Any]]:
        """Every readable record, in append order (torn tails skipped)."""
        if not self.path.is_file():
            return []
        records = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a kill mid-append
        return records

    @staticmethod
    def load_all(results_dir: str | Path) -> list[Path]:
        """Every journal file under a results root (newest last by name)."""
        store = ResultStore(results_dir, code="")
        directory = store.sweeps_dir()
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.jsonl"))
