"""Persistent worker processes: warm interpreters for the sweep engine.

The PR 1 runner forked a fresh ``multiprocessing.Pool`` for every sweep, so
every ``run_sweep`` call re-paid process startup and (under spawn) the
numpy + GF-table import bill.  Here workers are long-lived:

* each :class:`Worker` is one process with its **own task queue** (so the
  engine always knows exactly which cells a dead worker was holding) and a
  **shared result queue** streaming one message per finished cell;
* cells are dispatched in **batches** (one queue message carries many
  cells) to amortise IPC, while results still stream back per cell so
  progress, the store and the journal update while the batch runs;
* a pool outlives ``run_sweep``: :func:`shared_pool` hands the same
  :class:`WorkerPool` to successive sweeps in one process (the CLI, the
  figure Makefile target, the benchmark harness), so only the first sweep
  pays worker startup;
* a worker that crashes or wedges is **replaced**, not mourned — the
  engine requeues its unfinished cells elsewhere (see
  :func:`repro.experiments.orchestrator.engine.run_sweep` for the
  retry/timeout policy).

Workers are daemons: an orchestrator killed with SIGKILL takes its pool
down with it, which is exactly what the resume path wants (the store holds
every completed cell; nothing else survives, nothing else needs to).

:class:`WorkerFaultSpec` is deliberate test instrumentation — the retry/timeout
tests inject a crash or a hang at a known cell position without patching
worker internals.  It is inert unless explicitly passed to the pool.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.context
import os
import time
from dataclasses import dataclass
from typing import Any

#: Queue message tags streamed back by workers, one per cell (plus ``idle``
#: once per finished batch so the engine can dispatch the next one).
MSG_DONE = "done"
MSG_ERROR = "error"
MSG_IDLE = "idle"


@dataclass(frozen=True)
class WorkerFaultSpec:
    """Test-only fault injection: misbehave at selected cell positions.

    ``kind`` is ``"crash"`` (``os._exit`` before running the cell) or
    ``"hang"`` (sleep far past any sane timeout).  ``marker`` is a file
    path used as cross-process state: when ``once`` is true the fault
    fires only while the marker does not exist (creating it), so the
    retry of the same cell succeeds — the recovery path the tests pin.
    With ``once=False`` the fault fires every time, which is how the
    retries-exhausted path is exercised.
    """

    kind: str
    positions: tuple[int, ...]
    marker: str
    once: bool = True

    def fire(self, position: int) -> None:
        if position not in self.positions:
            return
        if self.once:
            try:
                with open(self.marker, "x", encoding="utf-8"):
                    pass
            except FileExistsError:
                return  # already fired once; behave normally now
        if self.kind == "hang":
            time.sleep(3600.0)
        else:
            os._exit(3)


def _worker_main(task_queue: Any, result_queue: Any,
                 fault: WorkerFaultSpec | None) -> None:
    """One worker's lifetime: import once, then run cell batches forever."""
    import traceback

    from repro.scenarios.execute import run_cell_dict

    while True:
        message = task_queue.get()
        if message is None:
            return
        task_id, items = message
        for position, cell_dict in items:
            if fault is not None:
                fault.fire(position)
            try:
                result = run_cell_dict(cell_dict)
            except Exception:  # noqa: BLE001 - shipped to the engine verbatim
                result_queue.put((MSG_ERROR, task_id, position,
                                  traceback.format_exc()))
            else:
                result_queue.put((MSG_DONE, task_id, position, result))
        result_queue.put((MSG_IDLE, task_id, None, None))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when available (warm parent imports for free), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class Worker:
    """One persistent worker process plus its private task queue."""

    def __init__(self, context: multiprocessing.context.BaseContext,
                 result_queue: Any, fault: WorkerFaultSpec | None) -> None:
        self._context = context
        self._result_queue = result_queue
        self._fault = fault
        self.task_queue = context.Queue()
        self.process = context.Process(
            target=_worker_main, args=(self.task_queue, result_queue, fault),
            daemon=True)
        self.process.start()

    def submit(self, task_id: int, items: list[tuple[int, dict]]) -> None:
        self.task_queue.put((task_id, items))

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 2.0) -> None:
        """Ask nicely, then make sure."""
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except (ValueError, OSError):
                pass
            self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
        self.task_queue.close()

    def kill(self) -> None:
        """Immediate removal (timeout/crash replacement path)."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(2.0)
        self.task_queue.close()


class WorkerPool:
    """A fixed-size set of persistent workers sharing one result queue."""

    def __init__(self, workers: int, fault: WorkerFaultSpec | None = None) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.size = workers
        self.fault = fault
        self._context = _pool_context()
        self.result_queue = self._context.Queue()
        self.workers: list[Worker] = [
            Worker(self._context, self.result_queue, fault)
            for _ in range(workers)
        ]
        self.closed = False
        self._task_counter = itertools.count()

    def next_task_id(self) -> int:
        """Task ids unique for the pool's whole lifetime, not per sweep.

        A sweep's engine loop exits as soon as its last cell lands, which
        can leave that sweep's final ``idle`` messages sitting in the shared
        result queue; unique ids let the next sweep recognise and drop them
        instead of confusing them with its own tasks.
        """
        return next(self._task_counter)

    def replace(self, index: int) -> Worker:
        """Kill worker ``index`` and put a fresh one (new queue) in its slot.

        The dead worker's task queue is abandoned with it: the engine owns
        the record of which cells were outstanding and requeues them, so
        nothing is lost and nothing is double-run.
        """
        self.workers[index].kill()
        replacement = Worker(self._context, self.result_queue, self.fault)
        self.workers[index] = replacement
        return replacement

    def worker_pids(self) -> list[int | None]:
        """The workers' PIDs (stable across sweeps while the pool is warm)."""
        return [worker.process.pid for worker in self.workers]

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        for worker in self.workers:
            worker.stop()
        self.result_queue.close()


#: The shared pools, keyed by worker count (faulty pools are never shared).
_SHARED: dict[int, WorkerPool] = {}


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``workers`` — create or reuse.

    Reuse is what amortises fork + import + GF-table setup across
    successive ``run_sweep`` calls; a pool whose workers all died (e.g.
    a fault-injected test tore them down) is rebuilt transparently.
    """
    pool = _SHARED.get(workers)
    if pool is not None and not pool.closed and any(w.alive() for w in pool.workers):
        return pool
    if pool is not None:
        pool.shutdown()
    pool = WorkerPool(workers)
    _SHARED[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Stop every shared pool (atexit; also handy between benchmark stages)."""
    for pool in list(_SHARED.values()):
        pool.shutdown()
    _SHARED.clear()


atexit.register(shutdown_shared_pools)
