"""The sweep engine: content-addressed caching + persistent-worker dispatch.

``run_sweep`` here is the real implementation behind
:func:`repro.experiments.parallel.run_sweep` (kept as a thin shim for
compatibility).  The flow per sweep:

1. expand the spec into cells and compute every cell's
   :class:`~repro.experiments.orchestrator.store.CellKey` up front;
2. satisfy what the store already holds (unless ``force``) — this is also
   the **resume** path: a killed sweep's completed cells are plain store
   hits on the next run, so only the missing cells execute;
3. run the rest — in-process when ``workers <= 1`` (the bit-identity
   reference path), otherwise batched across a persistent
   :class:`~repro.experiments.orchestrator.workers.WorkerPool` with
   per-cell retry, a per-worker inactivity timeout, and crashed-worker
   replacement;
4. stream progress + a running partial aggregate to stderr, journal every
   completion, and save each fresh result to the store the moment it lands
   (not at sweep end — that is what makes SIGKILL cheap).

Parallel and serial runs are bit-identical because cells are deterministic
and results are reassembled in expansion order; nothing about scheduling
can leak into a cell's bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import TYPE_CHECKING, Any

from repro.experiments.orchestrator.journal import SweepJournal
from repro.experiments.orchestrator.progress import ProgressPrinter
from repro.experiments.orchestrator.store import CellKey, ResultStore
from repro.experiments.orchestrator.workers import (
    MSG_DONE,
    MSG_ERROR,
    MSG_IDLE,
    WorkerPool,
    shared_pool,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle: scenarios uses workloads
    from repro.scenarios.execute import CellResult
    from repro.scenarios.spec import ScenarioCell, ScenarioSpec

#: Default results root, relative to the current working directory.
DEFAULT_RESULTS_DIR = Path("results")

#: Extra attempts granted to a cell whose worker crashed, hung or raised.
DEFAULT_RETRIES = 2

#: How long (seconds) a busy worker may go silent before it is presumed
#: wedged, killed and replaced.  ``None`` disables the watchdog.
DEFAULT_CELL_TIMEOUT: float | None = None

#: Result-queue poll period: how often the watchdog gets to look around.
_POLL_SECONDS = 0.2

#: Upper bound on cells per dispatch message (IPC amortisation cap).
_MAX_BATCH = 32


class SweepError(RuntimeError):
    """A cell exhausted its retries (worker traceback in the message)."""


@dataclass
class SweepResult:
    """Outcome of one sweep: every cell's result, in expansion order."""

    scenario: str
    cells: list[CellResult]
    cached_cells: int = 0
    elapsed: float = 0.0
    workers: int = 1
    axes: list[str] = field(default_factory=list)
    computed_cells: int = 0

    def series(self, name: str) -> dict[tuple, list[float]]:
        """One named series per cell, keyed by (axis values..., seed)."""
        out = {}
        for cell in self.cells:
            key = tuple(cell.axes.get(axis) for axis in self.axes) + (cell.seed,)
            out[key] = cell.series.get(name, [])
        return out

    def report(self) -> str:
        """Text report: one block per cell plus a sweep footer."""
        blocks = [cell.report() for cell in self.cells]
        footer = (f"sweep {self.scenario}: {len(self.cells)} cells "
                  f"({self.cached_cells} cached) in {self.elapsed:.1f}s "
                  f"with {self.workers} worker(s)")
        return "\n\n".join(blocks + [footer])

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "cells": [cell.to_dict() for cell in self.cells],
            "cached_cells": self.cached_cells,
            "computed_cells": self.computed_cells,
            "elapsed": self.elapsed,
            "workers": self.workers,
            "axes": list(self.axes),
        }


def run_sweep(spec: ScenarioSpec, workers: int = 1,
              results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
              cache: bool = True, force: bool = False,
              retries: int = DEFAULT_RETRIES,
              cell_timeout: float | None = DEFAULT_CELL_TIMEOUT,
              progress: bool = False,
              pool: WorkerPool | None = None) -> SweepResult:
    """Run every cell of ``spec``'s sweep through the store + worker pool.

    Args:
        spec: the scenario to expand and run.
        workers: worker processes for uncached cells (1 = in-process serial).
        results_dir: results root (``None`` disables the store entirely).
        cache: read and write the content-addressed store under
            ``results_dir``.
        force: recompute every cell even when stored (overwrites entries).
        retries: extra attempts per cell after a crash, hang or exception
            before the sweep fails with :class:`SweepError`.
        cell_timeout: seconds of per-worker silence before the watchdog
            kills and replaces it (``None`` = no timeout).
        progress: stream cells/s, ETA and a running partial aggregate to
            stderr while the sweep runs.
        pool: an explicit :class:`WorkerPool` (tests inject fault-carrying
            pools here); by default the process-wide shared pool is used
            and left warm for the next sweep.

    Returns:
        A :class:`SweepResult` with cells in deterministic expansion order,
        bit-identical for any worker count.
    """
    # repro: allow-DET001 — sweep wall-time is reporting only, never behaviour
    started = time.perf_counter()
    cells = spec.expand()
    use_store = cache and results_dir is not None
    store = ResultStore(results_dir) if use_store else None
    keys: list[CellKey | None] = [store.key_for(cell) if store else None
                                  for cell in cells]

    results: dict[int, CellResult] = {}
    if store is not None and not force:
        for position, key in enumerate(keys):
            hit = store.load(key)
            if hit is not None:
                results[position] = hit
    cached = len(results)

    journal = SweepJournal(store, spec) if store is not None else None
    if journal is not None:
        journal.start(spec.name, [key.render() for key in keys], cached)
    printer = ProgressPrinter(spec.name, total=len(cells), enabled=progress)
    if journal is not None:
        for position in sorted(results):
            journal.cell(position, keys[position].render(), "cached")
    for position in sorted(results):
        printer.cell_done("cached", results[position].summary)

    pending = [position for position in range(len(cells))
               if position not in results]

    def complete(position: int, result: CellResult, attempt: int) -> None:
        results[position] = result
        if store is not None:
            store.save(keys[position], cells[position], result)
        if journal is not None:
            status = "computed" if attempt == 1 else "retried"
            journal.cell(position, keys[position].render(), status, attempt)
        printer.cell_done("computed", result.summary)

    if pending:
        if workers <= 1 and pool is None:
            _run_serial(cells, pending, complete)
        else:
            _run_pooled(cells, pending, complete, printer,
                        pool if pool is not None else shared_pool(max(1, workers)),
                        retries=retries, cell_timeout=cell_timeout)

    printer.finish()
    if journal is not None:
        journal.finish(computed=len(cells) - cached, cached=cached)
    return SweepResult(
        scenario=spec.name,
        cells=[results[position] for position in range(len(cells))],
        cached_cells=cached,
        computed_cells=len(cells) - cached,
        elapsed=time.perf_counter() - started,  # repro: allow-DET001
        workers=max(1, workers),
        axes=list(spec.sweep),
    )


def run_scenario(spec: ScenarioSpec, seed: int | None = None, workers: int = 1,
                 results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
                 cache: bool = True, force: bool = False,
                 **options: Any) -> SweepResult:
    """Run a scenario, optionally pinned to a single seed (the CLI ``run`` verb)."""
    if seed is not None:
        spec = spec.with_overrides({})
        spec.seeds = (int(seed),)
    return run_sweep(spec, workers=workers, results_dir=results_dir, cache=cache,
                     force=force, **options)


def _run_serial(cells: list[ScenarioCell], pending: list[int],
                complete: Any) -> None:
    """The in-process path — and the bit-identity reference for the pool."""
    from repro.scenarios.execute import run_cell

    for position in pending:
        complete(position, run_cell(cells[position]), 1)


def _run_pooled(cells: list[ScenarioCell], pending: list[int], complete: Any,
                printer: ProgressPrinter, pool: WorkerPool,
                retries: int, cell_timeout: float | None) -> None:
    """Batched dispatch across the pool with retry/timeout/replacement.

    Bookkeeping invariant: every not-yet-finished position is in exactly one
    of ``queue`` (waiting) or ``inflight`` (dispatched to a live worker).  A
    worker that crashes, wedges past ``cell_timeout`` or reports a cell
    exception moves its positions back to ``queue`` (attempt count bumped)
    and is replaced; a position that exceeds ``retries`` extra attempts
    raises :class:`SweepError` for the whole sweep — a sweep with holes in
    it is not a result.
    """
    from repro.scenarios.execute import CellResult

    queue = list(pending)
    cell_dicts = {position: cells[position].to_dict() for position in pending}
    attempts = {position: 0 for position in pending}
    finished: set[int] = set()

    outstanding: list[set[int]] = [set() for _ in pool.workers]
    last_activity = [0.0 for _ in pool.workers]
    task_owner: dict[int, int] = {}

    def batch_size() -> int:
        share = (len(queue) + pool.size * 4 - 1) // (pool.size * 4)
        return max(1, min(_MAX_BATCH, share))

    def dispatch(index: int) -> None:
        if not queue or outstanding[index]:
            return
        batch = [queue.pop(0) for _ in range(min(batch_size(), len(queue)))]
        task_id = pool.next_task_id()
        for position in batch:
            attempts[position] += 1
        outstanding[index] = set(batch)
        task_owner[task_id] = index
        # repro: allow-DET001 — watchdog clock, never simulation behaviour
        last_activity[index] = time.monotonic()
        pool.workers[index].submit(
            task_id, [(position, cell_dicts[position]) for position in batch])

    def diagnosis_note(position: int) -> str:
        """What liveness forensics exist for an externally-killed cell.

        A timed-out or crashed worker dies from the outside, so the only
        in-run forensics are whatever :class:`~repro.sim.monitor.SimMonitor`
        would have raised — and that reaches us as an in-worker exception
        (the MSG_ERROR path), never here.  Spell out which case this is so
        a timeout line tells the user how to get a StallDiagnosis next time.
        """
        if cells[position].scenario.run.get("monitor"):
            return ("monitor enabled but no StallDiagnosis surfaced before "
                    "the kill; lower run.monitor_interval")
        return "no diagnosis: monitor disabled (rerun with run.monitor=true)"

    def recycle(index: int, reason: str) -> None:
        """Kill + replace worker ``index``; requeue its unfinished cells."""
        stranded = sorted(outstanding[index])
        outstanding[index] = set()
        for task_id in [tid for tid, owner in task_owner.items() if owner == index]:
            task_owner.pop(task_id)
        for position in stranded:
            if attempts[position] > retries:
                raise SweepError(
                    f"cell {position} failed after {attempts[position]} attempt(s): "
                    f"worker {reason}; {diagnosis_note(position)}")
            printer.retry(f"{reason}; {diagnosis_note(position)}", position)
            queue.append(position)
        pool.replace(index)
        last_activity[index] = time.monotonic()  # repro: allow-DET001 — watchdog

    for index in range(pool.size):
        dispatch(index)

    while len(finished) < len(pending):
        try:
            tag, task_id, position, payload = pool.result_queue.get(
                timeout=_POLL_SECONDS)
        except Empty:
            now = time.monotonic()  # repro: allow-DET001 — watchdog clock
            for index, worker in enumerate(pool.workers):
                if not outstanding[index]:
                    continue
                if not worker.alive():
                    recycle(index, "crashed")
                elif (cell_timeout is not None
                      and now - last_activity[index] > cell_timeout):
                    recycle(index, f"timed out after {cell_timeout:.1f}s")
            for index in range(pool.size):
                dispatch(index)
            continue

        owner = task_owner.get(task_id)
        if owner is None:
            continue  # stale message from a worker replaced mid-task
        last_activity[owner] = time.monotonic()  # repro: allow-DET001 — watchdog

        if tag == MSG_IDLE:
            task_owner.pop(task_id, None)
            dispatch(owner)
        elif tag == MSG_DONE:
            outstanding[owner].discard(position)
            if position not in finished:
                finished.add(position)
                complete(position, CellResult.from_dict(payload),
                         attempts[position])
        elif tag == MSG_ERROR:
            outstanding[owner].discard(position)
            if position in finished:
                continue
            if attempts[position] > retries:
                raise SweepError(
                    f"cell {position} failed after {attempts[position]} "
                    f"attempt(s):\n{payload}")
            printer.retry("cell raised", position)
            queue.append(position)
            dispatch(owner)
