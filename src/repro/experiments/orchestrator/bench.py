"""The shared cold-sweep benchmark workload.

``scripts/bench_baseline.py`` (the committed ``sweep`` stage) and the
perf-strict floor in ``benchmarks/test_sweep_floor.py`` must measure the
same quantity, so the workload lives here — the same pattern as
:func:`repro.sim.events.pump_timer_workload` for the engine stage.

The shape is chosen to exercise what the orchestrator actually changes.
The PR 1 runner forks a fresh multiprocessing pool for *every*
``run_cells`` call, so a workload of many small successive sweeps — the
shape real parameter studies have — pays the fork/import tax over and
over.  The orchestrator's persistent pool pays it once.  Hence: many
sweeps, each of a few sub-second cells (gap mode on a short lossy chain),
rather than one big sweep whose cell cost would drown the dispatch path
both runners share.

Seeds are disjoint across sweeps so a results-dir'd run stores
:data:`BENCH_CELLS` distinct cells (the warm-replay measurement replays
all of them).
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec

#: Successive sweeps per measured round (each forks a fresh PR 1 pool).
BENCH_SWEEPS = 16
#: Seeds (= cells: one protocol, no sweep axes) per sweep.
BENCH_SEEDS_PER_SWEEP = 8
#: Worker processes both runners are offered.
BENCH_WORKERS = 8
#: Total cells per measured round.
BENCH_CELLS = BENCH_SWEEPS * BENCH_SEEDS_PER_SWEEP


def bench_sweep_specs() -> list[ScenarioSpec]:
    """The benchmark's sweep list: 16 sweeps x 8 gap-mode chain cells."""
    return [
        ScenarioSpec(
            name="bench_sweep",
            topology=TopologySpec("chain", {"hops": 4, "link_delivery": 0.7,
                                            "skip_delivery": 0.25}),
            workload=WorkloadSpec("explicit", {"pairs": [[0, 4]]}),
            protocols=("MORE",),
            mode="gap",
            seeds=tuple(range(100 * index + 1,
                              100 * index + 1 + BENCH_SEEDS_PER_SWEEP)),
        )
        for index in range(BENCH_SWEEPS)
    ]
