"""Content-addressed result store: one cell result per ``(spec, seed, code)``.

The PR 1 cache keyed cells by a hash of the *scenario JSON* alone, which
has two aliasing holes the sweep orchestrator closes:

* a new :class:`~repro.experiments.runner.RunConfig` knob that a scenario
  does not mention never appears in the spec JSON, so a sweep run after
  the knob lands could be served results computed before it existed.  The
  store therefore hashes the **fully resolved** config — every
  ``fields(RunConfig)`` member, defaults included — so introducing (or
  re-defaulting) a knob changes every key it could influence.  The
  ``CACHE001`` repro-check rule pins this invariant statically.
* results are only as durable as the code that produced them.  Each key
  carries a **code version** — a content hash of every ``*.py`` file under
  ``src/repro`` — so a kernel change honestly invalidates the cache
  instead of replaying stale physics.

Layout under the results root (``results/`` by default)::

    results/store/<scenario>/cell-<spec16>-s<seed>-c<code8>.json
    results/store/_sweeps/<sweep_id>.jsonl      (the resume journals)

Entries are written atomically (temp file + rename), so a sweep killed
mid-write can never leave a truncated entry that later replays as data —
unreadable entries are recomputed.  The flat PR 1 layout
(``results/<scenario>/cell-<hash>.json``) carries no code version and is
**never read**; :meth:`ResultStore.legacy_cell_files` lets the CLI report
the stale files so the user can delete them.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.experiments.runner import RunConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle: scenarios uses workloads
    from repro.scenarios.execute import CellResult
    from repro.scenarios.spec import ScenarioCell

#: Subdirectory of the results root holding the content-addressed store.
STORE_DIRNAME = "store"
#: Subdirectory of the store holding sweep journals (skipped by loaders).
SWEEPS_DIRNAME = "_sweeps"

_HEX_SPEC = 16  #: hex digits of the spec hash kept in keys
_HEX_CODE = 8   #: hex digits of the code version kept in keys


def canonical_json(payload: Any) -> str:
    """The canonical serialisation every hash in the store is taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    """A JSON-stable view of one config value (``inf`` has no JSON literal)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def config_fingerprint(config: RunConfig) -> dict[str, Any]:
    """Every resolved ``RunConfig`` field, by name — the spec-hash payload.

    Enumerating ``fields(RunConfig)`` (rather than listing knobs by hand)
    is what guarantees a field added tomorrow feeds the hash today; the
    ``CACHE001`` analyzer rule rejects any rewrite that loses the
    enumeration without covering every declared field explicitly.
    """
    fingerprint: dict[str, Any] = {}
    for config_field in fields(RunConfig):
        fingerprint[config_field.name] = _jsonable(getattr(config, config_field.name))
    return fingerprint


def spec_hash(cell: ScenarioCell) -> str:
    """Content hash of one fully-resolved cell (scenario + axes + config).

    Covers the scenario JSON *and* the resolved config so both explicit
    overrides and defaulted knobs are part of the identity; the seed rides
    separately in :class:`CellKey` (it is also inside the scenario dict,
    but keeping it visible in the filename makes the store browsable).
    """
    payload = {
        "scenario": cell.scenario.to_dict(),
        "axes": cell.axes,
        "run_config": config_fingerprint(cell.scenario.run_config(cell.seed)),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:_HEX_SPEC]


_CODE_VERSION: str | None = None


def code_version(src_root: Path | None = None) -> str:
    """Content hash of every ``*.py`` under ``src/repro`` (cached per process).

    Pass ``src_root`` to fingerprint another tree (tests); only the default
    (the imported package's own tree) is cached.
    """
    global _CODE_VERSION
    if src_root is None:
        if _CODE_VERSION is None:
            package_root = Path(__file__).resolve().parents[2]  # src/repro
            _CODE_VERSION = _fingerprint_tree(package_root)
        return _CODE_VERSION
    return _fingerprint_tree(Path(src_root))


def _fingerprint_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:_HEX_CODE]


@dataclass(frozen=True)
class CellKey:
    """The full store identity of one cell result."""

    scenario: str
    spec_hash: str
    seed: int
    code_version: str

    def filename(self) -> str:
        return f"cell-{self.spec_hash}-s{self.seed}-c{self.code_version}.json"

    def render(self) -> str:
        """The compact form journals and reports use."""
        return f"{self.scenario}/{self.spec_hash}-s{self.seed}-c{self.code_version}"


class ResultStore:
    """The content-addressed cell-result store under one results root."""

    def __init__(self, results_dir: str | Path,
                 code: str | None = None) -> None:
        self.results_dir = Path(results_dir)
        self.root = self.results_dir / STORE_DIRNAME
        self.code = code if code is not None else code_version()

    # -- keys and paths ---------------------------------------------------- #

    def key_for(self, cell: ScenarioCell) -> CellKey:
        return CellKey(scenario=cell.scenario.name, spec_hash=spec_hash(cell),
                       seed=cell.seed, code_version=self.code)

    def path_for(self, key: CellKey) -> Path:
        return self.root / key.scenario / key.filename()

    # -- entry IO ---------------------------------------------------------- #

    def load(self, key: CellKey) -> "CellResult | None":
        """The stored result for ``key``, or ``None`` (missing / unreadable)."""
        from repro.scenarios.execute import CellResult

        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return CellResult.from_dict(data["result"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None  # corrupt entry: recompute and overwrite

    def save(self, key: CellKey, cell: ScenarioCell, result: CellResult) -> Path:
        """Write one entry atomically (temp + rename survives any kill)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": {"scenario": key.scenario, "spec_hash": key.spec_hash,
                    "seed": key.seed, "code_version": key.code_version},
            "cell": cell.to_dict(),
            "result": result.to_dict(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        scratch = path.with_name(path.name + f".tmp{os.getpid()}")
        scratch.write_text(text, encoding="utf-8")
        os.replace(scratch, path)
        return path

    def sweeps_dir(self) -> Path:
        return self.root / SWEEPS_DIRNAME

    # -- loaders and migration --------------------------------------------- #

    def iter_results(self, scenarios: list[str] | None = None
                     ) -> dict[str, list["CellResult"]]:
        """All readable store entries grouped by scenario name (sorted)."""
        from repro.scenarios.execute import CellResult  # noqa: F401 - via load

        grouped: dict[str, list[CellResult]] = {}
        if not self.root.is_dir():
            return grouped
        for directory in sorted(entry for entry in self.root.iterdir()
                                if entry.is_dir() and entry.name != SWEEPS_DIRNAME):
            if scenarios and directory.name not in scenarios:
                continue
            cells = []
            for path in sorted(directory.glob("cell-*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    cells.append(CellResult.from_dict(data["result"]))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue  # unreadable entries are skipped, never trusted
            if cells:
                grouped[directory.name] = cells
        return grouped

    def legacy_cell_files(self, scenario: str | None = None) -> list[Path]:
        """Pre-store flat-cache files (``results/<scenario>/cell-*.json``).

        These carry neither a resolved-config fingerprint nor a code
        version, so they are never read back; callers surface them so the
        user knows the old cache is being ignored.
        """
        if not self.results_dir.is_dir():
            return []
        pattern = f"{scenario}/cell-*.json" if scenario else "*/cell-*.json"
        return [path for path in sorted(self.results_dir.glob(pattern))
                if STORE_DIRNAME not in path.relative_to(self.results_dir).parts]
