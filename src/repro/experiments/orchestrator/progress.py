"""Streaming sweep progress: cells/s, ETA and a running partial aggregate.

The engine reports every cell as it lands (cache hit, fresh compute or
retry) and this module turns that stream into throttled single-line status
updates on stderr — stdout stays clean for ``--json`` pipelines.  Alongside
the counters it keeps an **incremental aggregate**: a running mean of every
scalar in the completed cells' ``summary`` dicts, so a thousand-cell sweep
shows where the headline metric is converging long before the sweep ends.

All wall-clock use here is presentation (rates and ETAs for a human
watching a terminal); nothing feeds back into simulation behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO


class SweepProgress:
    """Counters + running aggregate for one sweep (no I/O of its own)."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.completed = 0
        self.cached = 0
        self.computed = 0
        self.retries = 0
        # repro: allow-DET001 — progress timing is display only
        self.started = time.perf_counter()
        self._summary_sums: dict[str, float] = {}
        self._summary_counts: dict[str, int] = {}

    def record(self, status: str, summary: dict[str, float] | None = None) -> None:
        """Count one completed cell (``status``: ``cached`` or ``computed``)."""
        self.completed += 1
        if status == "cached":
            self.cached += 1
        else:
            self.computed += 1
        for name, value in (summary or {}).items():
            if isinstance(value, (int, float)):
                self._summary_sums[name] = self._summary_sums.get(name, 0.0) + value
                self._summary_counts[name] = self._summary_counts.get(name, 0) + 1

    def record_retry(self) -> None:
        self.retries += 1

    def rate(self) -> float:
        """Completed cells per wall second so far."""
        # repro: allow-DET001 — progress timing is display only
        elapsed = time.perf_counter() - self.started
        return self.completed / elapsed if elapsed > 0 else 0.0

    def eta(self) -> float | None:
        """Seconds until done at the current rate (``None`` before any data)."""
        rate = self.rate()
        if rate <= 0 or self.completed == 0:
            return None
        return (self.total - self.completed) / rate

    def partial_summary(self) -> dict[str, float]:
        """Running mean of every scalar summary metric across completed cells."""
        return {name: self._summary_sums[name] / self._summary_counts[name]
                for name in sorted(self._summary_sums)}


class ProgressPrinter:
    """Throttled stderr renderer over :class:`SweepProgress`."""

    def __init__(self, scenario: str, total: int, enabled: bool = True,
                 stream: TextIO | None = None, interval: float = 0.5) -> None:
        self.scenario = scenario
        self.progress = SweepProgress(total)
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last_emit = 0.0
        self._last_completed = -1

    def cell_done(self, status: str,
                  summary: dict[str, float] | None = None) -> None:
        self.progress.record(status, summary)
        self._maybe_emit()

    def retry(self, reason: str, position: int) -> None:
        self.progress.record_retry()
        if self.enabled:
            print(f"sweep {self.scenario}: retrying cell {position} ({reason})",
                  file=self.stream, flush=True)

    def finish(self) -> None:
        self._maybe_emit(force=True)

    def _maybe_emit(self, force: bool = False) -> None:
        if not self.enabled:
            return
        # repro: allow-DET001 — throttle clock for terminal output only
        now = time.monotonic()
        done = self.progress.completed >= self.progress.total
        if not force and not done and now - self._last_emit < self.interval:
            return
        if self.progress.completed == self._last_completed:
            return  # nothing new since the last line (e.g. finish() after done)
        self._last_emit = now
        self._last_completed = self.progress.completed
        print(self._line(), file=self.stream, flush=True)

    def _line(self) -> str:
        progress = self.progress
        parts = [f"sweep {self.scenario}: {progress.completed}/{progress.total} cells",
                 f"{progress.cached} cached",
                 f"{progress.rate():.1f} cells/s"]
        eta = progress.eta()
        if eta is not None and progress.completed < progress.total:
            parts.append(f"ETA {eta:.0f}s")
        if progress.retries:
            parts.append(f"{progress.retries} retried")
        parts.append(_format_partial(progress.partial_summary()))
        return " | ".join(part for part in parts if part)


def _format_partial(summary: dict[str, Any], limit: int = 2) -> str:
    """The first ``limit`` running means, compactly (empty when none)."""
    shown = [f"{name}~{value:.2f}" for name, value in list(summary.items())[:limit]]
    return " ".join(shown)
