"""Sweep orchestration: content-addressed store, persistent workers, resume.

Public surface:

* :mod:`~repro.experiments.orchestrator.store` — the content-addressed
  result store keyed on ``(spec-hash, seed, code-version)``;
* :mod:`~repro.experiments.orchestrator.journal` — per-sweep manifest
  journals for resume-after-kill bookkeeping;
* :mod:`~repro.experiments.orchestrator.workers` — the persistent worker
  pool (warm across cells and across sweeps) with fault injection for tests;
* :mod:`~repro.experiments.orchestrator.progress` — streaming cells/s,
  ETA and partial-aggregate display;
* :mod:`~repro.experiments.orchestrator.engine` — ``run_sweep`` /
  ``run_scenario`` tying the above together with per-cell retry, a
  worker-inactivity watchdog and crashed-worker replacement.

:mod:`repro.experiments.parallel` remains the compatibility face of this
package: its ``run_sweep`` / ``run_scenario`` are thin shims over
:mod:`~repro.experiments.orchestrator.engine`.
"""

from repro.experiments.orchestrator.engine import (
    DEFAULT_RESULTS_DIR,
    SweepError,
    SweepResult,
    run_scenario,
    run_sweep,
)
from repro.experiments.orchestrator.journal import SweepJournal, sweep_id
from repro.experiments.orchestrator.progress import ProgressPrinter, SweepProgress
from repro.experiments.orchestrator.store import (
    CellKey,
    ResultStore,
    code_version,
    config_fingerprint,
    spec_hash,
)
from repro.experiments.orchestrator.workers import (
    WorkerFaultSpec,
    WorkerPool,
    shared_pool,
    shutdown_shared_pools,
)

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "CellKey",
    "WorkerFaultSpec",
    "ProgressPrinter",
    "ResultStore",
    "SweepError",
    "SweepJournal",
    "SweepProgress",
    "SweepResult",
    "WorkerPool",
    "code_version",
    "config_fingerprint",
    "run_scenario",
    "run_sweep",
    "shared_pool",
    "shutdown_shared_pools",
    "spec_hash",
    "sweep_id",
]
