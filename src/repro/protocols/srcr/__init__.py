"""Srcr: ETX best-path routing baseline."""

from repro.protocols.srcr.agent import (
    SRCR_HEADER_BYTES,
    SrcrAgent,
    SrcrDataPayload,
    SrcrFlowHandle,
    SrcrFlowSpec,
    setup_srcr_flow,
)

__all__ = [
    "SRCR_HEADER_BYTES",
    "SrcrAgent",
    "SrcrDataPayload",
    "SrcrFlowHandle",
    "SrcrFlowSpec",
    "setup_srcr_flow",
]
