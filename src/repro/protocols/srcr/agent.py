"""Srcr: traditional best-path routing with the ETX metric (Section 4.1.1).

Srcr is the baseline protocol: Dijkstra over link ETX picks a single path,
every hop forwards packets to its fixed nexthop using link-layer ARQ, and
nothing is learned from overheard packets.  Optionally the sender runs an
Onoe-style autorate controller per nexthop (Section 4.4).

Simplifications relative to the Roofnet implementation (documented in
DESIGN.md): routes are computed once per flow from the known delivery
probabilities (no probe traffic is simulated), per-node queues are not
bounded, and a frame that exhausts its MAC retries is re-queued rather than
dropped, which gives the reliable-file-transfer semantics the evaluation
measures throughput over.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.metrics.etx import best_path
from repro.protocols.base import ProtocolAgent
from repro.sim.autorate import OnoeRateController
from repro.sim.frames import Frame, FrameKind
from repro.sim.simulator import Simulator
from repro.sim.trace import FlowRecord
from repro.topology.graph import Topology

#: Routing/transport header bytes added to every Srcr data frame.
SRCR_HEADER_BYTES = 24

_flow_ids = itertools.count(10_000)


@dataclass
class SrcrFlowSpec:
    """Static description of one Srcr flow."""

    flow_id: int
    source: int
    destination: int
    route: list[int]
    packet_size: int
    total_packets: int
    bitrate: int | None = None
    #: Per-node next hops for relays stranded off the main route by a
    #: link-state refresh (node -> next hop toward the destination).
    #: Rebuilt on every refresh; empty for static (never-refreshed) flows.
    detours: dict[int, int] = field(default_factory=dict)

    def next_hop(self, node_id: int) -> int | None:
        """Next hop after ``node_id`` on the route (or its detour), or None."""
        if node_id not in self.route:
            return self.detours.get(node_id)
        index = self.route.index(node_id)
        if index + 1 >= len(self.route):
            return None
        return self.route[index + 1]

    def frame_size(self) -> int:
        """On-air payload size of an Srcr data frame."""
        return self.packet_size + SRCR_HEADER_BYTES


@dataclass
class SrcrDataPayload:
    """Payload of an Srcr data frame: just the packet sequence number."""

    flow_id: int
    sequence: int


class SrcrAgent(ProtocolAgent):
    """Srcr forwarding agent (source, relay and destination roles)."""

    protocol_name = "Srcr"

    def __init__(self, node_id: int, use_autorate: bool = False) -> None:
        super().__init__(node_id)
        self.specs: dict[int, SrcrFlowSpec] = {}
        self.queues: dict[int, deque[int]] = {}
        self.use_autorate = use_autorate
        self.rate_controller = OnoeRateController() if use_autorate else None
        self._round_robin = 0
        self.delivered: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    # Flow installation
    # ------------------------------------------------------------------ #

    def install_flow(self, spec: SrcrFlowSpec) -> None:
        """Register a flow whose route traverses (or originates at) this node."""
        self.specs[spec.flow_id] = spec
        self.queues.setdefault(spec.flow_id, deque())
        if self.node_id == spec.destination:
            self.delivered.setdefault(spec.flow_id, set())

    def enqueue_source_packets(self, flow_id: int) -> None:
        """Load the whole transfer into the source queue."""
        spec = self.specs[flow_id]
        queue = self.queues[flow_id]
        queue.extend(range(spec.total_packets))
        self.notify_pending()

    # ------------------------------------------------------------------ #
    # MAC interface
    # ------------------------------------------------------------------ #

    def has_pending(self, now: float) -> bool:
        return any(queue for queue in self.queues.values())

    def on_transmit_opportunity(self, now: float) -> Frame | None:
        flow_ids = [fid for fid, queue in self.queues.items() if queue]
        if not flow_ids:
            return None
        self._round_robin = (self._round_robin + 1) % len(flow_ids)
        # A flow can lack a next hop here when a link-state refresh moved
        # its route away and no detour exists yet; skip it rather than
        # give up the opportunity, or co-resident flows with a perfectly
        # good next hop would starve until something re-triggers the MAC.
        for offset in range(len(flow_ids)):
            flow_id = flow_ids[(self._round_robin + offset) % len(flow_ids)]
            spec = self.specs[flow_id]
            next_hop = spec.next_hop(self.node_id)
            if next_hop is None:
                continue
            sequence = self.queues[flow_id][0]
            return Frame(
                sender=self.node_id,
                receiver=next_hop,
                kind=FrameKind.DATA,
                flow_id=flow_id,
                size_bytes=spec.frame_size(),
                payload=SrcrDataPayload(flow_id=flow_id, sequence=sequence),
            )
        return None

    def select_bitrate(self, frame: Frame) -> int | None:
        spec = self.specs.get(frame.flow_id)
        if self.rate_controller is not None and frame.kind is FrameKind.DATA:
            return self.rate_controller.current_rate(frame.receiver)
        if spec is not None:
            return spec.bitrate
        return None

    def on_frame_sent(self, frame: Frame, success: bool, now: float) -> None:
        if frame.kind is not FrameKind.DATA or not isinstance(frame.payload, SrcrDataPayload):
            return
        if self.rate_controller is not None:
            self.rate_controller.record_result(frame.receiver, success,
                                               max(0, frame.mac_attempts - 1), now)
        queue = self.queues.get(frame.flow_id)
        if not queue:
            return
        if success and queue and queue[0] == frame.payload.sequence:
            queue.popleft()
        # On failure the packet stays at the head of the queue and will be
        # retried (persistent link-layer retransmission).
        self.notify_pending()

    # ------------------------------------------------------------------ #
    # Reception
    # ------------------------------------------------------------------ #

    def on_frame_received(self, frame: Frame, now: float) -> None:
        if frame.kind is not FrameKind.DATA or not isinstance(frame.payload, SrcrDataPayload):
            return
        if frame.receiver != self.node_id:
            return  # traditional routing ignores overheard packets
        spec = self.specs.get(frame.flow_id)
        if spec is None:
            return
        sequence = frame.payload.sequence
        if self.node_id == spec.destination:
            seen = self.delivered.setdefault(frame.flow_id, set())
            if sequence not in seen:
                seen.add(sequence)
                if self.sim is not None:
                    self.sim.stats.record_delivery(frame.flow_id, 1, now)
            elif self.sim is not None:
                self.sim.stats.record_duplicate(frame.flow_id)
            return
        # Relay toward the destination.
        self.queues.setdefault(frame.flow_id, deque()).append(sequence)
        self.notify_pending()


@dataclass
class SrcrFlowHandle:
    """Handle returned by :func:`setup_srcr_flow`."""

    spec: SrcrFlowSpec
    record: FlowRecord

    @property
    def flow_id(self) -> int:
        """Flow identifier."""
        return self.spec.flow_id


def _get_or_create_agent(sim: Simulator, node_id: int, use_autorate: bool) -> SrcrAgent:
    existing = sim.nodes[node_id].agent
    if existing is None:
        agent = SrcrAgent(node_id, use_autorate=use_autorate)
        sim.attach_agent(node_id, agent)
        return agent
    if not isinstance(existing, SrcrAgent):
        raise TypeError(
            f"node {node_id} already runs {existing.protocol_name}; cannot add an Srcr flow"
        )
    return existing


def setup_srcr_flow(sim: Simulator, topology: Topology, source: int, destination: int,
                    *, total_packets: int, packet_size: int = 1500,
                    use_autorate: bool = False, bitrate: int | None = None,
                    flow_id: int | None = None, start_time: float = 0.0,
                    control_topology: Topology | None = None) -> SrcrFlowHandle:
    """Install an Srcr file transfer from ``source`` to ``destination``.

    ``control_topology`` carries the link-quality estimates the route is
    computed from (defaults to the true topology).
    """
    if flow_id is None:
        flow_id = next(_flow_ids)
    control = control_topology if control_topology is not None else topology
    route = best_path(control, source, destination)
    spec = SrcrFlowSpec(
        flow_id=flow_id,
        source=source,
        destination=destination,
        route=route,
        packet_size=packet_size,
        total_packets=total_packets,
        bitrate=bitrate,
    )
    for node in route:
        agent = _get_or_create_agent(sim, node, use_autorate)
        agent.install_flow(spec)
    source_agent = sim.nodes[source].agent
    assert isinstance(source_agent, SrcrAgent)
    record = sim.stats.register_flow(flow_id, source, destination, total_packets,
                                     packet_size, start_time)
    sim.events.schedule_callback_at(
        start_time, lambda: source_agent.enqueue_source_packets(flow_id))
    return SrcrFlowHandle(spec=spec, record=record)
