"""Routing protocols: MORE (the contribution), ExOR and Srcr (the baselines)."""

from repro.protocols.base import ProtocolAgent
from repro.protocols.exor import ExorAgent, ExorFlowHandle, setup_exor_flow
from repro.protocols.more import MoreAgent, MoreFlowHandle, setup_more_flow
from repro.protocols.srcr import SrcrAgent, SrcrFlowHandle, setup_srcr_flow

__all__ = [
    "ExorAgent",
    "ExorFlowHandle",
    "MoreAgent",
    "MoreFlowHandle",
    "ProtocolAgent",
    "SrcrAgent",
    "SrcrFlowHandle",
    "setup_exor_flow",
    "setup_more_flow",
    "setup_srcr_flow",
]
