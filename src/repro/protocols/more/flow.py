"""MORE flow construction: plumbing a file transfer into the simulator.

:func:`setup_more_flow` does the work of the source's control plane
(Section 3.1.1): it computes the ETX distances, the forwarder list, the TX
credits (Algorithm 1 + Eq. 3.3 + pruning), splits the file into batches and
installs :class:`~repro.protocols.more.agent.MoreAgent` state at every
participating node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.coding.packet import Batch, NativePacket, split_file
from repro.metrics.credits import forwarding_plan
from repro.metrics.etx import best_path
from repro.protocols.more.agent import MoreAgent, MoreFlowSpec
from repro.protocols.more.header import ForwarderEntry
from repro.sim.simulator import Simulator
from repro.sim.trace import FlowRecord
from repro.topology.graph import Topology

_flow_ids = itertools.count(1)


@dataclass
class MoreFlowHandle:
    """Handle returned by :func:`setup_more_flow` for inspecting the flow."""

    spec: MoreFlowSpec
    record: FlowRecord
    source_agent: MoreAgent
    destination_agent: MoreAgent

    @property
    def flow_id(self) -> int:
        """Flow identifier."""
        return self.spec.flow_id

    def decoded_payloads(self) -> list[np.ndarray]:
        """Native payloads recovered by the destination, in order."""
        state = self.destination_agent.destination_flows[self.spec.flow_id]
        return list(state.decoded_payloads)

    def decoded_bytes(self) -> bytes:
        """Concatenated decoded payload bytes."""
        payloads = self.decoded_payloads()
        if not payloads:
            return b""
        return b"".join(p.tobytes() for p in payloads)


def _get_or_create_agent(sim: Simulator, node_id: int, seed: int) -> MoreAgent:
    """Return the node's MoreAgent, creating and attaching one if needed."""
    existing = sim.nodes[node_id].agent
    if existing is None:
        agent = MoreAgent(node_id, seed=seed)
        sim.attach_agent(node_id, agent)
        return agent
    if not isinstance(existing, MoreAgent):
        raise TypeError(
            f"node {node_id} already runs {existing.protocol_name}; cannot add a MORE flow"
        )
    return existing


def _synthetic_batches(total_packets: int, batch_size: int, payload_size: int,
                       rng: np.random.Generator) -> list[Batch]:
    """Build batches with random payload bytes (no real file supplied)."""
    batches: list[Batch] = []
    remaining = total_packets
    batch_id = 0
    while remaining > 0:
        count = min(batch_size, remaining)
        packets = [
            NativePacket(index=i,
                         payload=rng.integers(0, 256, size=payload_size, dtype=np.uint8))
            for i in range(count)
        ]
        batches.append(Batch(batch_id=batch_id, packets=packets))
        remaining -= count
        batch_id += 1
    return batches


def setup_more_flow(sim: Simulator, topology: Topology, source: int, destination: int,
                    *, file_bytes: bytes | None = None, total_packets: int | None = None,
                    batch_size: int = 32, packet_size: int = 1500,
                    coding_payload_size: int | None = None,
                    vector_only: bool = False, metric: str = "etx",
                    prune: bool = True, bitrate: int | None = None,
                    seed: int = 0, flow_id: int | None = None,
                    start_time: float = 0.0,
                    control_topology: Topology | None = None,
                    decode_engine: str = "auto",
                    max_relays: int | None = None) -> MoreFlowHandle:
    """Install a MORE file transfer from ``source`` to ``destination``.

    Exactly one of ``file_bytes`` and ``total_packets`` must be provided.

    Args:
        sim: the simulator the flow runs in.
        topology: the mesh (used for ETX/credit computation and routes).
        source / destination: endpoints of the transfer.
        file_bytes: actual file contents (end-to-end integrity verifiable).
        total_packets: alternatively, the number of native packets to send
            with synthetic payloads.
        batch_size: K.
        packet_size: native packet size in bytes (air time).
        coding_payload_size: bytes pushed through the coding pipeline; use a
            small value to speed up big simulations (default: packet_size
            when a real file is given, 16 bytes otherwise).
        vector_only: run the payload-free fast path — code over zero-length
            payloads so all payload arithmetic disappears.  Delivery, rank
            progression and throughput are unchanged (code vectors drive
            them; empty payload draws consume no RNG state); only
            ``decoded_payloads()`` becomes vacuous.  Incompatible with
            ``file_bytes``, whose point is payload verification.
        metric: forwarder ordering metric, "etx" (deployed MORE) or "eotx".
        control_topology: the link qualities as the routing control plane
            believes them to be (ETX probe estimates); defaults to the true
            ``topology``.
        prune: apply the 10% forwarder pruning rule.
        bitrate: optional fixed data bit-rate for this flow.
        seed: seed for the per-node coding RNGs.
        flow_id: explicit flow id (auto-assigned when omitted).
        start_time: when the source starts transmitting.
        decode_engine: buffer/decoder insertion engine for this flow
            (``"auto"`` follows the simulator engine; see
            :class:`repro.coding.buffer.BatchBuffer`).
        max_relays: cap the forwarder list at this many relays — the
            highest-expected-load ones, replacing the 10% pruning rule
            (:func:`repro.metrics.credits.cap_forwarders`).  This is the
            relay-count axis of the kilonode tier, where the fraction rule
            degenerates (load spreads so thin no relay reaches 10% of the
            total and the flow strands).  ``None`` keeps the full pruned
            plan, today's behaviour bit for bit.

    Returns:
        A :class:`MoreFlowHandle`.
    """
    if (file_bytes is None) == (total_packets is None):
        raise ValueError("provide exactly one of file_bytes or total_packets")
    if vector_only and file_bytes is not None:
        raise ValueError("vector_only skips payload bytes; it cannot carry file_bytes")
    if vector_only and coding_payload_size is not None:
        raise ValueError(
            "vector_only forces a zero-byte coding payload; do not also pass "
            "coding_payload_size"
        )
    if flow_id is None:
        flow_id = next(_flow_ids)

    rng = np.random.default_rng((seed, flow_id))
    if file_bytes is not None:
        coding_size = coding_payload_size if coding_payload_size is not None else packet_size
        batches = split_file(file_bytes, batch_size=batch_size, packet_size=coding_size)
    else:
        if vector_only:
            coding_size = 0
        else:
            coding_size = coding_payload_size if coding_payload_size is not None else 16
        assert total_packets is not None
        batches = _synthetic_batches(total_packets, batch_size, coding_size, rng)
    total = sum(batch.size for batch in batches)

    control = control_topology if control_topology is not None else topology
    plan = forwarding_plan(control, source, destination, metric=metric, prune=prune,
                           max_forwarders=max_relays)
    intermediates = plan.forwarder_list(include_endpoints=False)
    forwarder_entries = [
        ForwarderEntry(node_id=node, tx_credit=float(plan.tx_credit[node]))
        for node in intermediates
    ]
    tx_credit = {node: float(plan.tx_credit[node]) for node in plan.participants}
    distances = {node: float(plan.distances[node]) for node in plan.participants}
    ack_route = best_path(control, destination, source)

    spec = MoreFlowSpec(
        flow_id=flow_id,
        source=source,
        destination=destination,
        batch_size=batch_size,
        packet_size=packet_size,
        coding_payload_size=coding_size,
        forwarders=forwarder_entries,
        tx_credit=tx_credit,
        distances=distances,
        ack_route=ack_route,
        total_packets=total,
        batch_count=len(batches),
        bitrate=bitrate,
        decode_engine=decode_engine,
        max_relays=max_relays,
    )

    source_agent = _get_or_create_agent(sim, source, seed)
    source_agent.install_source(spec, batches)
    destination_agent = _get_or_create_agent(sim, destination, seed)
    destination_agent.install_destination(spec)
    for node in intermediates:
        _get_or_create_agent(sim, node, seed).install_forwarder(spec)
    for node in ack_route[1:-1]:
        agent = _get_or_create_agent(sim, node, seed)
        if flow_id not in agent.specs:
            agent.install_ack_relay(spec)

    record = sim.stats.register_flow(flow_id, source, destination, total, packet_size,
                                     start_time)
    sim.events.schedule_callback_at(start_time, lambda: sim.trigger_node(source))
    return MoreFlowHandle(spec=spec, record=record, source_agent=source_agent,
                          destination_agent=destination_agent)
