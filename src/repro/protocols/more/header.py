"""MORE packet header (Section 3.3.1, Figure 3-1).

Every MORE packet starts with a small set of required fields (type, source,
destination, flow id, batch id) followed by optional fields: the code vector
(data packets only) and the forwarder list with per-forwarder TX credits.

The paper bounds the header at roughly 70 bytes by limiting the forwarder
list to 10 entries, hashing node ids to one byte and compressing batch ids;
this implementation reproduces those choices so the <5% header-overhead
claim of Section 4.6(c) can be checked against real serialised bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

#: Maximum number of forwarders carried in a header (Section 4.6(c)).
MAX_FORWARDERS = 10

#: Fixed-point scale used to quantise TX credits into one byte (4.4 format).
CREDIT_SCALE = 16


class MorePacketType(IntEnum):
    """Packet type field: data packets vs batch ACKs."""

    DATA = 0
    ACK = 1


@dataclass
class ForwarderEntry:
    """One forwarder-list entry: node id plus its TX credit."""

    node_id: int
    tx_credit: float

    def quantized_credit(self) -> int:
        """Credit quantised to 4.4 fixed point (saturating)."""
        return min(255, max(0, int(round(self.tx_credit * CREDIT_SCALE))))


@dataclass(slots=True)
class MoreHeader:
    """The MORE header carried in front of every data packet and batch ACK.

    Attributes:
        packet_type: DATA or ACK.
        source: source node id of the flow.
        destination: destination node id of the flow.
        flow_id: flow identifier.
        batch_id: batch the packet belongs to.
        code_vector: combination coefficients (data packets only).
        forwarders: the forwarder list with TX credits, ordered by
            increasing distance (ETX) to the destination.
    """

    packet_type: MorePacketType
    source: int
    destination: int
    flow_id: int
    batch_id: int
    code_vector: np.ndarray | None = None
    forwarders: list[ForwarderEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.forwarders) > MAX_FORWARDERS:
            # Keep the closest-to-destination forwarders (list is ordered).
            self.forwarders = self.forwarders[:MAX_FORWARDERS]
        if self.code_vector is not None:
            self.code_vector = np.asarray(self.code_vector, dtype=np.uint8)

    @classmethod
    def for_data(cls, source: int, destination: int, flow_id: int, batch_id: int,
                 code_vector: np.ndarray,
                 forwarders: list[ForwarderEntry]) -> "MoreHeader":
        """Build a DATA header without re-normalising the inputs.

        The per-transmission fast path: callers must pass a ``uint8`` code
        vector and a forwarder list already within
        :data:`MAX_FORWARDERS` entries (both invariants hold for
        spec-derived inputs), so the ``__post_init__`` checks are skipped.
        """
        header = cls.__new__(cls)
        header.packet_type = MorePacketType.DATA
        header.source = source
        header.destination = destination
        header.flow_id = flow_id
        header.batch_id = batch_id
        header.code_vector = code_vector
        header.forwarders = forwarders
        return header

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    _REQUIRED = struct.Struct("!BIIHBBB")  # type, src, dst, flow, batch, K, n_fwd

    def pack(self) -> bytes:
        """Serialise the header to bytes."""
        vector = self.code_vector if self.code_vector is not None else np.zeros(0, np.uint8)
        parts = [
            self._REQUIRED.pack(
                int(self.packet_type),
                self.source & 0xFFFFFFFF,
                self.destination & 0xFFFFFFFF,
                self.flow_id & 0xFFFF,
                self.batch_id & 0xFF,
                len(vector) & 0xFF,
                len(self.forwarders) & 0xFF,
            ),
            vector.tobytes(),
        ]
        for entry in self.forwarders:
            parts.append(struct.pack("!BB", entry.node_id & 0xFF, entry.quantized_credit()))
        return b"".join(parts)

    @classmethod
    def unpack(cls, data: bytes) -> "MoreHeader":
        """Parse a header previously produced by :meth:`pack`."""
        required_size = cls._REQUIRED.size
        if len(data) < required_size:
            raise ValueError("buffer too small for a MORE header")
        (packet_type, source, destination, flow_id, batch_id,
         vector_length, forwarder_count) = cls._REQUIRED.unpack_from(data, 0)
        offset = required_size
        vector = None
        if vector_length:
            vector = np.frombuffer(data, dtype=np.uint8, count=vector_length, offset=offset).copy()
            offset += vector_length
        forwarders = []
        for _ in range(forwarder_count):
            node_id, credit = struct.unpack_from("!BB", data, offset)
            offset += 2
            forwarders.append(ForwarderEntry(node_id=node_id, tx_credit=credit / CREDIT_SCALE))
        return cls(
            packet_type=MorePacketType(packet_type),
            source=source,
            destination=destination,
            flow_id=flow_id,
            batch_id=batch_id,
            code_vector=vector,
            forwarders=forwarders,
        )

    def size_bytes(self) -> int:
        """Serialised header size in bytes."""
        vector_length = 0 if self.code_vector is None else int(self.code_vector.shape[0])
        return self._REQUIRED.size + vector_length + 2 * len(self.forwarders)

    def overhead_fraction(self, payload_bytes: int) -> float:
        """Header overhead as a fraction of the packet (Section 4.6(c))."""
        total = self.size_bytes() + payload_bytes
        return self.size_bytes() / total if total else 0.0

    def forwarder_ids(self) -> list[int]:
        """Node ids in the forwarder list, in priority order."""
        return [entry.node_id for entry in self.forwarders]
