"""MORE: MAC-independent Opportunistic Routing & Encoding."""

from repro.protocols.more.agent import (
    MoreAckPayload,
    MoreAgent,
    MoreDataPayload,
    MoreFlowSpec,
)
from repro.protocols.more.flow import MoreFlowHandle, setup_more_flow
from repro.protocols.more.header import (
    CREDIT_SCALE,
    MAX_FORWARDERS,
    ForwarderEntry,
    MoreHeader,
    MorePacketType,
)

__all__ = [
    "CREDIT_SCALE",
    "ForwarderEntry",
    "MAX_FORWARDERS",
    "MoreAckPayload",
    "MoreAgent",
    "MoreDataPayload",
    "MoreFlowHandle",
    "MoreFlowSpec",
    "MoreHeader",
    "MorePacketType",
    "setup_more_flow",
]
