"""MORE protocol agent: source, forwarder and destination roles (Chapter 3).

One :class:`MoreAgent` runs on every participating node and multiplexes any
number of flows, holding the per-flow state of Section 3.3.2:

* the **source** keeps one :class:`~repro.coding.encoder.SourceEncoder` per
  batch and keeps transmitting coded packets of the current batch until the
  batch ACK arrives;
* a **forwarder** keeps a batch buffer of innovative packets, a credit
  counter incremented by its TX credit on every packet heard from upstream
  and decremented on every transmission, and a pre-coded packet that is
  refreshed whenever an innovative packet arrives;
* the **destination** keeps a decoder, sends a batch ACK on the reverse
  best-ETX path as soon as it has K innovative packets and then decodes.

ACKs are unicast hop-by-hop with MAC-layer reliability, are prioritised over
data, and are snooped by every overhearing forwarder, which then flushes the
acked batch (Section 3.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coding.decoder import BatchDecoder
from repro.coding.encoder import ForwarderEncoder, SourceEncoder
from repro.coding.packet import Batch, CodedPacket
from repro.protocols.base import ProtocolAgent
from repro.protocols.more.header import (
    MAX_FORWARDERS,
    ForwarderEntry,
    MoreHeader,
    MorePacketType,
)
from repro.sim.frames import BROADCAST, Frame, FrameKind

#: Size in bytes of a serialised batch ACK (header only, no code vector).
ACK_SIZE_BYTES = 20
#: MAC priority for batch ACKs (served before data).
ACK_PRIORITY = 10


@dataclass
class MoreFlowSpec:
    """Static description of one MORE flow, shared by all its agents.

    Attributes:
        flow_id: unique flow identifier.
        source: source node id.
        destination: destination node id.
        batch_size: nominal K (the last batch may be smaller).
        packet_size: native packet size in bytes (used for air time).
        coding_payload_size: byte length actually carried through the coding
            pipeline; equals ``packet_size`` for full-fidelity runs and can
            be reduced to speed up large simulations without changing the
            protocol behaviour (air time still uses ``packet_size``).  A
            size of 0 is the vector-only fast path: every payload is the
            empty vector, so coding, buffering and decoding touch code
            vectors alone while delivery and throughput stay identical.
        forwarders: forwarder-list entries (intermediate nodes, closest to
            the destination first) with their TX credits.
        tx_credit: node id -> TX credit (Eq. 3.3).
        distances: node id -> ETX distance to the destination, used to
            decide which receptions are "from upstream".
        ack_route: node list from destination to source used by batch ACKs.
        total_packets: total native packets in the transfer.
        batch_count: number of batches.
        bitrate: optional fixed bit-rate override for this flow's data.
        decode_engine: insertion-engine selector for this flow's buffers
            and decoders (``"auto"`` follows the simulator engine:
            ``vectorized`` under the fast engine, ``scalar`` under
            ``engine="legacy"``; an explicit ``"vectorized"`` / ``"eager"``
            / ``"scalar"`` pins it — see
            :class:`repro.coding.buffer.BatchBuffer`).
        max_relays: optional cap on the forwarder list length (the
            relay-count axis of the kilonode tier); ``None`` keeps the
            full pruned plan.
    """

    flow_id: int
    source: int
    destination: int
    batch_size: int
    packet_size: int
    coding_payload_size: int
    forwarders: list[ForwarderEntry]
    tx_credit: dict[int, float]
    distances: dict[int, float]
    ack_route: list[int]
    total_packets: int
    batch_count: int
    bitrate: int | None = None
    decode_engine: str = "auto"
    max_relays: int | None = None
    # Per-flow constants, memoised on first use (the spec is immutable once
    # installed and these sit on the per-frame hot path).
    _header_size: int | None = field(default=None, init=False, repr=False,
                                     compare=False)
    _forwarder_id_set: frozenset[int] | None = field(default=None, init=False,
                                                     repr=False, compare=False)
    _header_forwarders: list[ForwarderEntry] | None = field(default=None, init=False,
                                                            repr=False, compare=False)

    def invalidate_plan_caches(self) -> None:
        """Drop the memoised per-flow constants after a plan refresh.

        The link-state refresh loop mutates ``forwarders`` / ``tx_credit``
        / ``distances`` / ``ack_route`` in place (the spec object is shared
        by every agent of the flow); the memoised header size and forwarder
        sets must be recomputed from the new plan.
        """
        self._header_size = None
        self._forwarder_id_set = None
        self._header_forwarders = None

    def header_size(self) -> int:
        """Size of the MORE data header for this flow (computed once)."""
        size = self._header_size
        if size is None:
            size = self._header_size = self.compute_header_size()
        return size

    def compute_header_size(self) -> int:
        """Build a representative header and measure it (uncached).

        The per-frame hot path goes through the memoised
        :meth:`header_size`; this is the raw computation, also used by the
        legacy engine mode so the reference measurement keeps the original
        per-frame cost.
        """
        header = MoreHeader(
            packet_type=MorePacketType.DATA,
            source=self.source,
            destination=self.destination,
            flow_id=self.flow_id,
            batch_id=0,
            code_vector=np.zeros(self.batch_size, dtype=np.uint8),
            forwarders=self.forwarders,
        )
        return header.size_bytes()

    def data_frame_size(self) -> int:
        """On-air payload size of a MORE data frame."""
        return self.packet_size + self.header_size()

    def forwarder_id_set(self) -> frozenset[int]:
        """The node ids a data header of this flow lists as forwarders.

        Matches ``MoreHeader.forwarder_ids()`` exactly, including the
        :data:`~repro.protocols.more.header.MAX_FORWARDERS` truncation the
        header applies on construction.
        """
        ids = self._forwarder_id_set
        if ids is None:
            ids = self._forwarder_id_set = frozenset(
                entry.node_id for entry in self.forwarders[:MAX_FORWARDERS])
        return ids

    def header_forwarders(self) -> list[ForwarderEntry]:
        """The (pre-truncated) forwarder list carried by every data header."""
        entries = self._header_forwarders
        if entries is None:
            entries = self._header_forwarders = self.forwarders[:MAX_FORWARDERS]
        return entries

    def ack_next_hop(self, node_id: int) -> int | None:
        """Next hop toward the source on the ACK route, or None."""
        if node_id not in self.ack_route:
            return None
        position = self.ack_route.index(node_id)
        if position + 1 >= len(self.ack_route):
            return None
        return self.ack_route[position + 1]

    def buffer_engine(self) -> str | None:
        """The ``engine=`` argument for this flow's buffers and decoders.

        ``"auto"`` maps to ``None`` so the buffer derives the engine from
        the agent's ``fast`` flag (vectorized under the fast simulator
        engine, the scalar reference under ``engine="legacy"``); anything
        else is passed through verbatim.
        """
        return None if self.decode_engine == "auto" else self.decode_engine

    def is_upstream(self, sender: int, receiver: int) -> bool:
        """True if ``sender`` is farther from the destination than ``receiver``."""
        sender_distance = self.distances.get(sender)
        receiver_distance = self.distances.get(receiver)
        if sender_distance is None or receiver_distance is None:
            return False
        return sender_distance > receiver_distance


@dataclass(slots=True)
class MoreDataPayload:
    """Payload attached to MORE data frames."""

    header: MoreHeader
    coded: CodedPacket


@dataclass(slots=True)
class MoreAckPayload:
    """Payload attached to MORE batch ACK frames."""

    flow_id: int
    batch_id: int


class _SourceState:
    """Per-flow state held by the source node."""

    def __init__(self, spec: MoreFlowSpec, batches: list[Batch], rng: np.random.Generator) -> None:
        self.spec = spec
        self.encoders = [SourceEncoder(batch, rng) for batch in batches]
        self.batches = batches
        self.current_batch = 0
        self.acked: set[int] = set()
        #: True once every batch of the transfer has been acknowledged
        #: (maintained by :meth:`handle_ack`; polled on every MAC poll).
        self.done = False

    def handle_ack(self, batch_id: int) -> None:
        """Record a batch ACK and advance to the next batch."""
        self.acked.add(batch_id)
        while self.current_batch < len(self.encoders) and self.current_batch in self.acked:
            self.current_batch += 1
        if len(self.acked) >= len(self.encoders):
            self.done = True


class _ForwarderState:
    """Per-flow state held by an intermediate forwarder."""

    def __init__(self, spec: MoreFlowSpec, node_id: int, rng: np.random.Generator,
                 fast: bool = True) -> None:
        self.spec = spec
        self.node_id = node_id
        self.rng = rng
        self.fast = fast
        self.credit = 0.0
        self.current_batch = 0
        self.encoder: ForwarderEncoder | None = None
        self.refresh_from_spec()

    def refresh_from_spec(self) -> None:
        """(Re)derive the cached per-node plan constants from the spec.

        Called at construction and again by the link-state refresh loop
        after the shared spec's plan fields were rebuilt mid-flow.
        """
        spec = self.spec
        node_id = self.node_id
        self.tx_credit = spec.tx_credit.get(node_id, 0.0)
        # The senders whose packets count as "from upstream" for this node
        # (strictly greater ETX distance to the destination) only change
        # when the plan is refreshed: one frozenset probe replaces two dict
        # probes plus a float comparison per heard data frame.
        mine = spec.distances.get(node_id)
        if mine is None:
            self.upstream_senders: frozenset[int] = frozenset()
        else:
            self.upstream_senders = frozenset(
                node for node, distance in spec.distances.items()
                if distance > mine)
        # Whether this node actually appears in the (truncated) forwarder
        # list data headers carry — forwarders pruned by the MAX_FORWARDERS
        # cap keep state but must ignore the flow's data packets.
        self.listed = node_id in spec.forwarder_id_set()

    def _ensure_encoder(self, batch_size: int, batch_id: int) -> ForwarderEncoder:
        if self.encoder is None or self.encoder.buffer.batch_size != batch_size \
                or self.encoder.batch_id != batch_id:
            self.encoder = ForwarderEncoder(
                batch_size=batch_size,
                packet_size=self.spec.coding_payload_size,
                rng=self.rng,
                batch_id=batch_id,
                fast=self.fast,
                engine=self.spec.buffer_engine(),
            )
        return self.encoder

    def flush(self, new_batch: int) -> None:
        """Drop buffered packets and credit when a batch is superseded or acked."""
        self.current_batch = new_batch
        self.credit = 0.0
        self.encoder = None

    def handle_data(self, header: MoreHeader, coded: CodedPacket,
                    fast: bool = False) -> bool:
        """Process a data packet heard for this flow; return True if buffered."""
        if header.batch_id < self.current_batch:
            return False
        if header.batch_id > self.current_batch:
            self.flush(header.batch_id)
        encoder = self._ensure_encoder(coded.batch_size, header.batch_id)
        if fast and encoder.buffer.is_full:
            # Full rank: no vector can be innovative, and a non-innovative
            # insert draws no randomness — skip the GF elimination outright.
            return False
        return encoder.add_packet(coded)

    @property
    def backlogged(self) -> bool:
        """True if the forwarder currently owes transmissions (Section 3.3.3)."""
        return (self.credit > 0.0 and self.encoder is not None
                and self.encoder.has_data())


class _DestinationState:
    """Per-flow state held by the destination node."""

    def __init__(self, spec: MoreFlowSpec, fast: bool = True) -> None:
        self.spec = spec
        self.fast = fast
        self.current_batch = 0
        self.decoder: BatchDecoder | None = None
        self.completed: set[int] = set()
        self.decoded_payloads: list[np.ndarray] = []

    def _ensure_decoder(self, batch_size: int, batch_id: int) -> BatchDecoder:
        if self.decoder is None or self.decoder.batch_id != batch_id \
                or self.decoder.batch_size != batch_size:
            self.decoder = BatchDecoder(
                batch_size=batch_size,
                packet_size=self.spec.coding_payload_size,
                batch_id=batch_id,
                fast=self.fast,
                engine=self.spec.buffer_engine(),
            )
        return self.decoder

    def handle_data(self, header: MoreHeader, coded: CodedPacket) -> tuple[bool, bool]:
        """Process a data packet; returns (innovative, batch_just_completed)."""
        batch_id = header.batch_id
        if batch_id in self.completed or batch_id < self.current_batch:
            return False, False
        if batch_id > self.current_batch:
            self.current_batch = batch_id
            self.decoder = None
        decoder = self._ensure_decoder(coded.batch_size, batch_id)
        innovative = decoder.add_packet(coded)
        if decoder.is_complete and batch_id not in self.completed:
            self.completed.add(batch_id)
            for native in decoder.decode():
                self.decoded_payloads.append(native.payload)
            return innovative, True
        return innovative, False


class MoreAgent(ProtocolAgent):
    """The MORE routing agent running on one node."""

    protocol_name = "MORE"

    def __init__(self, node_id: int, seed: int = 0) -> None:
        super().__init__(node_id)
        self.rng = np.random.default_rng((seed, node_id))
        self.source_flows: dict[int, _SourceState] = {}
        self.forward_flows: dict[int, _ForwarderState] = {}
        self.destination_flows: dict[int, _DestinationState] = {}
        self.specs: dict[int, MoreFlowSpec] = {}
        self._ack_queue: list[Frame] = []
        self._round_robin = 0
        # (flow_id, state) when this agent serves exactly one flow in one
        # role — the overwhelmingly common shape, dispatched without
        # rebuilding the backlogged-flow list on every MAC poll.  Refreshed
        # by the install_* methods.
        self._single_source: tuple[int, _SourceState] | None = None
        self._single_forwarder: tuple[int, _ForwarderState] | None = None
        # Counters for the overhead analysis.
        self.data_sent = 0
        self.acks_sent = 0
        self.innovative_received = 0
        self.non_innovative_received = 0

    # ------------------------------------------------------------------ #
    # Flow installation (called by the flow builder)
    # ------------------------------------------------------------------ #

    def install_source(self, spec: MoreFlowSpec, batches: list[Batch]) -> None:
        """Install source-side state for a flow originating at this node."""
        self.specs[spec.flow_id] = spec
        self.source_flows[spec.flow_id] = _SourceState(spec, batches, self.rng)
        self._refresh_flow_shape()

    def install_forwarder(self, spec: MoreFlowSpec) -> None:
        """Install forwarder-side state for a flow this node may relay."""
        self.specs[spec.flow_id] = spec
        self.forward_flows[spec.flow_id] = _ForwarderState(spec, self.node_id,
                                                           self.rng, fast=self._fast)
        self._refresh_flow_shape()

    def _refresh_flow_shape(self) -> None:
        """Recompute the single-flow dispatch shortcuts."""
        self._single_source = None
        self._single_forwarder = None
        if not self.forward_flows and len(self.source_flows) == 1:
            self._single_source = next(iter(self.source_flows.items()))
        elif not self.source_flows and len(self.forward_flows) == 1:
            self._single_forwarder = next(iter(self.forward_flows.items()))

    def install_destination(self, spec: MoreFlowSpec) -> None:
        """Install destination-side state for a flow terminating at this node."""
        self.specs[spec.flow_id] = spec
        self.destination_flows[spec.flow_id] = _DestinationState(spec, fast=self._fast)

    def install_ack_relay(self, spec: MoreFlowSpec) -> None:
        """Register the flow spec so this node can relay its batch ACKs."""
        self.specs[spec.flow_id] = spec

    # ------------------------------------------------------------------ #
    # MAC interface
    # ------------------------------------------------------------------ #

    def has_pending(self, now: float) -> bool:
        if self._ack_queue:
            return True
        if self._fast:
            single = self._single_source
            if single is not None:
                return not single[1].done
            single = self._single_forwarder
            if single is not None:
                return single[1].backlogged
            for state in self.source_flows.values():
                if not state.done:
                    return True
            for state in self.forward_flows.values():
                if state.backlogged:
                    return True
            return False
        # Reference path: the original generator-expression scans.
        if any(not state.done for state in self.source_flows.values()):
            return True
        return any(state.backlogged for state in self.forward_flows.values())

    def on_transmit_opportunity(self, now: float) -> Frame | None:
        # Batch ACKs have strict priority (Section 3.2.2).
        if self._ack_queue:
            return self._ack_queue[0]
        if self._fast:
            # Single-flow fast paths (the overwhelmingly common agent
            # shapes): round-robin over one backlogged flow always lands on
            # it, so skip building and sorting the flow-id list.
            single = self._single_source
            if single is not None:
                flow_id, state = single
                if state.done:
                    return None
                self._round_robin = 0
                return self._make_source_frame(flow_id, state)
            single = self._single_forwarder
            if single is not None:
                flow_id, state = single
                if not state.backlogged:
                    return None
                self._round_robin = 0
                return self._make_forwarder_frame(flow_id)
        flows = self._backlogged_flow_ids()
        if not flows:
            return None
        # Round-robin over backlogged flows (Section 3.3.3, sender side).
        self._round_robin = (self._round_robin + 1) % len(flows)
        flow_id = flows[self._round_robin]
        source_state = self.source_flows.get(flow_id)
        if source_state is not None and not source_state.done:
            return self._make_source_frame(flow_id, source_state)
        return self._make_forwarder_frame(flow_id)

    def _backlogged_flow_ids(self) -> list[int]:
        flows = [fid for fid, state in self.source_flows.items() if not state.done]
        flows.extend(fid for fid, state in self.forward_flows.items()
                     if state.backlogged and fid not in flows)
        return sorted(flows)

    def select_bitrate(self, frame: Frame) -> int | None:
        spec = self.specs.get(frame.flow_id)
        if spec is not None and frame.kind is FrameKind.DATA:
            return spec.bitrate
        return None

    # ------------------------------------------------------------------ #
    # Frame construction
    # ------------------------------------------------------------------ #

    def _make_source_frame(self, flow_id: int,
                           state: _SourceState | None = None) -> Frame:
        if state is None:
            state = self.source_flows[flow_id]
        spec = state.spec
        encoder = state.encoders[state.current_batch]
        # The dedicated single-packet encode path skips the batch-matrix
        # scaffolding; legacy mode keeps the original batched-call pattern
        # (same draws, same packet, different constant factor).
        coded = encoder.next_packet() if self._fast else encoder.next_packets(1)[0]
        header = self._make_data_header(spec, flow_id, state.current_batch, coded)
        self.data_sent += 1
        return Frame(
            sender=self.node_id,
            receiver=BROADCAST,
            kind=FrameKind.DATA,
            flow_id=flow_id,
            size_bytes=self._frame_size(spec),
            payload=MoreDataPayload(header=header, coded=coded),
        )

    def _make_data_header(self, spec: MoreFlowSpec, flow_id: int, batch_id: int,
                          coded: CodedPacket) -> MoreHeader:
        """Per-transmission header; normalisation-free under the fast engine."""
        if self._fast:
            # The code vector is uint8 by construction and the spec's header
            # forwarder list is pre-truncated, so __post_init__ has nothing
            # to do — skip it.
            return MoreHeader.for_data(spec.source, spec.destination, flow_id,
                                       batch_id, coded.code_vector,
                                       spec.header_forwarders())
        return MoreHeader(
            packet_type=MorePacketType.DATA,
            source=spec.source,
            destination=spec.destination,
            flow_id=flow_id,
            batch_id=batch_id,
            code_vector=coded.code_vector,
            forwarders=spec.forwarders,
        )

    def _frame_size(self, spec: MoreFlowSpec) -> int:
        """On-air data-frame size (memoised on the spec under the fast engine)."""
        if self._fast:
            return spec.data_frame_size()
        return spec.packet_size + spec.compute_header_size()

    def _make_forwarder_frame(self, flow_id: int) -> Frame | None:
        state = self.forward_flows.get(flow_id)
        if state is None or not state.backlogged:
            return None
        spec = state.spec
        assert state.encoder is not None
        coded = state.encoder.next_packet()
        state.credit -= 1.0
        header = self._make_data_header(spec, flow_id, state.current_batch, coded)
        self.data_sent += 1
        return Frame(
            sender=self.node_id,
            receiver=BROADCAST,
            kind=FrameKind.DATA,
            flow_id=flow_id,
            size_bytes=self._frame_size(spec),
            payload=MoreDataPayload(header=header, coded=coded),
        )

    def _queue_ack(self, spec: MoreFlowSpec, batch_id: int) -> None:
        """Queue a batch ACK toward the source (next hop on the ACK route)."""
        next_hop = spec.ack_next_hop(self.node_id)
        if next_hop is None:
            return
        frame = Frame(
            sender=self.node_id,
            receiver=next_hop,
            kind=FrameKind.BATCH_ACK,
            flow_id=spec.flow_id,
            size_bytes=ACK_SIZE_BYTES,
            payload=MoreAckPayload(flow_id=spec.flow_id, batch_id=batch_id),
            priority=ACK_PRIORITY,
        )
        self._ack_queue.append(frame)
        self.acks_sent += 1
        self.notify_pending()

    # ------------------------------------------------------------------ #
    # Reception handling
    # ------------------------------------------------------------------ #

    def on_frame_received(self, frame: Frame, now: float) -> None:
        # Data frames outnumber ACKs by orders of magnitude: check them first.
        kind = frame.kind
        if kind is FrameKind.DATA:
            payload = frame.payload
            if payload.__class__ is MoreDataPayload:
                self._handle_data(frame, payload, now)
            return
        if kind is FrameKind.BATCH_ACK and isinstance(frame.payload, MoreAckPayload):
            self._handle_ack(frame, frame.payload, now)

    def _handle_ack(self, frame: Frame, ack: MoreAckPayload, now: float) -> None:
        spec = self.specs.get(ack.flow_id)
        # Every node that overhears the ACK flushes the acked batch
        # (Section 3.3.4), whether or not it is the MAC receiver.
        forwarder = self.forward_flows.get(ack.flow_id)
        if forwarder is not None and ack.batch_id >= forwarder.current_batch:
            forwarder.flush(ack.batch_id + 1)
        if frame.receiver != self.node_id or spec is None:
            return
        if self.node_id == spec.source:
            state = self.source_flows.get(ack.flow_id)
            if state is not None:
                state.handle_ack(ack.batch_id)
                self.notify_pending()
            return
        # Relay the ACK one hop closer to the source.
        self._queue_ack(spec, ack.batch_id)

    def _handle_data(self, frame: Frame, payload: MoreDataPayload, now: float) -> None:
        if not self._fast:
            self._handle_data_legacy(frame, payload, now)
            return
        header = payload.header
        flow_id = header.flow_id
        # Per-flow roles are disjoint (a node sources, forwards or decodes a
        # given flow), so dispatch straight off the role tables; nodes with
        # neither role for this flow — the source hearing itself, ACK-route
        # relays, bystanders — fall through and ignore the packet, exactly
        # like the reference path's membership checks.
        state = self.forward_flows.get(flow_id)
        if state is not None:
            # Forwarders pruned from the header by the MAX_FORWARDERS cap
            # must ignore the flow's data (the membership test of the
            # reference path, precomputed per flow).
            if not state.listed:
                return
            batch_id = header.batch_id
            if batch_id >= state.current_batch \
                    and frame.sender in state.upstream_senders:
                # Credit increases for every packet heard from upstream
                # (Section 3.3.3), before the innovation check.
                if batch_id > state.current_batch:
                    state.flush(batch_id)
                state.credit += state.tx_credit
            if state.handle_data(header, payload.coded, True):
                self.innovative_received += 1
            else:
                self.non_innovative_received += 1
            if state.backlogged:
                self.notify_pending()
            return
        destination_state = self.destination_flows.get(flow_id)
        if destination_state is not None:
            spec = self.specs.get(flow_id)
            if spec is not None:
                self._handle_data_at_destination(spec, header, payload.coded, now)

    def _handle_data_legacy(self, frame: Frame, payload: MoreDataPayload,
                            now: float) -> None:
        """The reference (pre-optimisation) reception path, bit-identical to
        :meth:`_handle_data` and kept live under ``engine="legacy"``."""
        header = payload.header
        spec = self.specs.get(header.flow_id)
        if spec is None:
            return
        node_id = self.node_id

        if node_id == spec.destination:
            self._handle_data_at_destination(spec, header, payload.coded, now)
            return

        if node_id not in header.forwarder_ids() and node_id != spec.source:
            return
        if node_id == spec.source:
            # The source ignores data packets of its own flow.
            return

        state = self.forward_flows.get(header.flow_id)
        if state is None:
            return
        if header.batch_id >= state.current_batch \
                and spec.is_upstream(frame.sender, node_id):
            # Credit increases for every packet heard from upstream
            # (Section 3.3.3), before the innovation check.
            if header.batch_id > state.current_batch:
                state.flush(header.batch_id)
            state.credit += state.tx_credit
        innovative = state.handle_data(header, payload.coded)
        if innovative:
            self.innovative_received += 1
        else:
            self.non_innovative_received += 1
        if state.backlogged:
            self.notify_pending()

    def _handle_data_at_destination(self, spec: MoreFlowSpec, header: MoreHeader,
                                    coded: CodedPacket, now: float) -> None:
        state = self.destination_flows.get(header.flow_id)
        if state is None:
            return
        innovative, completed = state.handle_data(header, coded)
        if innovative:
            self.innovative_received += 1
        else:
            self.non_innovative_received += 1
            if self.sim is not None:
                self.sim.stats.record_duplicate(header.flow_id)
        if completed and self.sim is not None:
            batch_packets = coded.batch_size
            self.sim.stats.record_delivery(header.flow_id, batch_packets, now,
                                           batch_complete=True)
            self._queue_ack(spec, header.batch_id)

    # ------------------------------------------------------------------ #
    # MAC completion callbacks
    # ------------------------------------------------------------------ #

    def on_frame_sent(self, frame: Frame, success: bool, now: float) -> None:
        if frame.kind is FrameKind.BATCH_ACK:
            if self._ack_queue and self._ack_queue[0] is frame:
                if success:
                    self._ack_queue.pop(0)
                # On failure the ACK stays queued and will be retried at the
                # next opportunity (Section 3.3.4: reliable, prioritised).
            self.notify_pending()
