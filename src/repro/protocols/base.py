"""Common protocol-agent interface.

A :class:`ProtocolAgent` is the per-node half of a routing protocol.  It is
pull-driven by the MAC: the MAC asks ``has_pending`` / ``on_transmit_opportunity``
when it wins channel access, and pushes ``on_frame_received`` for every frame
the node successfully decodes (including overheard frames addressed to other
nodes).  This mirrors the architecture in Figure 3-2 of the paper and keeps
every protocol strictly above the MAC, which is MORE's whole point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.frames import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.node import SimNode
    from repro.sim.simulator import Simulator


class ProtocolAgent:
    """Base class for per-node protocol implementations."""

    protocol_name = "base"

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.node: "SimNode | None" = None
        self.sim: "Simulator | None" = None
        #: Mirrors ``Simulator.fast_engine`` once bound: agents keep their
        #: original (pre-optimisation) reception paths alive under
        #: ``SimConfig(engine="legacy")`` for differential testing.
        self._fast = True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def bind(self, node: "SimNode") -> None:
        """Called when the agent is attached to a simulation node."""
        self.node = node
        self.sim = node.sim
        self._fast = getattr(node.sim, "fast_engine", True)
        if self._fast and type(self).notify_pending is ProtocolAgent.notify_pending:
            # Shadow the delegating method with the node's bound one: the
            # agent pokes the MAC on most receptions, and the indirection
            # (method frame + None guard) is pure overhead once bound.
            # Subclasses that override notify_pending keep their override.
            self.notify_pending = node.notify_pending

    def notify_pending(self) -> None:
        """Wake the MAC because new traffic became available."""
        if self.node is not None:
            self.node.notify_pending()

    # ------------------------------------------------------------------ #
    # MAC-facing interface (overridden by protocols)
    # ------------------------------------------------------------------ #

    def has_pending(self, now: float) -> bool:
        """True if the agent currently has a frame it wants to transmit."""
        return False

    def on_transmit_opportunity(self, now: float) -> Frame | None:
        """Return the next frame to transmit, or None to pass."""
        return None

    def on_transmission_started(self, frame: Frame, now: float) -> None:
        """Called the instant a transmission begins (MORE pre-codes here)."""

    def on_frame_sent(self, frame: Frame, success: bool, now: float) -> None:
        """Called when the MAC finishes with a frame (success False = unicast drop)."""

    def on_frame_received(self, frame: Frame, now: float) -> None:
        """Called for every frame this node successfully decodes."""

    def select_bitrate(self, frame: Frame) -> int | None:
        """Bit-rate override for ``frame`` (None = simulator default)."""
        return None
