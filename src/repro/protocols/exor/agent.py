"""ExOR: opportunistic routing with a strict transmission schedule (Section 2.2.1).

ExOR gathers packets into batches and defers the choice of forwarder until
after reception: the highest-priority (closest-to-destination by ETX) node
that received a packet forwards it.  To avoid duplicate forwarding without
per-packet coordination, ExOR imposes a **strict schedule**: forwarders of a
flow transmit one at a time, in priority order, and every data packet
carries a *batch map* recording, for each packet of the batch, the highest
priority node known to have received it.

This implementation reproduces the behaviour that matters for the
comparison with MORE:

* batch maps piggy-backed on data packets, merged by every receiver;
* a per-flow scheduler that serialises transmissions — one node of the flow
  transmits at a time, so the flow cannot exploit spatial reuse;
* rounds repeating until the destination holds at least 90% of the batch,
  after which the remaining packets are delivered by traditional hop-by-hop
  unicast routing and the batch is acknowledged on the reverse path.

Simplifications (see DESIGN.md): the turn hand-off uses a shared scheduler
object instead of the fragile timing estimates real ExOR needs, and the
completion signal (90% reached) stops the schedule directly rather than
propagating through batch maps.  Both favour ExOR slightly.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.credits import forwarding_plan
from repro.metrics.etx import best_path
from repro.protocols.base import ProtocolAgent
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.simulator import Simulator
from repro.sim.trace import FlowRecord
from repro.topology.graph import Topology

#: ExOR per-packet header: addressing + batch map (one byte per packet).
EXOR_BASE_HEADER_BYTES = 24
#: Fraction of a batch the destination must hold before the schedule stops
#: and the remainder travels over traditional routing (the ExOR design).
DEFAULT_COMPLETION_THRESHOLD = 0.9
#: Bytes of a cleanup-request / batch-ACK control frame.
CONTROL_SIZE_BYTES = 40
#: Rank assigned to a node dropped from the participant list by a
#: link-state refresh: far outside the batch-map value range, so the node
#: can never claim responsibility for (or lower the map entry of) any
#: packet again.
INERT_RANK = 1 << 20

#: Guard time inserted between forwarder turns.  Real ExOR cannot hand the
#: schedule over explicitly: each forwarder estimates when its predecessor
#: will finish from the batch map and a rate guess, and pads the estimate to
#: avoid colliding with it (Section 2.2.1 calls these timing estimates
#: "fragile").  Five 802.11 slot-times per expected packet of the previous
#: fragment is the allowance the ExOR design uses; a flat per-turn guard of a
#: couple of data-frame times is the equivalent at our abstraction level.
DEFAULT_TURN_GUARD_TIME = 5e-3

_flow_ids = itertools.count(20_000)


@dataclass
class ExorFlowSpec:
    """Static description of one ExOR flow."""

    flow_id: int
    source: int
    destination: int
    batch_size: int
    packet_size: int
    participants: list[int]  # destination first ... source last (priority order)
    forward_route: list[int]  # best ETX path source -> destination (cleanup)
    reverse_route: list[int]  # best ETX path destination -> source (acks)
    total_packets: int
    batch_count: int
    completion_threshold: float = DEFAULT_COMPLETION_THRESHOLD
    bitrate: int | None = None
    _rank_map: dict[int, int] | None = field(default=None, init=False,
                                             repr=False, compare=False)

    def rank(self, node_id: int) -> int | None:
        """Priority rank of a node (0 = destination = highest priority)."""
        ranks = self._rank_map
        if ranks is None:
            ranks = self._rank_map = {node: position
                                      for position, node in enumerate(self.participants)}
        return ranks.get(node_id)

    def invalidate_plan_caches(self) -> None:
        """Drop the memoised rank map after a link-state refresh rebuilt
        ``participants`` / ``forward_route`` / ``reverse_route`` in place."""
        self._rank_map = None

    def data_frame_size(self) -> int:
        """On-air size of an ExOR data frame (payload + header + batch map)."""
        return self.packet_size + EXOR_BASE_HEADER_BYTES + self.batch_size

    def map_frame_size(self) -> int:
        """On-air size of a batch-map-only frame."""
        return EXOR_BASE_HEADER_BYTES + self.batch_size

    def batch_packet_count(self, batch_id: int) -> int:
        """Number of native packets in a given batch (the last may be short)."""
        if batch_id < self.batch_count - 1:
            return self.batch_size
        remainder = self.total_packets - self.batch_size * (self.batch_count - 1)
        return remainder if remainder > 0 else self.batch_size


@dataclass
class ExorDataPayload:
    """A native packet broadcast during the scheduled phase."""

    flow_id: int
    batch_id: int
    packet_index: int
    batch_map: np.ndarray


@dataclass
class ExorMapPayload:
    """A batch-map-only frame (sent by the destination on its turn)."""

    flow_id: int
    batch_id: int
    batch_map: np.ndarray


@dataclass
class ExorControlPayload:
    """Hop-by-hop unicast control traffic (cleanup request/data, batch ACK)."""

    flow_id: int
    batch_id: int
    control: str  # "cleanup_request" | "cleanup_data" | "batch_ack"
    route: list[int]
    packet_index: int | None = None
    missing: list[int] = field(default_factory=list)


class ExorScheduler:
    """Per-flow strict transmission schedule.

    The schedule starts each batch with the source transmitting the whole
    batch, then cycles through the participants in priority order
    (destination's map frame first, then forwarders, then the source) until
    stopped by the destination.
    """

    def __init__(self, spec: ExorFlowSpec, sim: Simulator,
                 turn_guard_time: float = DEFAULT_TURN_GUARD_TIME) -> None:
        self.spec = spec
        self.sim = sim
        self.turn_guard_time = turn_guard_time
        self.active = False
        self.batch_id = -1
        self.round = 0
        self.holder: int | None = None
        self._position = 0

    def start_batch(self, batch_id: int) -> None:
        """Begin the scheduled phase of a batch with the source's initial turn."""
        self.active = True
        self.batch_id = batch_id
        self.round = 0
        self._grant(len(self.spec.participants) - 1)  # the source

    def stop(self) -> None:
        """Stop the scheduled phase (destination reached its threshold)."""
        self.active = False
        self.holder = None

    def holds_token(self, node_id: int) -> bool:
        """True if ``node_id`` currently owns the transmission turn."""
        return self.active and self.holder == node_id

    def finish_turn(self, node_id: int) -> None:
        """Advance the schedule after ``node_id`` finishes its allotment."""
        if not self.active or node_id != self.holder:
            return
        next_position = self._position - 1
        if next_position < 0:
            # A full round ended with the destination; start the next round
            # from the node farthest from the destination (the source).
            self.round += 1
            next_position = len(self.spec.participants) - 1
        # The next forwarder cannot start the instant its predecessor stops:
        # it only knows the predecessor's fragment size from batch maps and
        # must pad its timing estimate (the scheduling cost the paper blames
        # for ExOR's lost spatial reuse and fragile utilisation).
        batch_epoch = self.batch_id
        self.sim.schedule_callback(
            self.turn_guard_time,
            lambda: self._grant_if_current(next_position, batch_epoch))

    def _grant_if_current(self, position: int, batch_epoch: int) -> None:
        """Grant a deferred turn unless the batch has moved on meanwhile."""
        if self.active and self.batch_id == batch_epoch:
            self._grant(position)

    def notice_participants_changed(self) -> None:
        """Clamp the schedule position after a refresh resized the list."""
        self._position = min(self._position, len(self.spec.participants) - 1)

    def _grant(self, position: int) -> None:
        # A deferred grant scheduled before a link-state refresh may carry a
        # position beyond the refreshed (shorter) participant list.
        position = min(position, len(self.spec.participants) - 1)
        self._position = position
        self.holder = self.spec.participants[position]
        agent = self.sim.nodes[self.holder].agent
        if isinstance(agent, ExorAgent) and not agent.turn_has_traffic(self.spec.flow_id):
            # Nothing to send this turn: skip ahead after the guard time
            # (real ExOR burns a turn-timeout here).
            self.finish_turn(self.holder)
            return
        self.sim.trigger_node(self.holder)


class _ExorFlowState:
    """Per-node, per-flow ExOR state."""

    def __init__(self, spec: ExorFlowSpec, rank: int) -> None:
        self.spec = spec
        self.rank = rank
        self.batch_id = 0
        self.received: dict[int, set[int]] = {}
        self.batch_map = np.full(spec.batch_size, len(spec.participants) - 1, dtype=np.int32)
        self.turn_queue: deque[int] = deque()
        self.map_frame_pending = False

    def reset_for_batch(self, batch_id: int) -> None:
        """Start fresh state for a new batch."""
        self.batch_id = batch_id
        self.batch_map = np.full(self.spec.batch_size, len(self.spec.participants) - 1,
                                 dtype=np.int32)
        self.turn_queue.clear()
        self.map_frame_pending = False

    def packets_received(self, batch_id: int) -> set[int]:
        """Indices of packets of ``batch_id`` this node holds."""
        return self.received.setdefault(batch_id, set())

    def merge_map(self, other_map: np.ndarray) -> None:
        """Merge a heard batch map into the local one (element-wise min)."""
        np.minimum(self.batch_map, other_map, out=self.batch_map)

    def refresh_rank(self, rank: int) -> None:
        """Re-anchor the batch-map view after a plan refresh changed ranks.

        Map entries written under the old rank numbering would otherwise
        orphan packets: an entry naming a rank nobody holds any more is
        claimed by no ``responsibility()`` check and only ever decreases,
        stalling the batch.  Two conservative rewrites fix that: entries
        beyond the (possibly shrunken) participant list fall back to the
        source's rank — the source holds every packet of the batch, so it
        can always re-serve them — and this node re-claims its own
        holdings at its new rank.  Both can only cause duplicate
        transmissions (which ExOR dedups), never a stall.
        """
        self.rank = rank
        highest = len(self.spec.participants) - 1
        np.minimum(self.batch_map, highest, out=self.batch_map)
        batch_map = self.batch_map
        for index in self.packets_received(self.batch_id):
            if index < batch_map.shape[0] and batch_map[index] > rank:
                batch_map[index] = rank

    def note_reception(self, packet_index: int, batch_id: int) -> bool:
        """Record a received packet; returns True if it is new to this node."""
        packets = self.packets_received(batch_id)
        if packet_index in packets:
            new = False
        else:
            packets.add(packet_index)
            new = True
        if batch_id == self.batch_id:
            self.batch_map[packet_index] = min(self.batch_map[packet_index], self.rank)
        return new

    def responsibility(self) -> list[int]:
        """Packets this node should forward on its turn.

        A node forwards the packets it holds for which it is (to its
        knowledge) the highest-priority holder.
        """
        packets = self.packets_received(self.batch_id)
        if not packets:
            return []
        count = self.spec.batch_packet_count(self.batch_id)
        batch_map = self.batch_map
        rank = self.rank
        return sorted(
            idx for idx in packets
            if idx < count and batch_map[idx] == rank
        )


class ExorAgent(ProtocolAgent):
    """ExOR agent handling source, forwarder and destination roles."""

    protocol_name = "ExOR"

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.flows: dict[int, _ExorFlowState] = {}
        self.specs: dict[int, ExorFlowSpec] = {}
        self.schedulers: dict[int, ExorScheduler] = {}
        self.control_queue: deque[Frame] = deque()
        self.source_progress: dict[int, int] = {}  # flow -> current batch at source
        self.destination_done: dict[int, set[int]] = {}  # flow -> acked batches
        self.cleanup_requested: dict[int, set[int]] = {}
        self.data_sent = 0

    # ------------------------------------------------------------------ #
    # Flow installation
    # ------------------------------------------------------------------ #

    def install_flow(self, spec: ExorFlowSpec, scheduler: ExorScheduler) -> None:
        """Register a flow on this node (any role)."""
        self.specs[spec.flow_id] = spec
        self.schedulers[spec.flow_id] = scheduler
        rank = spec.rank(self.node_id)
        if rank is not None:
            self.flows[spec.flow_id] = _ExorFlowState(spec, rank)
        if self.node_id == spec.source:
            self.source_progress[spec.flow_id] = 0
        if self.node_id == spec.destination:
            self.destination_done[spec.flow_id] = set()
            self.cleanup_requested[spec.flow_id] = set()

    def adopt_flow(self, spec: ExorFlowSpec, scheduler: ExorScheduler) -> None:
        """Idempotent :meth:`install_flow` for mid-flow plan refreshes.

        Newly recruited participants get fresh per-flow state; nodes that
        already track the flow keep their transfer progress (source batch
        counter, destination ACK bookkeeping) and only have their priority
        rank re-derived from the refreshed participant list.
        """
        self.specs[spec.flow_id] = spec
        self.schedulers[spec.flow_id] = scheduler
        rank = spec.rank(self.node_id)
        state = self.flows.get(spec.flow_id)
        if rank is not None:
            if state is None:
                self.flows[spec.flow_id] = _ExorFlowState(spec, rank)
            else:
                state.refresh_rank(rank)
        elif state is not None:
            # Dropped from the forwarder set: the node keeps its received
            # packets but must never claim responsibility again — an inert
            # rank beyond the batch-map value range guarantees that (any
            # in-range value could collide with a stale map entry).
            state.rank = INERT_RANK
        if self.node_id == spec.source:
            self.source_progress.setdefault(spec.flow_id, 0)
        if self.node_id == spec.destination:
            self.destination_done.setdefault(spec.flow_id, set())
            self.cleanup_requested.setdefault(spec.flow_id, set())

    def start_flow(self, flow_id: int) -> None:
        """Source-side kick-off: load batch 0 and start the schedule."""
        spec = self.specs[flow_id]
        state = self.flows[flow_id]
        state.reset_for_batch(0)
        count = spec.batch_packet_count(0)
        state.packets_received(0).update(range(count))
        state.batch_map[:count] = state.rank
        self.schedulers[flow_id].start_batch(0)

    # ------------------------------------------------------------------ #
    # Scheduler support
    # ------------------------------------------------------------------ #

    def turn_has_traffic(self, flow_id: int) -> bool:
        """True if this node would transmit anything on its turn."""
        state = self.flows.get(flow_id)
        spec = self.specs.get(flow_id)
        if state is None or spec is None:
            return False
        if self.node_id == spec.destination:
            return True  # the destination always broadcasts its map
        return bool(state.responsibility())

    def _prepare_turn(self, flow_id: int) -> None:
        """Build the turn queue when the token arrives."""
        state = self.flows[flow_id]
        spec = self.specs[flow_id]
        if self.node_id == spec.destination:
            state.map_frame_pending = True
            return
        state.turn_queue = deque(state.responsibility())

    # ------------------------------------------------------------------ #
    # MAC interface
    # ------------------------------------------------------------------ #

    def has_pending(self, now: float) -> bool:
        if self.control_queue:
            return True
        for flow_id, scheduler in self.schedulers.items():
            if scheduler.holds_token(self.node_id) and self.turn_has_traffic(flow_id):
                return True
        return False

    def on_transmit_opportunity(self, now: float) -> Frame | None:
        if self.control_queue:
            return self.control_queue[0]
        for flow_id, scheduler in self.schedulers.items():
            if not scheduler.holds_token(self.node_id):
                continue
            state = self.flows.get(flow_id)
            spec = self.specs.get(flow_id)
            if state is None or spec is None:
                continue
            if not state.turn_queue and not state.map_frame_pending:
                self._prepare_turn(flow_id)
            if state.map_frame_pending:
                return self._make_map_frame(spec, state)
            if state.turn_queue:
                return self._make_data_frame(spec, state, state.turn_queue[0])
            scheduler.finish_turn(self.node_id)
        return None

    def select_bitrate(self, frame: Frame) -> int | None:
        spec = self.specs.get(frame.flow_id)
        if spec is not None:
            return spec.bitrate
        return None

    def _make_data_frame(self, spec: ExorFlowSpec, state: _ExorFlowState,
                         packet_index: int) -> Frame:
        self.data_sent += 1
        return Frame(
            sender=self.node_id,
            receiver=BROADCAST,
            kind=FrameKind.DATA,
            flow_id=spec.flow_id,
            size_bytes=spec.data_frame_size(),
            payload=ExorDataPayload(
                flow_id=spec.flow_id,
                batch_id=state.batch_id,
                packet_index=packet_index,
                batch_map=state.batch_map.copy(),
            ),
        )

    def _make_map_frame(self, spec: ExorFlowSpec, state: _ExorFlowState) -> Frame:
        return Frame(
            sender=self.node_id,
            receiver=BROADCAST,
            kind=FrameKind.CONTROL,
            flow_id=spec.flow_id,
            size_bytes=spec.map_frame_size(),
            payload=ExorMapPayload(
                flow_id=spec.flow_id,
                batch_id=state.batch_id,
                batch_map=state.batch_map.copy(),
            ),
        )

    # ------------------------------------------------------------------ #
    # MAC completion callbacks
    # ------------------------------------------------------------------ #

    def on_frame_sent(self, frame: Frame, success: bool, now: float) -> None:
        if self.control_queue and self.control_queue[0] is frame:
            if success:
                self.control_queue.popleft()
            self.notify_pending()
            return
        payload = frame.payload
        if isinstance(payload, ExorMapPayload):
            state = self.flows.get(payload.flow_id)
            scheduler = self.schedulers.get(payload.flow_id)
            if state is not None:
                state.map_frame_pending = False
            if scheduler is not None:
                scheduler.finish_turn(self.node_id)
            return
        if isinstance(payload, ExorDataPayload):
            state = self.flows.get(payload.flow_id)
            scheduler = self.schedulers.get(payload.flow_id)
            if state is not None and state.turn_queue \
                    and state.turn_queue[0] == payload.packet_index:
                state.turn_queue.popleft()
            if state is not None and not state.turn_queue and scheduler is not None \
                    and scheduler.holds_token(self.node_id):
                scheduler.finish_turn(self.node_id)

    # ------------------------------------------------------------------ #
    # Reception
    # ------------------------------------------------------------------ #

    def on_frame_received(self, frame: Frame, now: float) -> None:
        payload = frame.payload
        if isinstance(payload, ExorDataPayload):
            self._handle_data(payload, now)
        elif isinstance(payload, ExorMapPayload):
            self._handle_map(payload)
        elif isinstance(payload, ExorControlPayload) and frame.receiver == self.node_id:
            self._handle_control(payload, now)

    def _advance_local_batch(self, state: _ExorFlowState, batch_id: int,
                             spec: ExorFlowSpec) -> None:
        """Move local state to a newer batch if needed."""
        if batch_id > state.batch_id:
            state.reset_for_batch(batch_id)
            if self.node_id == spec.source:
                count = spec.batch_packet_count(batch_id)
                state.packets_received(batch_id).update(range(count))
                state.batch_map[:count] = state.rank

    def _handle_data(self, payload: ExorDataPayload, now: float) -> None:
        spec = self.specs.get(payload.flow_id)
        state = self.flows.get(payload.flow_id)
        if spec is None or state is None:
            return
        self._advance_local_batch(state, payload.batch_id, spec)
        if payload.batch_id < state.batch_id:
            return
        state.merge_map(payload.batch_map)
        new = state.note_reception(payload.packet_index, payload.batch_id)
        if self.node_id == spec.destination:
            self._destination_progress(spec, state, payload.batch_id, payload.packet_index,
                                        new, now)

    def _handle_map(self, payload: ExorMapPayload) -> None:
        state = self.flows.get(payload.flow_id)
        if state is None or payload.batch_id != state.batch_id:
            return
        state.merge_map(payload.batch_map)

    def _destination_progress(self, spec: ExorFlowSpec, state: _ExorFlowState,
                              batch_id: int, packet_index: int, new: bool,
                              now: float) -> None:
        if not new:
            if self.sim is not None:
                self.sim.stats.record_duplicate(spec.flow_id)
            return
        if self.sim is not None:
            self.sim.stats.record_delivery(spec.flow_id, 1, now)
        count = spec.batch_packet_count(batch_id)
        have = sum(1 for i in state.packets_received(batch_id) if i < count)
        scheduler = self.schedulers[spec.flow_id]
        if have >= count:
            scheduler.stop()
            self._queue_batch_ack(spec, batch_id)
            return
        if have >= spec.completion_threshold * count and \
                batch_id not in self.cleanup_requested[spec.flow_id]:
            # Threshold reached: stop the schedule and request the remainder
            # over traditional routing.
            self.cleanup_requested[spec.flow_id].add(batch_id)
            scheduler.stop()
            missing = [i for i in range(count) if i not in state.packets_received(batch_id)]
            self._queue_control(spec, ExorControlPayload(
                flow_id=spec.flow_id, batch_id=batch_id, control="cleanup_request",
                route=spec.reverse_route, missing=missing,
            ))

    # ------------------------------------------------------------------ #
    # Control traffic (cleanup + batch ACKs over traditional routing)
    # ------------------------------------------------------------------ #

    def _queue_control(self, spec: ExorFlowSpec, payload: ExorControlPayload,
                       size_bytes: int | None = None) -> None:
        route = payload.route
        if self.node_id not in route:
            return
        position = route.index(self.node_id)
        if position + 1 >= len(route):
            return
        next_hop = route[position + 1]
        size = size_bytes
        if size is None:
            size = CONTROL_SIZE_BYTES + len(payload.missing)
            if payload.control == "cleanup_data":
                size = spec.packet_size + EXOR_BASE_HEADER_BYTES
        frame = Frame(
            sender=self.node_id,
            receiver=next_hop,
            kind=FrameKind.BATCH_ACK if payload.control == "batch_ack" else FrameKind.CONTROL,
            flow_id=spec.flow_id,
            size_bytes=size,
            payload=payload,
            priority=5,
        )
        self.control_queue.append(frame)
        self.notify_pending()

    def _queue_batch_ack(self, spec: ExorFlowSpec, batch_id: int) -> None:
        self._queue_control(spec, ExorControlPayload(
            flow_id=spec.flow_id, batch_id=batch_id, control="batch_ack",
            route=spec.reverse_route,
        ))

    def _handle_control(self, payload: ExorControlPayload, now: float) -> None:
        spec = self.specs.get(payload.flow_id)
        if spec is None:
            return
        route = payload.route
        final = route[-1]
        if self.node_id != final:
            # Relay one hop further along the control route.
            self._queue_control(spec, payload)
            return
        if payload.control == "cleanup_request" and self.node_id == spec.source:
            for index in payload.missing:
                self._queue_control(spec, ExorControlPayload(
                    flow_id=spec.flow_id, batch_id=payload.batch_id, control="cleanup_data",
                    route=spec.forward_route, packet_index=index,
                ))
            return
        if payload.control == "cleanup_data" and self.node_id == spec.destination:
            state = self.flows[payload.flow_id]
            assert payload.packet_index is not None
            new = state.note_reception(payload.packet_index, payload.batch_id)
            count = spec.batch_packet_count(payload.batch_id)
            if new and self.sim is not None:
                self.sim.stats.record_delivery(spec.flow_id, 1, now)
            have = sum(1 for i in state.packets_received(payload.batch_id) if i < count)
            if have >= count:
                self._queue_batch_ack(spec, payload.batch_id)
            return
        if payload.control == "batch_ack" and self.node_id == spec.source:
            self._handle_batch_ack(spec, payload.batch_id)

    def _handle_batch_ack(self, spec: ExorFlowSpec, batch_id: int) -> None:
        current = self.source_progress.get(spec.flow_id, 0)
        if batch_id < current:
            return
        next_batch = batch_id + 1
        self.source_progress[spec.flow_id] = next_batch
        if next_batch >= spec.batch_count:
            return  # transfer complete
        state = self.flows[spec.flow_id]
        state.reset_for_batch(next_batch)
        count = spec.batch_packet_count(next_batch)
        state.packets_received(next_batch).update(range(count))
        state.batch_map[:count] = state.rank
        self.schedulers[spec.flow_id].start_batch(next_batch)


@dataclass
class ExorFlowHandle:
    """Handle returned by :func:`setup_exor_flow`."""

    spec: ExorFlowSpec
    record: FlowRecord
    scheduler: ExorScheduler

    @property
    def flow_id(self) -> int:
        """Flow identifier."""
        return self.spec.flow_id


def _get_or_create_agent(sim: Simulator, node_id: int) -> ExorAgent:
    existing = sim.nodes[node_id].agent
    if existing is None:
        agent = ExorAgent(node_id)
        sim.attach_agent(node_id, agent)
        return agent
    if not isinstance(existing, ExorAgent):
        raise TypeError(
            f"node {node_id} already runs {existing.protocol_name}; cannot add an ExOR flow"
        )
    return existing


def setup_exor_flow(sim: Simulator, topology: Topology, source: int, destination: int,
                    *, total_packets: int, batch_size: int = 32, packet_size: int = 1500,
                    completion_threshold: float = DEFAULT_COMPLETION_THRESHOLD,
                    bitrate: int | None = None, flow_id: int | None = None,
                    start_time: float = 0.0, prune: bool = True,
                    control_topology: Topology | None = None) -> ExorFlowHandle:
    """Install an ExOR file transfer from ``source`` to ``destination``.

    ``control_topology`` carries the link-quality estimates used to build the
    forwarder list and the cleanup/ACK routes (defaults to the true topology).
    """
    if flow_id is None:
        flow_id = next(_flow_ids)
    control = control_topology if control_topology is not None else topology
    plan = forwarding_plan(control, source, destination, metric="etx", prune=prune)
    participants = list(plan.participants)  # destination first ... source last
    forward_route = best_path(control, source, destination)
    reverse_route = best_path(control, destination, source)
    batch_count = max(1, int(np.ceil(total_packets / batch_size)))
    spec = ExorFlowSpec(
        flow_id=flow_id,
        source=source,
        destination=destination,
        batch_size=batch_size,
        packet_size=packet_size,
        participants=participants,
        forward_route=forward_route,
        reverse_route=reverse_route,
        total_packets=total_packets,
        batch_count=batch_count,
        completion_threshold=completion_threshold,
        bitrate=bitrate,
    )
    scheduler = ExorScheduler(spec, sim)
    involved = set(participants) | set(forward_route) | set(reverse_route)
    for node in involved:
        _get_or_create_agent(sim, node).install_flow(spec, scheduler)
    record = sim.stats.register_flow(flow_id, source, destination, total_packets,
                                     packet_size, start_time)
    source_agent = sim.nodes[source].agent
    assert isinstance(source_agent, ExorAgent)
    sim.events.schedule_callback_at(start_time,
                                    lambda: source_agent.start_flow(flow_id))
    return ExorFlowHandle(spec=spec, record=record, scheduler=scheduler)
