"""ExOR: opportunistic routing with a strict MAC schedule (the prior art)."""

from repro.protocols.exor.agent import (
    DEFAULT_COMPLETION_THRESHOLD,
    ExorAgent,
    ExorControlPayload,
    ExorDataPayload,
    ExorFlowHandle,
    ExorFlowSpec,
    ExorMapPayload,
    ExorScheduler,
    setup_exor_flow,
)

__all__ = [
    "DEFAULT_COMPLETION_THRESHOLD",
    "ExorAgent",
    "ExorControlPayload",
    "ExorDataPayload",
    "ExorFlowHandle",
    "ExorFlowSpec",
    "ExorMapPayload",
    "ExorScheduler",
    "setup_exor_flow",
]
