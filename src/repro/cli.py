"""The ``repro`` command line: one front door for every experiment.

::

    python -m repro list                          # what can I run?
    python -m repro show  --preset fig_4_2        # the spec as JSON
    python -m repro run   --preset chain_smoke    # one scenario, serially
    python -m repro sweep --preset fig_4_7 --workers 4
    python -m repro report                        # summarize cached results

``run`` and ``sweep`` accept either ``--preset NAME`` (see
:mod:`repro.scenarios.presets`) or ``--spec FILE`` (a ScenarioSpec as JSON,
e.g. from ``show``).  ``--set path=value`` applies one dotted-path override
(``run.batch_size=16``, ``workload.count=4``, ``channel.mean_bad_time=0.05``);
``--axis path=v1,v2,...`` adds or replaces a sweep axis (``channel.*`` /
``mobility.*`` axes sweep model parameters; ``run.refresh_period`` sweeps
link-state staleness).  ``--channel KIND`` swaps the channel model
(``static``, ``gilbert_elliott``, ``distance_fading``, ``trace``) and
``--mobility KIND`` the dynamic-topology model (``none``, ``link_churn``,
``random_walk``, ``random_waypoint``); ``--faults KIND`` injects node
failures (``crash_recover``, ``scheduled``, ``ack_blackout``,
``control_silence``) and ``--monitor`` arms the runtime liveness monitor
(see ``docs/faults.md``).  Results land in the
content-addressed store under ``results/store/<scenario>/`` keyed by
``(spec-hash, seed, code-version)``, so repeated invocations only simulate
what changed — including after a kill: re-running the same sweep command
resumes with only the missing cells (``--force`` recomputes everything).
``sweep`` streams progress (cells/s, ETA, running partial aggregate) to
stderr with ``--progress`` and tolerates crashed or wedged workers via
``--retries`` / ``--cell-timeout``.

Also installable as a console script (``repro = repro.cli:main``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.experiments.orchestrator.engine import DEFAULT_RETRIES
from repro.experiments.orchestrator.store import ResultStore
from repro.experiments.parallel import (
    DEFAULT_RESULTS_DIR,
    load_cached_results,
    run_scenario,
    run_sweep,
)
from repro.experiments.stats import summarize
from repro.scenarios import ScenarioSpec, get_preset, list_presets


def _parse_value(text: str) -> Any:
    """Interpret an override value: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignment(text: str) -> tuple[str, str]:
    path, separator, value = text.partition("=")
    if not separator or not path:
        raise argparse.ArgumentTypeError(f"expected path=value, got {text!r}")
    return path, value


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec:
        spec = ScenarioSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    elif args.preset:
        try:
            spec = get_preset(args.preset)
        except KeyError as error:
            raise SystemExit(f"repro: error: {error.args[0]}") from None
    else:
        raise SystemExit("error: provide --preset NAME or --spec FILE "
                         "(see `python -m repro list`)")
    # --channel/--mobility first: switching kind resets the model params, so
    # the user's --set channel.<param> / mobility.<param> overrides must
    # land on the new model.
    if getattr(args, "channel", None):
        spec = spec.with_overrides({"channel.kind": args.channel})
    if getattr(args, "mobility", None):
        spec = spec.with_overrides({"mobility.kind": args.mobility})
    if getattr(args, "faults", None):
        spec = spec.with_overrides({"faults.kind": args.faults})
    if getattr(args, "monitor", False):
        spec = spec.with_overrides({"run.monitor": True})
    for assignment in args.set or []:
        path, value = _parse_assignment(assignment)
        spec = spec.with_overrides({path: _parse_value(value)})
    for assignment in getattr(args, "axis", None) or []:
        path, values = _parse_assignment(assignment)
        spec.sweep[path] = tuple(_parse_value(item) for item in values.split(","))
    if getattr(args, "seeds", None):
        spec.seeds = tuple(int(seed) for seed in args.seeds.split(","))
    if getattr(args, "vector_only", False):
        spec = spec.with_overrides({"run.vector_only": True})
    if getattr(args, "decode_engine", None):
        spec = spec.with_overrides({"run.decode_engine": args.decode_engine})
    return spec


def _add_spec_arguments(parser: argparse.ArgumentParser, sweep: bool) -> None:
    parser.add_argument("--preset", help="name of a registered scenario preset")
    parser.add_argument("--spec", help="path to a ScenarioSpec JSON file")
    parser.add_argument("--set", action="append", metavar="PATH=VALUE",
                        help="dotted-path override, e.g. run.batch_size=16")
    parser.add_argument("--workers", type=int, default=1 if not sweep else 4,
                        help="worker processes for uncached cells")
    parser.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR),
                        help="cache root (default: results/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the results cache")
    parser.add_argument("--force", action="store_true",
                        help="recompute cells even when cached")
    parser.add_argument("--vector-only", action="store_true", dest="vector_only",
                        help="payload-free fast path (run.vector_only=true): "
                             "identical throughput/rank results, less arithmetic")
    parser.add_argument("--decode-engine", dest="decode_engine",
                        choices=("auto", "vectorized", "eager", "scalar"),
                        help="coding-buffer insertion engine "
                             "(run.decode_engine): auto follows the "
                             "simulator engine; vectorized defers payload "
                             "back-substitution, scalar is the reference "
                             "(bit-identical results)")
    parser.add_argument("--channel", metavar="KIND",
                        help="channel model: static, gilbert_elliott, "
                             "distance_fading or trace (tune parameters with "
                             "--set channel.<param>=value)")
    parser.add_argument("--mobility", metavar="KIND",
                        help="dynamic-topology model: none, link_churn, "
                             "random_walk or random_waypoint (tune with "
                             "--set mobility.<param>=value; pair with "
                             "--set run.refresh_period=SECONDS for an "
                             "online control plane)")
    parser.add_argument("--faults", metavar="KIND",
                        help="fault-injection process: none, ack_blackout, "
                             "control_silence, crash_recover or scheduled "
                             "(tune with --set faults.<param>=value; pair "
                             "with --set run.progress_timeout=SECONDS for "
                             "structured aborts instead of hangs)")
    parser.add_argument("--monitor", action="store_true",
                        help="enable the runtime liveness monitor "
                             "(run.monitor=true): stalls raise a one-screen "
                             "StallDiagnosis instead of hanging")
    parser.add_argument("--json", action="store_true",
                        help="print the full result as JSON instead of a report")
    if sweep:
        parser.add_argument("--axis", action="append", metavar="PATH=V1,V2,...",
                            help="add or replace a sweep axis")
        parser.add_argument("--seeds", help="comma-separated replication seeds")
        parser.add_argument("--progress", action="store_true",
                            help="stream cells/s, ETA and a running partial "
                                 "aggregate to stderr while cells run")
        parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                            help="extra attempts per cell after a worker "
                                 "crash, hang or exception (default: "
                                 f"{DEFAULT_RETRIES})")
        parser.add_argument("--cell-timeout", type=float, default=None,
                            metavar="SECONDS", dest="cell_timeout",
                            help="kill and replace a worker silent for this "
                                 "long; its cells are retried elsewhere "
                                 "(default: no timeout)")


def _emit(result, as_json: bool) -> None:
    if as_json:
        json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(result.report())


def _command_list(_args: argparse.Namespace) -> int:
    rows = []
    for spec in list_presets():
        cells = len(spec.expand())
        rows.append((spec.name, spec.mode, cells, spec.description))
    width = max(len(row[0]) for row in rows)
    print(f"{'name':<{width}}  {'mode':<10} {'cells':>5}  description")
    for name, mode, cells, description in rows:
        print(f"{name:<{width}}  {mode:<10} {cells:>5}  {description}")
    return 0


def _command_show(args: argparse.Namespace) -> int:
    print(_load_spec(args).to_json())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    result = run_scenario(
        spec, seed=args.seed, workers=args.workers,
        results_dir=None if args.no_cache else args.results_dir,
        cache=not args.no_cache, force=args.force,
    )
    _emit(result, args.json)
    return 0


def _warn_legacy_cache(results_dir: str, scenario: str) -> None:
    """Point out pre-store flat-cache files, which are never read back."""
    legacy = ResultStore(results_dir, code="").legacy_cell_files(scenario)
    if legacy:
        print(f"repro: note: ignoring {len(legacy)} pre-orchestrator cache "
              f"file(s) under {results_dir}/{scenario}/ — the store now lives "
              f"in {results_dir}/store/ keyed by (spec, seed, code version); "
              "delete the old files to silence this note",
              file=sys.stderr)


def _command_sweep(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if not args.no_cache:
        _warn_legacy_cache(args.results_dir, spec.name)
    result = run_sweep(
        spec, workers=args.workers,
        results_dir=None if args.no_cache else args.results_dir,
        cache=not args.no_cache, force=args.force,
        retries=args.retries, cell_timeout=args.cell_timeout,
        progress=args.progress,
    )
    _emit(result, args.json)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    grouped = load_cached_results(args.results_dir, scenarios=args.scenarios or None)
    if not grouped:
        print(f"no cached results under {args.results_dir}/ "
              "(run `python -m repro sweep --preset ...` first)")
        return 1
    for scenario, cells in grouped.items():
        print(f"=== {scenario}: {len(cells)} cached cell(s) ===")
        # Cache files come back in hash order; sort by axis values then seed
        # so sweeps read in their natural order (the type name guards against
        # comparing mixed-type values across unrelated cached runs).
        cells = sorted(cells, key=lambda cell: (sorted(
            (path, type(value).__name__, value)
            for path, value in cell.axes.items()), cell.seed))
        for cell in cells:
            label = " ".join(f"{path}={value}" for path, value in cell.axes.items())
            # The short key distinguishes cells produced with different --set
            # overrides, which are otherwise identical in this summary.
            pieces = [f"[{cell.key[:8]}]", f"seed={cell.seed}"] + ([label] if label else [])
            for name, values in cell.series.items():
                stats = summarize(values)
                pieces.append(f"{name} median={stats.median:.2f} mean={stats.mean:.2f}")
            print("  " + "  ".join(pieces))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MORE reproduction: declarative scenarios, parallel sweeps, "
                    "cached results.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenario presets") \
        .set_defaults(func=_command_list)

    show = commands.add_parser("show", help="print a scenario spec as JSON")
    show.add_argument("--preset")
    show.add_argument("--spec")
    show.add_argument("--set", action="append", metavar="PATH=VALUE")
    show.add_argument("--channel", metavar="KIND")
    show.add_argument("--mobility", metavar="KIND")
    show.add_argument("--faults", metavar="KIND")
    show.add_argument("--monitor", action="store_true")
    show.set_defaults(func=_command_show, axis=None, seeds=None)

    run = commands.add_parser("run", help="run one scenario (serial by default)")
    _add_spec_arguments(run, sweep=False)
    run.add_argument("--seed", type=int, help="pin a single replication seed")
    run.set_defaults(func=_command_run)

    sweep = commands.add_parser(
        "sweep", help="run a full sweep across worker processes",
        epilog="migration: the pre-orchestrator flat cache "
               "(results/<scenario>/cell-*.json) carries no code version and "
               "is never read; results now live in results/store/ keyed by "
               "(spec, seed, code version) — delete the old files at leisure.")
    _add_spec_arguments(sweep, sweep=True)
    sweep.set_defaults(func=_command_sweep)

    report = commands.add_parser("report", help="summarize cached sweep results")
    report.add_argument("scenarios", nargs="*", help="limit to these scenario names")
    report.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR))
    report.set_defaults(func=_command_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError, argparse.ArgumentTypeError,
            json.JSONDecodeError) as error:
        # User-input errors (bad override path, unreadable spec file, corrupt
        # JSON) become one-line messages; genuine bugs keep their traceback.
        print(f"repro: error: {error}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
