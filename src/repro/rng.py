"""Counter-based randomness helpers shared by the channel and mobility layers.

Both subsystems derive per-(entity, counter) uniforms that are a pure
function of their inputs — the numpy equivalent of a counter-based PRNG —
so realisations never depend on query order.  The mixer lives here, in one
place, so the two layers cannot silently diverge.
"""

from __future__ import annotations

import numpy as np


def splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: a vectorised counter-based uint64 mixer."""
    z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))
