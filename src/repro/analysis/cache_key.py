"""CACHE001: every ``RunConfig`` field must feed the result-store spec hash.

The content-addressed store's whole correctness argument rests on one
function: ``config_fingerprint`` in the orchestrator's store module hashes
the **fully resolved** config, so a knob added tomorrow changes every cache
key it could influence and a stale hit can never alias a new configuration.
The shipped implementation enumerates ``fields(RunConfig)`` — future-proof
by construction — but a refactor could quietly replace the enumeration with
a hand-maintained field list that drifts the next time a knob lands.  Then
the cache serves results computed under a *different* configuration, the
worst failure mode a result store can have, and no test that doesn't add a
field would ever notice.

The rule accepts either honest shape:

* the fingerprint function calls ``fields(RunConfig)`` (or iterates any
  ``fields(...)`` of the configured class) — generic enumeration; or
* it mentions every currently-declared field by name (attribute access or
  string constant) — exhaustive by hand, checked field by field.

Anything else — a missing function, or a hand-written list missing a
declared field — is a finding.  Tested live by injecting a fake field into
a copy of the tree whose fingerprint hard-codes the field list and
asserting the analyzer names the missing knob
(``tests/analysis/test_cache_key.py``, mirroring CFG001's fixture).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    register,
)
from repro.analysis.config_threading import _dataclass_fields


@register
class CacheKeyCoverage(Rule):
    """CACHE001: the store's config fingerprint must cover every field."""

    name = "CACHE001"
    description = ("every RunConfig field must feed the content-addressed "
                   "store's spec hash (config_fingerprint)")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        store = project.get(config.cache_store_module)
        if store is None or store.tree is None:
            return  # fixture trees without an orchestrator skip the rule
        config_path, class_name = config.config_class
        config_source = project.get(config_path)
        if config_source is None or config_source.tree is None:
            return
        declared = self._declared_fields(config_source.tree, class_name)
        if not declared:
            return  # CFG001 already reports a fieldless config class
        fingerprint = self._find_function(store.tree, config.cache_hash_function)
        if fingerprint is None:
            yield Finding(
                self.name, store.relative, 1,
                f"`{config.cache_hash_function}` not found in the store "
                "module — nothing guarantees the resolved config feeds the "
                "cache key",
            )
            return
        if self._enumerates_fields(fingerprint, class_name):
            return  # fields(RunConfig) enumeration covers everything, always
        mentioned = self._mentioned_names(fingerprint)
        for field_name, line in sorted(declared.items(), key=lambda kv: kv[1]):
            if field_name not in mentioned:
                yield Finding(
                    self.name, store.relative, fingerprint.lineno,
                    f"`{class_name}.{field_name}` (declared at "
                    f"{config_path}:{line}) never feeds "
                    f"`{config.cache_hash_function}` — a cached result could "
                    "alias a run with a different value of this knob",
                )

    @staticmethod
    def _declared_fields(tree: ast.Module, class_name: str) -> dict[str, int]:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return _dataclass_fields(node)
        return {}

    @staticmethod
    def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _enumerates_fields(function: ast.FunctionDef, class_name: str) -> bool:
        """True when the function iterates ``fields(<class_name>)``."""
        for node in ast.walk(function):
            if isinstance(node, ast.Call) \
                    and getattr(node.func, "id", None) == "fields" \
                    and any(getattr(arg, "id", None) == class_name
                            for arg in node.args):
                return True
        return False

    @staticmethod
    def _mentioned_names(function: ast.FunctionDef) -> set[str]:
        """Attribute reads and string constants inside the function body."""
        mentioned: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Attribute):
                mentioned.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
        return mentioned
