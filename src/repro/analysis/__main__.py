"""``python -m repro.analysis`` — the repro-check CLI.

Runs every registered rule (style + invariants) over the repository, then
the strict-mypy gate, and exits non-zero on any finding.  ``make analyze``
invokes exactly this; ``make lint``'s stdlib fallback invokes the style
subset through the same registry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import all_rules, run_rules
from repro.analysis.mypy_gate import run_mypy


def _repo_root() -> Path:
    # src/repro/analysis/__main__.py -> repository root three levels up.
    return Path(__file__).resolve().parents[3]


def _github_annotation(finding) -> str:
    """One finding as a GitHub Actions workflow command.

    ``::error file=...,line=...,title=RULE::message`` makes the analyze
    job surface findings inline on the PR diff.  Newlines and the
    characters the workflow-command grammar reserves are percent-escaped
    per the Actions toolkit rules.
    """
    def escape(text: str, extra: tuple[str, ...] = ()) -> str:
        text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        for char in extra:
            text = text.replace(char, f"%{ord(char):02X}")
        return text

    properties = escape(finding.path, (":", ","))
    title = escape(finding.rule, (":", ","))
    return (f"::error file={properties},line={finding.line},"
            f"title={title}::{escape(finding.message)}")


def _parse_select(raw: list[str]) -> list[str] | None:
    if not raw:
        return None
    names: list[str] = []
    for chunk in raw:
        names.extend(name.strip().upper() for name in chunk.split(",")
                     if name.strip())
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="repo-specific static invariant analyzer",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root to analyze (default: this repo)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all; repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--no-mypy", action="store_true",
                        help="skip the strict-mypy gate")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format: plain text (default) "
                             "or GitHub workflow ::error annotations")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name}: {rule.description}")
        return 0

    root = (args.root or _repo_root()).resolve()
    select = _parse_select(args.select)
    try:
        findings = run_rules(root, select=select)
    except ValueError as error:
        parser.error(str(error))
    for finding in findings:
        if args.format == "github":
            print(_github_annotation(finding))
        else:
            print(finding.render())

    status = 0
    if findings:
        print(f"analyze: {len(findings)} finding(s)")
        status = 1

    if select is None and not args.no_mypy:
        mypy_status = run_mypy(root)
        if mypy_status is None:
            print("analyze: mypy not installed; skipping the typed-core gate "
                  "(CI enforces it)")
        elif mypy_status != 0:
            status = 1

    if status == 0:
        print("analyze: clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
