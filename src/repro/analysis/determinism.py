"""Determinism rules: DET001 (seeded randomness, no wall clock), DET002
(counter-based purity of channel/mobility realisations) and DET003 (the
same purity contract for fault processes).

The paper's structure-vs-randomness claim is only reproducible because
every random draw in this codebase is a pure function of ``(seed,
counter)``: back-to-back protocol runs at one seed must see the identical
channel, parallel sweep cells must equal serial ones bit for bit, and the
engine differential tests compare exact ``bit_generator.state``.  One
unseeded generator — or one wall-clock read leaking into simulated
behaviour — silently breaks all of that, and the dynamic tests only notice
once a trace diverges.  These rules reject the constructs at parse time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    import_aliases,
    register,
    resolve_call_name,
)

#: ``numpy.random`` attributes that are legitimate, seedable constructors
#: (everything else on the module is legacy global-state API).
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


def _src_files(project: Project, config: AnalysisConfig) -> Iterator[SourceFile]:
    yield from project.under(config.src_prefix)


@register
class UnseededRandomness(Rule):
    """DET001: randomness must be seeded, time must be simulated."""

    name = "DET001"
    description = ("no unseeded default_rng(), stdlib random, legacy "
                   "np.random.* globals or wall-clock reads in src/repro")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        wallclock = set(config.wallclock_calls)
        for source in _src_files(project, config):
            tree = source.tree
            if tree is None:
                continue
            aliases = import_aliases(tree)
            for node in ast.walk(tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    yield from self._check_import(source, node)
                elif isinstance(node, ast.Call):
                    yield from self._check_call(source, node, aliases, wallclock)

    def _check_import(self, source: SourceFile,
                      node: ast.Import | ast.ImportFrom) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [node.module] if node.module and not node.level else []
        for module in modules:
            if module == "random" or module.startswith("random."):
                yield Finding(
                    self.name, source.relative, node.lineno,
                    "stdlib `random` is process-global state; use "
                    "np.random.default_rng(seed) or repro.rng instead",
                )

    def _check_call(self, source: SourceFile, node: ast.Call,
                    aliases: dict[str, str],
                    wallclock: set[str]) -> Iterator[Finding]:
        resolved = resolve_call_name(node.func, aliases)
        if resolved is None:
            return
        if resolved in wallclock:
            yield Finding(
                self.name, source.relative, node.lineno,
                f"wall-clock call `{resolved}()`: simulated behaviour must "
                "depend on the event clock, not host time (annotate "
                "measurement harnesses with `# repro: allow-DET001`)",
            )
            return
        if resolved.endswith("numpy.random.default_rng") \
                or resolved == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield Finding(
                    self.name, source.relative, node.lineno,
                    "unseeded np.random.default_rng(): draws would depend on "
                    "OS entropy; derive the seed from (seed, counter)",
                )
            return
        prefix, _, attr = resolved.rpartition(".")
        if prefix == "numpy.random" and attr not in _NP_RANDOM_OK:
            yield Finding(
                self.name, source.relative, node.lineno,
                f"legacy global-state RNG `np.random.{attr}()`: use a "
                "Generator from np.random.default_rng(seed)",
            )


@register
class CounterBasedPurity(Rule):
    """DET002: realisation classes re-derive RNGs per query, never store one.

    A stored ``Generator`` advances with every draw, so the realisation a
    query sees depends on *how many queries came before it* — exactly the
    query-order dependence the channel/mobility layers must not have
    (their tests assert that epoch k is the same whether it is the first
    or the hundredth thing asked).  The only sound pattern is deriving a
    throwaway generator (or SplitMix64 uniform) from ``(seed, counter)``
    inside the query itself.
    """

    name = "DET002"
    description = ("channel/mobility realisation classes must not hold or "
                   "advance a mutable Generator between queries")

    #: Call targets whose result must never be bound to an instance
    #: attribute inside a purity module.
    _GENERATOR_MAKERS = (
        "numpy.random.default_rng", "numpy.random.Generator",
        "numpy.random.PCG64", "numpy.random.PCG64DXSM", "numpy.random.MT19937",
        "numpy.random.Philox", "numpy.random.SFC64",
    )

    def _modules(self, config: AnalysisConfig) -> tuple[str, ...]:
        return config.purity_modules

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for relative in self._modules(config):
            source = project.get(relative)
            if source is None or source.tree is None:
                continue
            aliases = import_aliases(source.tree)
            for node in ast.walk(source.tree):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None or not self._stores_on_self(targets):
                    continue
                maker = self._generator_call(value, aliases)
                if maker is not None:
                    yield Finding(
                        self.name, source.relative, node.lineno,
                        f"stores `{maker}(...)` on the instance: realisations "
                        "must be pure functions of (seed, counter) — derive a "
                        "local generator per query instead",
                    )

    @staticmethod
    def _stores_on_self(targets: list[ast.expr]) -> bool:
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                return True
        return False

    def _generator_call(self, value: ast.expr,
                        aliases: dict[str, str]) -> str | None:
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call_name(node.func, aliases)
            if resolved in self._GENERATOR_MAKERS:
                return resolved
            # `self.rng.spawn()` / `rng.spawn()`: spawning children of a
            # stored generator is the same mutable-state pattern.
            dotted = dotted_name(node.func)
            if dotted is not None and dotted.endswith(".spawn"):
                return dotted
        return None


@register
class FaultProcessPurity(CounterBasedPurity):
    """DET003: fault processes obey the same counter-based purity contract.

    Crash/recover schedules must be pure functions of ``(seed, node,
    counter)`` for the same reason channel realisations must (DET002): a
    stored ``Generator`` would make the fault timeline depend on query
    order, so a parallel sweep cell would crash different nodes than the
    serial run — the exact serial/parallel divergence the fault
    differential tests pin down.  Same detector, different module list
    (:attr:`AnalysisConfig.fault_modules`).
    """

    name = "DET003"
    description = ("fault-process classes must not hold or advance a "
                   "mutable Generator between queries")

    def _modules(self, config: AnalysisConfig) -> tuple[str, ...]:
        return config.fault_modules
