"""The whole-program layer: module index, type-lite inference, call graph.

The per-file rules of PR 7 stop at function boundaries, but the bug
classes this analyzer exists for — a main-RNG draw smuggled into a
counter-based module through a helper, a schedule handle leaked three
calls away from the teardown that should cancel it, a config field whose
only reader is dead code — are *interprocedural*.  This module builds the
shared substrate the cross-function rules query:

* a **module index** — repo paths under ``src_root`` mapped to dotted
  module names, so ``from repro.sim.events import EventQueue`` resolves to
  a project class and not an opaque string;
* **type-lite inference** — a deliberately small nominal type system:
  ``self`` is the enclosing class, annotated parameters resolve through
  the import table (string forward references included), locals and
  instance attributes pick up the classes of the constructor calls and
  typed values assigned to them, and return annotations type call results.
  Unresolvable expressions stay untyped rather than guessed;
* a **reference graph** — every call *and* every by-name mention of a
  project function/class (callbacks are passed by name everywhere in an
  event-driven simulator) becomes an edge, so
  :meth:`CallGraph.reachable_from` can answer "does this code ever run?"
  generously enough for a liveness rule to trust its negatives.

Everything is a pure function of the parsed :class:`~repro.analysis
.framework.Project`; :func:`get_callgraph` memoises one graph per project
snapshot so the three interprocedural rules share a single build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.framework import (
    AnalysisConfig,
    Project,
    SourceFile,
    import_aliases,
)

#: Code-unit id forms (strings throughout, cheap to hash and debug):
#:   module top-level   ``repro.sim.events``
#:   function           ``repro.sim.events:pump_timer_workload``
#:   method             ``repro.sim.events:EventQueue.schedule``
#:   class              ``repro.sim.events:EventQueue`` (ClassInfo.id)


def walk_unit(roots: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class bodies.

    Defining a function does not run it, so a nested def's body belongs to
    its *own* code unit — but decorators, parameter defaults and
    base-class expressions execute at definition time and stay with the
    enclosing unit.  Every unit-scoped walk in the analysis engine (edge
    collection, rule site scans) uses this walker so no site is ever
    attributed to two units.
    """
    stack: list[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        yield node
        # The guard applies to the node being expanded (a nested def can
        # arrive as a root: it is a *statement* of the enclosing body).
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d)
        elif isinstance(node, ast.ClassDef):
            stack.extend(node.decorator_list)
            stack.extend(node.bases)
        else:
            stack.extend(ast.iter_child_nodes(node))


def module_name_for(relative: str, src_root: str) -> str | None:
    """Dotted module name for a repo-relative path, or None outside src."""
    prefix = src_root.rstrip("/") + "/"
    if not relative.startswith(prefix) or not relative.endswith(".py"):
        return None
    parts = relative[len(prefix):-3].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


@dataclass
class FunctionInfo:
    """One function or method, addressable by its unit id."""

    id: str
    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile
    class_id: str | None = None
    params: tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One class: its methods and (project-resolvable) bases."""

    id: str
    name: str
    module: str
    node: ast.ClassDef
    source: SourceFile
    methods: dict[str, str] = field(default_factory=dict)
    base_ids: tuple[str, ...] = ()


def _annotation_names(annotation: ast.expr | None) -> Iterator[str]:
    """Candidate class names in an annotation (unions split, quotes dropped).

    ``"EventQueue | LegacyEventQueue"``, ``Optional[Simulator]`` and plain
    ``Topology`` all yield their member names; ``None`` / unknown shapes
    yield nothing.
    """
    if annotation is None:
        return
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String forward reference: re-parse the quoted source.
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        yield from _annotation_names(annotation.left)
        yield from _annotation_names(annotation.right)
        return
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / list[X]: look inside — over-approximating a
        # container annotation as its element type only ever *adds*
        # candidate receivers, which is the safe direction here.
        yield from _annotation_names(annotation.slice)
        if isinstance(annotation.slice, ast.Tuple):
            for element in annotation.slice.elts:
                yield from _annotation_names(element)
        return
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        parts: list[str] = []
        node: ast.expr = annotation
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            yield ".".join(reversed(parts))


class CallGraph:
    """Project-wide unit index + reference edges + type-lite environment."""

    def __init__(self, project: Project, config: AnalysisConfig) -> None:
        self.project = project
        self.config = config
        #: dotted module name -> SourceFile
        self.modules: dict[str, SourceFile] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: (module, local name) -> unit/class id for module-level defs
        self._module_defs: dict[tuple[str, str], str] = {}
        #: per-module import table (local name -> dotted origin)
        self._aliases: dict[str, dict[str, str]] = {}
        #: unit id -> ids it calls or references by name
        self.references: dict[str, set[str]] = {}
        #: module -> project modules its imports execute
        self._imports: dict[str, set[str]] = {}
        #: (class_id, attr) / (func_id, local) -> set of class ids
        self.attr_types: dict[tuple[str, str], set[str]] = {}
        self.local_types: dict[tuple[str, str], set[str]] = {}
        self._index()
        self._infer_types()
        self._link()

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def _index(self) -> None:
        src_root = self.config.src_root
        for source in self.project.under(self.config.src_prefix):
            module = module_name_for(source.relative, src_root)
            if module is None or source.tree is None:
                continue
            self.modules[module] = source
            self._aliases[module] = import_aliases(source.tree)
            self._index_body(module, source, source.tree.body, prefix="",
                             class_id=None)

    def _index_body(self, module: str, source: SourceFile,
                    body: list[ast.stmt], prefix: str,
                    class_id: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                info = FunctionInfo(
                    id=f"{module}:{qualname}", module=module,
                    qualname=qualname, node=node, source=source,
                    class_id=class_id, params=self._param_names(node))
                self.functions[info.id] = info
                if class_id is not None:
                    self.classes[class_id].methods[node.name] = info.id
                elif not prefix:
                    self._module_defs[(module, node.name)] = info.id
                # Nested defs reference-link to their parent via _link.
                self._index_body(module, source, node.body,
                                 prefix=f"{qualname}.", class_id=None)
            elif isinstance(node, ast.ClassDef) and class_id is None:
                qualname = f"{prefix}{node.name}"
                info = ClassInfo(id=f"{module}:{qualname}", name=node.name,
                                 module=module, node=node, source=source)
                self.classes[info.id] = info
                if not prefix:
                    self._module_defs[(module, node.name)] = info.id
                self._index_body(module, source, node.body,
                                 prefix=f"{qualname}.", class_id=info.id)

    @staticmethod
    def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return tuple(names)

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #

    def resolve_name(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted name used in ``module`` to a unit/class id."""
        head, _, rest = dotted.partition(".")
        local = self._module_defs.get((module, head))
        if local is not None:
            if not rest:
                return local
            info = self.classes.get(local)
            if info is not None:
                return info.methods.get(rest)
            return None
        origin = self._aliases.get(module, {}).get(head)
        if origin is None:
            return None
        target = f"{origin}.{rest}" if rest else origin
        return self._resolve_dotted(target)

    def _resolve_dotted(self, dotted: str) -> str | None:
        """``repro.sim.events.EventQueue.schedule`` -> its unit id."""
        if dotted in self.modules:
            return dotted
        head, _, tail = dotted.rpartition(".")
        while head:
            if head in self.modules:
                unit = self._module_defs.get((head, tail.split(".")[0]))
                if unit is None:
                    return None
                rest = tail.split(".")[1:]
                if not rest:
                    return unit
                info = self.classes.get(unit)
                if info is not None and len(rest) == 1:
                    return info.methods.get(rest[0])
                return None
            tail = f"{head.rpartition('.')[2]}.{tail}"
            head = head.rpartition(".")[0]
        return None

    def class_id_for(self, path: str, class_name: str) -> str | None:
        """Unit id of a class addressed by (repo path, name) config pairs."""
        module = module_name_for(path, self.config.src_root)
        if module is None:
            return None
        unit = self._module_defs.get((module, class_name))
        return unit if unit in self.classes else None

    # ------------------------------------------------------------------ #
    # Type-lite inference
    # ------------------------------------------------------------------ #

    def _class_names_for_annotation(self, module: str,
                                    annotation: ast.expr | None) -> set[str]:
        found: set[str] = set()
        for name in _annotation_names(annotation):
            unit = self.resolve_name(module, name)
            if unit in self.classes:
                found.add(unit)
        return found

    def _infer_types(self) -> None:
        # Pass 1: annotations (parameters, attribute AnnAssigns, returns
        # need no iteration — they are declarative).
        for info in self.functions.values():
            args = info.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                classes = self._class_names_for_annotation(info.module,
                                                          arg.annotation)
                if classes:
                    self.local_types[(info.id, arg.arg)] = set(classes)
            if info.class_id is not None and info.params[:1] == ("self",):
                self.local_types[(info.id, "self")] = {info.class_id}
        for cls in self.classes.values():
            for node in cls.node.body:
                if isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name):
                    classes = self._class_names_for_annotation(
                        cls.module, node.annotation)
                    if classes:
                        self.attr_types.setdefault(
                            (cls.id, node.target.id), set()).update(classes)
        # Pass 2..n: assignment propagation to a (bounded) fixpoint.
        for _ in range(4):
            if not self._propagate_assignments():
                break

    def _propagate_assignments(self) -> bool:
        changed = False
        for info in self.functions.values():
            for node in ast.walk(info.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                classes = self.expr_types(value, info)
                if not classes:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        key = (info.id, target.id)
                        table = self.local_types
                    elif isinstance(target, ast.Attribute):
                        owners = self.expr_types(target.value, info)
                        for owner in owners:
                            akey = (owner, target.attr)
                            known = self.attr_types.setdefault(akey, set())
                            if not classes <= known:
                                known.update(classes)
                                changed = True
                        continue
                    else:
                        continue
                    known = table.setdefault(key, set())
                    if not classes <= known:
                        known.update(classes)
                        changed = True
        return changed

    def expr_types(self, expr: ast.expr, info: FunctionInfo) -> set[str]:
        """Project classes an expression may evaluate to (type-lite)."""
        if isinstance(expr, ast.Name):
            local = self.local_types.get((info.id, expr.id))
            # A bare class *name* is not an instance of the class; only
            # typed locals/params carry the methods the rules care about.
            return set(local) if local else set()
        if isinstance(expr, ast.Attribute):
            found: set[str] = set()
            for owner in self.expr_types(expr.value, info):
                found |= self.attr_types.get((owner, expr.attr), set())
            return found
        if isinstance(expr, ast.Call):
            callee = self.resolve_call(expr, info)
            if callee in self.classes:
                return {callee}
            func = self.functions.get(callee) if callee else None
            if func is not None:
                return self._class_names_for_annotation(func.module,
                                                        func.node.returns)
            return set()
        if isinstance(expr, ast.IfExp):
            return self.expr_types(expr.body, info) \
                | self.expr_types(expr.orelse, info)
        if isinstance(expr, ast.BoolOp):
            found = set()
            for value in expr.values:
                found |= self.expr_types(value, info)
            return found
        if isinstance(expr, (ast.Await, ast.NamedExpr)):
            inner = expr.value
            return self.expr_types(inner, info)
        return set()

    # ------------------------------------------------------------------ #
    # Reference edges + reachability
    # ------------------------------------------------------------------ #

    def resolve_call(self, call: ast.Call, info: FunctionInfo) -> str | None:
        """Unit/class id a call dispatches to, or None when unresolved."""
        func = call.func
        if isinstance(func, (ast.Name, ast.Attribute)):
            parts: list[str] = []
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                dotted = ".".join([node.id] + list(reversed(parts)))
                unit = self.resolve_name(info.module, dotted)
                if unit is not None:
                    return unit
        # Method dispatch through the receiver's inferred types.
        if isinstance(func, ast.Attribute):
            for owner in self.expr_types(func.value, info):
                cls = self.classes.get(owner)
                if cls is not None and func.attr in cls.methods:
                    return cls.methods[func.attr]
        return None

    def _link(self) -> None:
        for module, source in self.modules.items():
            if source.tree is None:
                continue
            self._imports[module] = self._project_imports(module, source.tree)
            # Module top-level references (nested defs excluded — defining
            # a function does not run it, but decorators and calls do).
            holder = FunctionInfo(id=module, module=module, qualname="",
                                  node=None, source=source)  # type: ignore[arg-type]
            self.references[module] = self._collect_references(
                module, source.tree.body, holder)
        for info in self.functions.values():
            refs = self._collect_references(info.id, info.node.body, info)
            # A nested def is conservatively live with its parent (closures
            # are made to be handed somewhere).
            for node in info.node.body:
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        candidate = f"{info.module}:{info.qualname}.{sub.name}"
                        if candidate in self.functions:
                            refs.add(candidate)
            self.references[info.id] = refs
        for cls in self.classes.values():
            # Referencing/instantiating a class makes its body run and its
            # methods callable: model the class unit as referencing both.
            self.references[cls.id] = set(cls.methods.values())

    def _project_imports(self, module: str, tree: ast.Module) -> set[str]:
        imported: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.modules:
                        imported.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level:
                    # Relative import (the tree uses none; best-effort so
                    # fixture trees that do are not silently unlinked).
                    base = ".".join(module.split(".")[:-node.level] or [])
                    target = f"{base}.{target}".strip(".")
                if target in self.modules:
                    imported.add(target)
                for alias in node.names:
                    candidate = f"{target}.{alias.name}" if target else alias.name
                    if candidate in self.modules:
                        imported.add(candidate)
        return imported

    def _collect_references(self, unit: str, roots: list[ast.stmt],
                            info: FunctionInfo) -> set[str]:
        refs: set[str] = set()
        for sub in walk_unit(roots):
            if isinstance(sub, ast.Call):
                target = self.resolve_call(sub, info)
                if target is not None:
                    refs.add(target)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                target = self._module_defs.get((info.module, sub.id))
                if target is None:
                    origin = self._aliases.get(info.module, {}).get(sub.id)
                    target = self._resolve_dotted(origin) if origin else None
                if target is not None:
                    refs.add(target)
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                # `self.handler` / `obj.method` passed as a callback.
                if info.node is not None:
                    for owner in self.expr_types(sub.value, info):
                        cls = self.classes.get(owner)
                        if cls is not None and sub.attr in cls.methods:
                            refs.add(cls.methods[sub.attr])
        return refs

    def reachable_from(self, entry_modules: tuple[str, ...]) -> set[str]:
        """Unit ids (modules, functions, classes) live from the entries.

        A module entry seeds its top-level plus every public top-level
        def; reachable module top-levels pull in the modules they import
        (imports execute); reachable code pulls in everything it calls or
        names; a referenced class makes its methods callable.  Decorated
        top-level functions of reachable modules count as live — a
        decorator is registration, and registered callables are invoked
        from outside the graph.
        """
        seeds: list[str] = []
        for module in entry_modules:
            if module not in self.modules:
                continue
            seeds.append(module)
            for (mod, name), unit in self._module_defs.items():
                if mod == module and not name.startswith("_"):
                    seeds.append(unit)
        reachable: set[str] = set()
        work = list(seeds)
        while work:
            unit = work.pop()
            if unit in reachable:
                continue
            reachable.add(unit)
            work.extend(self.references.get(unit, ()))
            if unit in self.modules:  # module top-level: imports execute
                for imported in self._imports.get(unit, ()):
                    work.append(imported)
                for (mod, name), defined in self._module_defs.items():
                    if mod != unit:
                        continue
                    func = self.functions.get(defined)
                    if func is not None and func.node.decorator_list:
                        work.append(defined)
                    cls = self.classes.get(defined)
                    if cls is not None and cls.node.decorator_list:
                        work.append(defined)
        return reachable


def get_callgraph(project: Project, config: AnalysisConfig) -> CallGraph:
    """One memoised :class:`CallGraph` per project snapshot."""
    key = (config.src_prefix, config.src_root)
    cache = getattr(project, "_callgraph_cache", None)
    if cache is None:
        cache = {}
        project._callgraph_cache = cache  # type: ignore[attr-defined]
    graph = cache.get(key)
    if graph is None:
        graph = CallGraph(project, config)
        cache[key] = graph
    return graph
