"""The typed-core gate: strict mypy over the allowlisted modules.

Type errors in the GF layer and the event engine are exactly the class of
bug the differential tests are slowest to localise (a wrong dtype or a
``None`` leaking into a kernel shows up as a trace divergence three layers
away), so the core modules are held to strict typing.  The allowlist
starts small and is meant to only ever grow:

* :mod:`repro.gf` (arithmetic, tables, matrix, kernels)
* :mod:`repro.rng`
* :mod:`repro.sim.events`
* :mod:`repro.sim.faults`
* :mod:`repro.sim.monitor`
* :mod:`repro.topology.mobility`
* :mod:`repro.experiments.orchestrator.store`

mypy is a third-party tool and hermetic containers may not ship it, so —
exactly like ruff in ``scripts/lint.py`` — the gate runs mypy when it is
importable and reports a skip otherwise.  CI installs mypy explicitly, so
the gate is always enforced before merge; the flag configuration lives in
``pyproject.toml`` under ``[tool.mypy]``.
"""

from __future__ import annotations

import subprocess
import sys
from importlib import util
from pathlib import Path

#: Package/module names held to the strict per-module mypy overrides.
#: Keep in sync with the ``[[tool.mypy.overrides]]`` table in pyproject.toml.
STRICT_MODULES = (
    "repro.gf",
    "repro.rng",
    "repro.sim.events",
    "repro.sim.faults",
    "repro.sim.monitor",
    "repro.topology.mobility",
    "repro.experiments.orchestrator.store",
)


def mypy_available() -> bool:
    """True when mypy is importable in this interpreter."""
    return util.find_spec("mypy") is not None


def run_mypy(root: Path) -> int | None:
    """Run mypy over the strict allowlist; ``None`` when mypy is absent.

    Packages are addressed by module name (``-p``) so mypy follows the
    pyproject ``mypy_path = ["src"]`` configuration rather than guessing
    the package layout from file paths.
    """
    if not mypy_available():
        return None
    command = [sys.executable, "-m", "mypy"]
    for module in STRICT_MODULES:
        command += ["-p", module]
    print(f"analyze: mypy over {', '.join(STRICT_MODULES)}")
    return subprocess.run(command, cwd=root).returncode
