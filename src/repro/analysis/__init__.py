"""repro-check: the repo-specific static invariant analyzer.

The differential test suites defend this reproduction's contracts
*dynamically*: engine=fast/legacy traces must match bit for bit, every
random draw must be a pure function of ``(seed, counter)``, every
``RunConfig`` knob must actually reach the simulator.  A violated contract
only surfaces once a trace diverges — often many PRs later.  This package
enforces the same contracts *statically*, at ``make analyze`` time, as an
AST-walking rule framework with repo-specific rules:

``DET001``
    No unseeded ``np.random.default_rng()``, no stdlib ``random``, no
    legacy ``np.random.*`` global-state draws and no wall clock
    (``time.time`` / ``perf_counter`` / …) inside ``src/repro``.  The
    timing harnesses that legitimately measure wall time carry annotated
    ``# repro: allow-DET001`` exemptions.

``DET002``
    Counter-based purity: channel/mobility realisation classes must not
    store (and later advance) a mutable ``Generator`` between queries —
    randomness is re-derived per ``(seed, counter)`` query instead.

``ENG001``
    Engine parity: registered dual/triple-path implementations
    (``EventQueue``/``LegacyEventQueue``, the ``BatchBuffer`` engine
    selector, ``VECMAT_KERNELS``) must keep identical public signatures so
    API drift fails the build before a differential test has to catch it.

``DET101``
    Whole-program RNG provenance (interprocedural, via the call-graph +
    dataflow layer): no main-RNG value may reach a draw inside a
    counter-based module, no draw may come from a generator stored on an
    instance attribute of one (query-order dependence), no attribute may
    mix generators from multiple construction sites, and every resolvable
    draw must trace back to a declared stream root.

``EVT101``
    Event-handle lifecycle: every handle-returning ``schedule``/
    ``schedule_at`` call must store a handle that some teardown path
    cancels, hand it to its caller, or use the fire-and-forget
    ``schedule_callback`` variants instead (the PR 4 ``_pending_handle``
    leak class, caught statically).

``CFG001``
    Config threading: every ``RunConfig`` field must be consumed somewhere
    in ``src/repro`` (the recurring half-threaded-field bug class) and the
    ``ScenarioSpec`` run/override plumbing must stay intact.

``CFG101``
    Interprocedural config threading: a field only counts as live when a
    read of it is *reachable* from the CLI/figure entry points through
    the call graph — a read in dead code does not thread a knob.

``CACHE001``
    Cache-key coverage: every ``RunConfig`` field must feed the
    content-addressed result store's spec hash (``config_fingerprint``
    enumerates ``fields(RunConfig)`` or names every declared field), so a
    new knob can never alias a stale cached result.

``PERF001``
    Hot-path hygiene: the registered hot modules keep ``__slots__`` on
    their registered classes and stay free of per-event lambda allocation
    and ``print``.

``SUP001``
    Unused-suppression audit (ruff's ``unused-noqa``): every
    ``# repro: allow-<RULE>`` comment must suppress an actual finding of
    a rule that ran in the same invocation.

Style rules (``E501``/``W291``/``W293``/``W191``/``F401``/``SYN001``) from
the old ``scripts/lint.py`` stdlib fallback run through the same registry,
so there is one rule framework and one entrypoint::

    PYTHONPATH=src python -m repro.analysis          # everything + mypy
    PYTHONPATH=src python -m repro.analysis --select DET001,CFG001
    make analyze                                     # the pre-merge gate

Findings are suppressed per line with ``# repro: allow-<RULE>`` (same line
or an immediately preceding comment line) or module-wide with
``# repro: allow-<RULE> file``; see docs/invariants.md for each rule's
rationale and the full suppression syntax.

The interprocedural rules sit on a shared whole-program substrate:
:mod:`repro.analysis.callgraph` (module index, type-lite inference,
call/reference graph, reachability) and :mod:`repro.analysis.dataflow`
(abstract-location value flow for generator and handle provenance), both
built once per project snapshot and memoised.
"""

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    all_rules,
    get_rule,
    run_rules,
)

# Importing the rule modules registers their rules with the framework.
from repro.analysis import cache_key  # noqa: F401  (registration import)
from repro.analysis import config_threading  # noqa: F401  (registration import)
from repro.analysis import determinism  # noqa: F401  (registration import)
from repro.analysis import hotpath  # noqa: F401  (registration import)
from repro.analysis import lifecycle  # noqa: F401  (registration import)
from repro.analysis import parity  # noqa: F401  (registration import)
from repro.analysis import rng_provenance  # noqa: F401  (registration import)
from repro.analysis import style  # noqa: F401  (registration import)
from repro.analysis import suppressions  # noqa: F401  (registration import)

#: The rule subset `make lint`'s stdlib fallback runs (the old
#: scripts/lint.py checks, now living in :mod:`repro.analysis.style`).
STYLE_RULES = ("SYN001", "E501", "W191", "W291", "W293", "F401")

#: The repo-specific invariant rules (everything that is not style).
INVARIANT_RULES = ("DET001", "DET002", "DET003", "DET101", "ENG001",
                   "EVT101", "CFG001", "CFG101", "CACHE001", "PERF001",
                   "SUP001")

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Project",
    "Rule",
    "STYLE_RULES",
    "INVARIANT_RULES",
    "all_rules",
    "get_rule",
    "run_rules",
]
