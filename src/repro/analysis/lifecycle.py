"""EVT101: event-handle lifecycle.

Every ``EventQueue.schedule`` / ``schedule_at`` call returns a cancel
handle, and that handle is an *obligation*: either some teardown path
cancels it, or the event was never meant to be cancellable and should
have been scheduled through the fire-and-forget ``schedule_callback``
variants (which allocate no handle at all — cheaper *and* honest about
intent).  The PR 4 ``_pending_handle`` leak is the canonical violation:
the MAC stored a handle, *cleared* the attribute on one path without
cancelling, and the orphaned event later fired into a recycled frame
state.  Clearing is not cancelling; this rule knows the difference.

For every handle-returning schedule call on a receiver the type-lite
layer resolves to a registered queue class, exactly one of these must
hold:

* the result is **discarded** — rejected: use ``schedule_callback`` /
  ``schedule_callback_at`` (same ``(time, sequence)`` key space, so the
  rewrite is dispatch-identical), or keep the handle;
* the result is stored on an **instance attribute** — some method of
  that class must call ``.cancel()`` on a value the dataflow layer
  traces back to the attribute (alias-aware: ``h = self._pending; if h
  is not None: h.cancel()`` counts);
* the result is bound to a **local** — the function must cancel it or
  let it escape (return it, pass it on, store it);
* the result is **returned or passed directly** — the obligation moves
  to the caller, which this rule checks in its own context.

Receivers the type layer cannot resolve are skipped (never guessed).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    get_callgraph,
    walk_unit,
)
from repro.analysis.dataflow import DataFlow, get_dataflow
from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    register,
)


@register
class EventHandleLifecycle(Rule):
    """EVT101: schedule handles are cancelled, escaped, or not created."""

    name = "EVT101"
    description = ("every handle-returning schedule*() call must store a "
                   "handle some teardown path cancels, hand it to its "
                   "caller, or use the schedule_callback fire-and-forget "
                   "variants instead")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        graph = get_callgraph(project, config)
        flow = get_dataflow(project, config)
        queue_ids = {
            class_id for class_id in (
                graph.class_id_for(path, name)
                for path, name in config.event_queue_classes)
            if class_id is not None}
        if not queue_ids:
            return
        methods = set(config.schedule_methods)
        #: (class_id, attr) -> first store site (source, line, method name)
        attr_stores: dict[tuple[str, str], tuple] = {}
        for info in graph.functions.values():
            yield from self._check_function(info, graph, queue_ids, methods,
                                            attr_stores)
        for (class_id, attr), (source, line, _) in sorted(attr_stores.items()):
            if self._class_cancels(graph, flow, class_id, attr):
                continue
            owner = class_id.rpartition(":")[2]
            yield Finding(
                self.name, source.relative, line,
                f"`{owner}.{attr}` stores a schedule handle but no method of "
                f"`{owner}` ever cancels it: clearing the attribute without "
                "`.cancel()` leaks the event (the `_pending_handle` bug "
                "class) — cancel on every teardown path or use "
                "schedule_callback",
            )

    # -- per-function contexts --------------------------------------------- #

    def _is_schedule_call(self, node: ast.AST, info: FunctionInfo,
                          graph: CallGraph, queue_ids: set[str],
                          methods: set[str]) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
                and bool(graph.expr_types(node.func.value, info) & queue_ids))

    def _check_function(self, info: FunctionInfo, graph: CallGraph,
                        queue_ids: set[str], methods: set[str],
                        attr_stores: dict) -> Iterator[Finding]:
        def is_sched(node: ast.AST) -> bool:
            return self._is_schedule_call(node, info, graph, queue_ids, methods)

        locals_to_check: list[tuple[str, ast.Call]] = []
        # Shallow walk: nested defs are their own FunctionInfo units, so
        # descending into them here would double-report every site.
        for node in walk_unit(info.node.body):
            if isinstance(node, ast.Expr) and is_sched(node.value):
                call = node.value
                assert isinstance(call, ast.Call)
                assert isinstance(call.func, ast.Attribute)
                method = call.func.attr
                variant = ("schedule_callback_at" if method == "schedule_at"
                           else "schedule_callback")
                yield Finding(
                    self.name, info.source.relative, node.lineno,
                    f"the handle returned by `.{method}()` is "
                    f"discarded: use `.{variant}()` for fire-and-forget "
                    "events (dispatch-identical, no handle allocated), or "
                    "store the handle and cancel it on teardown",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not is_sched(value):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        locals_to_check.append((target.id, value))
                    elif isinstance(target, ast.Attribute):
                        # Untyped receivers resolve to no owner: the
                        # obligation is unprovable there and stays unflagged.
                        for owner in graph.expr_types(target.value, info):
                            attr_stores.setdefault(
                                (owner, target.attr),
                                (info.source, node.lineno, info.qualname))
        for name, call in locals_to_check:
            if not self._local_discharged(info, name):
                yield Finding(
                    self.name, info.source.relative, call.lineno,
                    f"the schedule handle bound to `{name}` is neither "
                    "cancelled nor escapes this function: the cancellation "
                    "obligation is silently dropped — cancel it, hand it "
                    "out, or use schedule_callback",
                )

    def _local_discharged(self, info: FunctionInfo, name: str) -> bool:
        """True when a handle-bearing local is cancelled or escapes."""
        aliases = {name}
        # Flow-insensitive alias closure over name-to-name assignments.
        for _ in range(3):
            grew = False
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id in aliases:
                    for target in node.targets:
                        if isinstance(target, ast.Name) \
                                and target.id not in aliases:
                            aliases.add(target.id)
                            grew = True
            if not grew:
                break
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "cancel" \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id in aliases:
                    return True  # cancelled
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in aliases:
                        return True  # escapes as an argument
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name) \
                    and node.value.id in aliases:
                return True  # escapes to the caller
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in aliases:
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True  # escapes into an object/container
            elif isinstance(node, (ast.Tuple, ast.List)) \
                    and isinstance(node.ctx, ast.Load):
                for element in node.elts:
                    if isinstance(element, ast.Name) and element.id in aliases:
                        return True  # collected; lifecycle continues elsewhere
        return False

    # -- class-level cancel discipline ------------------------------------- #

    def _class_cancels(self, graph: CallGraph, flow: DataFlow,
                       class_id: str, attr: str) -> bool:
        """Does any method cancel a value traceable to ``self.<attr>``?"""
        cls = graph.classes.get(class_id)
        if cls is None:
            return False
        wanted = ("attr", class_id, attr)
        for method_id in cls.methods.values():
            method = graph.functions[method_id]
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "cancel"):
                    continue
                receiver_locations = flow.expr_locations(node.func.value,
                                                         method)
                if wanted in receiver_locations:
                    return True
                if wanted in flow.origins(receiver_locations):
                    return True
        return False
