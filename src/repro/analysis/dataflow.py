"""Interprocedural value flow: where do generators come from, where do they go.

A lightweight Andersen-style points-to analysis over *abstract locations*
— flow-insensitive, context-insensitive, and deliberately so: the rules
built on it (DET101 RNG provenance, EVT101 handle lifecycle) ask
reachability questions ("can a main-RNG value arrive at this draw site?",
"does any cancel() receiver alias this attribute?") where merging all
paths is the sound direction.

Locations:

* ``("local", func_id, name)`` — a function's parameter or local;
* ``("attr", class_id, name)`` — an instance attribute, merged per class;
* ``("ret", func_id)`` — a function's return value;
* ``("global", module, name)`` — a module-level binding.

Atoms are the values the rules track, seeded at construction sites:

* ``("gen", path, line, seeded)`` — one per ``numpy.random`` generator
  construction (``seeded`` when the call takes an explicit seed);
* ``("main",)`` — a pseudo-atom injected at the configured main-RNG
  attribute (:attr:`AnalysisConfig.rng_main_root`), so "did the main
  stream leak here" is one set-membership test;
* ``("stored", class_id, attr)`` — injected at every counter-module
  instance attribute that holds a generator, marking values whose draw
  count depends on query order (the interprocedural DET002).

Assignments, attribute stores, returns and resolved call argument/param
bindings become edges; :meth:`DataFlow.tags` answers which atoms reach a
location after one worklist propagation.  Unresolvable expressions
contribute *no* edges — a receiver the analysis cannot attribute stays
untagged and the rules skip it (documented false-negative) rather than
guess (false-positive).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    get_callgraph,
    walk_unit,
)
from repro.analysis.framework import (
    AnalysisConfig,
    Project,
    resolve_call_name,
)

#: ``numpy.random`` callables whose results are tracked generator values.
GENERATOR_MAKERS = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM", "numpy.random.MT19937",
    "numpy.random.Philox", "numpy.random.SFC64",
})

Location = tuple
Atom = tuple

MAIN_ATOM: Atom = ("main",)


class DataFlow:
    """The propagated location graph for one project snapshot."""

    def __init__(self, graph: CallGraph, config: AnalysisConfig) -> None:
        self.graph = graph
        self.config = config
        #: source (atom or location) -> destination locations
        self.forward: dict[tuple, set[Location]] = {}
        self.atoms: set[Atom] = set()
        #: attr location -> generator atoms assigned to it *directly* (the
        #: construction call is the assignment's right-hand side, not a
        #: value that arrived through a parameter).  Stream-confusion
        #: checks use this: injection of a caller-owned generator through
        #: ``__init__`` is the caller picking a stream, not mixing them.
        self.direct_attr_atoms: dict[Location, set[Atom]] = {}
        self._locals_cache: dict[str, frozenset[str]] = {}
        self._tags: dict[Location, set[Atom]] = {}
        self._build()
        self._propagate()

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        for module, source in self.graph.modules.items():
            if source.tree is None:
                continue
            holder = FunctionInfo(id=module, module=module, qualname="",
                                  node=None, source=source)  # type: ignore[arg-type]
            for node in walk_unit(source.tree.body):
                self._process(node, holder)
        for info in self.graph.functions.values():
            for node in ast.walk(info.node):
                self._process(node, info)

    def _process(self, node: ast.AST, info: FunctionInfo) -> None:
        if isinstance(node, ast.Assign):
            sources = self._value_sources(node.value, info)
            for target in node.targets:
                self._bind_target(target, sources, info)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            sources = self._value_sources(node.value, info)
            self._bind_target(node.target, sources, info)
        elif isinstance(node, ast.Return) and node.value is not None \
                and info.node is not None:
            for source in self._value_sources(node.value, info):
                self._edge(source, ("ret", info.id))
        elif isinstance(node, ast.Call):
            self._bind_call_args(node, info)

    def _bind_target(self, target: ast.expr, sources: list[tuple],
                     info: FunctionInfo) -> None:
        if not sources:
            return
        for location in self._target_locations(target, info):
            for source in sources:
                self._edge(source, location)
                if location[0] == "attr" and source in self.atoms:
                    self.direct_attr_atoms.setdefault(
                        location, set()).add(source)

    def _target_locations(self, target: ast.expr,
                          info: FunctionInfo) -> Iterator[Location]:
        if isinstance(target, ast.Name):
            if info.node is None:
                yield ("global", info.module, target.id)
            else:
                yield ("local", info.id, target.id)
        elif isinstance(target, ast.Attribute):
            for owner in self.graph.expr_types(target.value, info):
                yield ("attr", owner, target.attr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking loses element identity; bind every element to
            # every source (over-approximation in the safe direction).
            for element in target.elts:
                yield from self._target_locations(element, info)

    def _bind_call_args(self, call: ast.Call, info: FunctionInfo) -> None:
        callee = self.graph.resolve_call(call, info)
        if callee is None:
            return
        cls = self.graph.classes.get(callee)
        if cls is not None:
            callee = cls.methods.get("__init__")
            if callee is None:
                return
        func = self.graph.functions.get(callee)
        if func is None:
            return
        params = list(func.params)
        if func.class_id is not None and params[:1] == ["self"]:
            params = params[1:]
        for position, arg in enumerate(call.args):
            if position >= len(params):
                break
            self._bind_argument(arg, ("local", func.id, params[position]), info)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in func.params:
                self._bind_argument(keyword.value,
                                    ("local", func.id, keyword.arg), info)

    def _bind_argument(self, value: ast.expr, param: Location,
                       info: FunctionInfo) -> None:
        for source in self._value_sources(value, info):
            self._edge(source, param)

    def _value_sources(self, expr: ast.expr,
                       info: FunctionInfo) -> list[tuple]:
        """Atoms/locations an expression's value may come from."""
        if isinstance(expr, ast.Name):
            if info.node is not None and expr.id in self._function_locals(info):
                return [("local", info.id, expr.id)]
            return [("global", info.module, expr.id)]
        if isinstance(expr, ast.Attribute):
            return [("attr", owner, expr.attr)
                    for owner in self.graph.expr_types(expr.value, info)]
        if isinstance(expr, ast.Call):
            maker = resolve_call_name(
                expr.func, self.graph._aliases.get(info.module, {}))
            if maker in GENERATOR_MAKERS:
                seeded = bool(expr.args or expr.keywords)
                atom = ("gen", info.source.relative, expr.lineno, seeded)
                self.atoms.add(atom)
                return [atom]
            callee = self.graph.resolve_call(expr, info)
            if callee is not None and callee in self.graph.functions:
                return [("ret", callee)]
            return []
        if isinstance(expr, ast.IfExp):
            return self._value_sources(expr.body, info) \
                + self._value_sources(expr.orelse, info)
        if isinstance(expr, ast.BoolOp):
            sources: list[tuple] = []
            for value in expr.values:
                sources += self._value_sources(value, info)
            return sources
        if isinstance(expr, (ast.Await, ast.NamedExpr)):
            return self._value_sources(expr.value, info)
        return []

    def _function_locals(self, info: FunctionInfo) -> frozenset[str]:
        cached = self._locals_cache.get(info.id)
        if cached is None:
            names = set(info.params)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, (ast.Store, ast.Del)):
                    names.add(node.id)
            cached = frozenset(names)
            self._locals_cache[info.id] = cached
        return cached

    def _edge(self, source: tuple, destination: Location) -> None:
        if source != destination:
            self.forward.setdefault(source, set()).add(destination)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> None:
        # Round 1: construction-site atoms flow to every location they
        # reach; the configured main-root attribute additionally injects
        # the MAIN pseudo-atom.
        seeds: list[tuple[tuple, Atom]] = [(atom, atom) for atom in self.atoms]
        main = self.main_root_location()
        if main is not None:
            seeds.append((main, MAIN_ATOM))
        self._spread(seeds)
        # Round 2: every counter-module attribute holding a generator is a
        # query-order hazard; values read from it carry a STORED atom.
        counter = set(self.config.purity_modules) | set(self.config.fault_modules)
        stored_seeds: list[tuple[tuple, Atom]] = []
        for location, tags in list(self._tags.items()):
            if location[0] != "attr":
                continue
            cls = self.graph.classes.get(location[1])
            if cls is None or cls.source.relative not in counter:
                continue
            if any(atom[0] in ("gen", "main") for atom in tags):
                stored_seeds.append(
                    (location, ("stored", location[1], location[2])))
        self._spread(stored_seeds)

    def _spread(self, seeds: list[tuple[tuple, Atom]]) -> None:
        work: list[tuple[tuple, Atom]] = []
        for source, atom in seeds:
            if source == atom:  # construction-site atom: start at its sinks
                for destination in self.forward.get(source, ()):
                    work.append((destination, atom))
            else:  # pseudo-atom injected at an existing location
                work.append((source, atom))
        while work:
            location, atom = work.pop()
            tags = self._tags.setdefault(location, set())
            if atom in tags:
                continue
            tags.add(atom)
            for destination in self.forward.get(location, ()):
                work.append((destination, atom))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def main_root_location(self) -> Location | None:
        path, class_name, attr = self.config.rng_main_root
        class_id = self.graph.class_id_for(path, class_name)
        return ("attr", class_id, attr) if class_id is not None else None

    def tags(self, location: Location) -> frozenset[Atom]:
        return frozenset(self._tags.get(location, ()))

    def expr_locations(self, expr: ast.expr,
                       info: FunctionInfo) -> list[Location]:
        """The locations a receiver expression reads from (no atoms)."""
        return [source for source in self._value_sources(expr, info)
                if source not in self.atoms]

    def expr_tags(self, expr: ast.expr, info: FunctionInfo) -> frozenset[Atom]:
        """Atoms reaching an expression: its locations' tags plus any
        construction atom the expression itself is."""
        found: set[Atom] = set()
        for source in self._value_sources(expr, info):
            if source in self.atoms:
                found.add(source)
            else:
                found |= self._tags.get(source, set())
        return frozenset(found)

    def origins(self, locations: list[Location]) -> set[tuple]:
        """Everything flowing (transitively) *into* the given locations."""
        reverse: dict[Location, set[tuple]] = {}
        for source, destinations in self.forward.items():
            for destination in destinations:
                reverse.setdefault(destination, set()).add(source)
        seen: set[tuple] = set()
        work = list(locations)
        while work:
            location = work.pop()
            for source in reverse.get(location, ()):
                if source not in seen:
                    seen.add(source)
                    work.append(source)
        return seen


def get_dataflow(project: Project, config: AnalysisConfig) -> DataFlow:
    """One memoised :class:`DataFlow` per project snapshot."""
    key = (config.src_prefix, config.src_root, config.rng_main_root,
           config.purity_modules, config.fault_modules)
    cache = getattr(project, "_dataflow_cache", None)
    if cache is None:
        cache = {}
        project._dataflow_cache = cache  # type: ignore[attr-defined]
    flow = cache.get(key)
    if flow is None:
        flow = DataFlow(get_callgraph(project, config), config)
        cache[key] = flow
    return flow
