"""ENG001: engine parity — dual-path implementations may not drift apart.

Every performance-critical layer of this reproduction is dual- (or
triple-) pathed: an optimised implementation pinned bit-identical to a
retained reference (``EventQueue`` vs ``LegacyEventQueue``, the
``BatchBuffer`` insertion engines, the ``VECMAT_KERNELS`` elimination
kernels).  The differential tests prove *behavioural* equality, but only
for the API surface they happen to exercise; a public method added or
re-signatured on one side silently de-pairs the implementations until a
trace diverges.  This rule fails the build on signature drift directly:

* **class pairs** — every public method/property of the registered
  reference class must exist on the variant with matching parameters
  (names, order, defaults).  The variant may append extra *defaulted*
  trailing parameters (e.g. ``EventQueue.run``'s ``version_source``) and
  extra methods (e.g. ``schedule_callback``): the reference API is the
  contract, the fast side may extend it.
* **function families** — all functions referenced from a registered
  dispatch-dict literal (plus configured extras, e.g. the reference
  kernel) must share one exact parameter list, so a new kernel cannot be
  registered with a different calling convention.
* **selector classes** — classes exposing the same engine selector (the
  buffer and the decoder both take ``fast=``/``engine=``/``kernel=``)
  must agree on those keywords' names and defaults.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    SourceFile,
    register,
)


def _find_class(source: SourceFile, name: str) -> ast.ClassDef | None:
    if source.tree is None:
        return None
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {node.name: node for node in cls.body
            if isinstance(node, ast.FunctionDef)}


def _is_property(func: ast.FunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) \
            else getattr(decorator, "id", None)
        if name in ("property", "cached_property"):
            return True
    return False


def _signature(func: ast.FunctionDef) -> list[tuple[str, str | None]]:
    """Positional/keyword parameter (name, default-source) pairs, in order.

    Annotations and return types are deliberately ignored: the engine
    sides legitimately differ there (e.g. handle types).
    """
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    defaults: list[str | None] = [None] * (len(params) - len(args.defaults))
    defaults += [ast.unparse(node) for node in args.defaults]
    pairs = [(param.arg, default) for param, default in zip(params, defaults)]
    for param, default in zip(args.kwonlyargs, args.kw_defaults):
        pairs.append((param.arg, None if default is None else ast.unparse(default)))
    return pairs


@register
class EngineParity(Rule):
    """ENG001: registered engine pairs keep identical public signatures."""

    name = "ENG001"
    description = ("dual-path engines (event queues, coding engines, "
                   "elimination kernels) must keep signature parity")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for ref_path, ref_name, var_path, var_name in config.parity_class_pairs:
            yield from self._check_class_pair(project, ref_path, ref_name,
                                              var_path, var_name)
        for path, registry, extras in config.parity_function_families:
            yield from self._check_function_family(project, path, registry, extras)
        for group in config.parity_selector_classes:
            yield from self._check_selectors(project, group,
                                             config.parity_selector_keywords)

    # -- class pairs ------------------------------------------------------- #

    def _check_class_pair(self, project: Project, ref_path: str, ref_name: str,
                          var_path: str, var_name: str) -> Iterator[Finding]:
        ref_source = project.get(ref_path)
        var_source = project.get(var_path)
        if ref_source is None or var_source is None:
            return
        reference = _find_class(ref_source, ref_name)
        variant = _find_class(var_source, var_name)
        if reference is None:
            yield Finding(self.name, ref_source.relative, 1,
                          f"registered reference class `{ref_name}` not found")
            return
        if variant is None:
            yield Finding(self.name, var_source.relative, 1,
                          f"registered engine class `{var_name}` not found "
                          f"(paired with `{ref_name}`)")
            return
        ref_methods = _methods(reference)
        var_methods = _methods(variant)
        for method_name, ref_method in sorted(ref_methods.items()):
            if method_name.startswith("_"):
                continue
            var_method = var_methods.get(method_name)
            if var_method is None:
                yield Finding(
                    self.name, var_source.relative, variant.lineno,
                    f"`{var_name}` lacks public method `{method_name}` "
                    f"defined by its engine pair `{ref_name}`",
                )
                continue
            if _is_property(ref_method) != _is_property(var_method):
                yield Finding(
                    self.name, var_source.relative, var_method.lineno,
                    f"`{var_name}.{method_name}` and `{ref_name}."
                    f"{method_name}` disagree on being a property",
                )
                continue
            yield from self._compare_signatures(
                var_source, ref_name, var_name, method_name,
                _signature(ref_method), _signature(var_method),
                var_method.lineno)

    def _compare_signatures(self, source: SourceFile, ref_name: str,
                            var_name: str, method_name: str,
                            ref_sig: list[tuple[str, str | None]],
                            var_sig: list[tuple[str, str | None]],
                            line: int) -> Iterator[Finding]:
        label = f"`{var_name}.{method_name}` vs `{ref_name}.{method_name}`"
        if len(var_sig) < len(ref_sig):
            yield Finding(self.name, source.relative, line,
                          f"{label}: missing parameter(s) "
                          f"{[name for name, _ in ref_sig[len(var_sig):]]}")
            return
        for (ref_param, ref_default), (var_param, var_default) \
                in zip(ref_sig, var_sig):
            if ref_param != var_param:
                yield Finding(self.name, source.relative, line,
                              f"{label}: parameter `{var_param}` does not "
                              f"match the reference's `{ref_param}`")
                return
            if ref_default != var_default:
                yield Finding(self.name, source.relative, line,
                              f"{label}: default for `{ref_param}` drifted "
                              f"({var_default!r} vs {ref_default!r})")
                return
        for extra_param, extra_default in var_sig[len(ref_sig):]:
            if extra_default is None:
                yield Finding(self.name, source.relative, line,
                              f"{label}: extra parameter `{extra_param}` must "
                              "carry a default (callers written against the "
                              "reference API would break)")
                return

    # -- function families ------------------------------------------------- #

    def _check_function_family(self, project: Project, path: str, registry: str,
                               extras: tuple[str, ...]) -> Iterator[Finding]:
        source = project.get(path)
        if source is None or source.tree is None:
            return
        table: ast.Dict | None = None
        table_line = 1
        for node in source.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == registry \
                        and isinstance(value, ast.Dict):
                    table = value
                    table_line = node.lineno
        if table is None:
            yield Finding(self.name, source.relative, 1,
                          f"registered kernel table `{registry}` not found "
                          "(or is no longer a dict literal)")
            return
        member_names = [value.id for value in table.values
                        if isinstance(value, ast.Name)]
        if len(member_names) != len(table.values):
            yield Finding(self.name, source.relative, table_line,
                          f"`{registry}` entries must be plain function names "
                          "so parity is statically checkable")
        functions = {node.name: node for node in source.tree.body
                     if isinstance(node, ast.FunctionDef)}
        family = list(dict.fromkeys(member_names + list(extras)))
        reference_sig: list[tuple[str, str | None]] | None = None
        reference_name = ""
        for member in family:
            func = functions.get(member)
            if func is None:
                yield Finding(self.name, source.relative, table_line,
                              f"`{registry}` references `{member}`, which is "
                              "not a module-level function here")
                continue
            sig = _signature(func)
            if reference_sig is None:
                reference_sig, reference_name = sig, member
            elif sig != reference_sig:
                yield Finding(
                    self.name, source.relative, func.lineno,
                    f"kernel `{member}{tuple(n for n, _ in sig)}` does not "
                    f"match the family signature of `{reference_name}"
                    f"{tuple(n for n, _ in reference_sig)}`",
                )

    # -- selector classes -------------------------------------------------- #

    def _check_selectors(self, project: Project,
                         group: tuple[tuple[str, str], ...],
                         keywords: tuple[str, ...]) -> Iterator[Finding]:
        inits: list[tuple[SourceFile, str, dict[str, str | None], int]] = []
        for path, class_name in group:
            source = project.get(path)
            if source is None:
                continue
            cls = _find_class(source, class_name)
            if cls is None:
                yield Finding(self.name, source.relative, 1,
                              f"registered selector class `{class_name}` not found")
                continue
            init = _methods(cls).get("__init__")
            if init is None:
                yield Finding(self.name, source.relative, cls.lineno,
                              f"`{class_name}` has no explicit __init__ to "
                              "carry the engine selector keywords")
                continue
            inits.append((source, class_name,
                          dict(_signature(init)), init.lineno))
        if len(inits) < 2:
            return
        ref_source, ref_class, ref_params, _ = inits[0]
        for source, class_name, params, line in inits[1:]:
            for keyword in keywords:
                if keyword not in ref_params or keyword not in params:
                    missing = class_name if keyword not in params else ref_class
                    yield Finding(
                        self.name, source.relative, line,
                        f"selector keyword `{keyword}=` missing from "
                        f"`{missing}.__init__` (the engine surface must stay "
                        "uniform across the coding layer)",
                    )
                elif ref_params[keyword] != params[keyword]:
                    yield Finding(
                        self.name, source.relative, line,
                        f"`{class_name}.__init__` default for `{keyword}=` "
                        f"({params[keyword]!r}) drifted from `{ref_class}`'s "
                        f"({ref_params[keyword]!r})",
                    )
