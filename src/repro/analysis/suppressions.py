"""SUP001: suppressions must suppress something (ruff's ``unused-noqa``).

A stale ``# repro: allow-<RULE>`` comment is worse than noise: it
documents a violation that no longer exists, and it will silently swallow
the *next* genuine finding that lands on its line.  The audit itself
lives in :func:`repro.analysis.framework.run_rules` — only the framework
knows which suppressions actually absorbed a finding during a run — so
this rule class is registered for the CLI surface (``--list-rules``,
``--select``) and contributes no findings of its own.

Scoping note: a suppression is audited only against rules that ran in
the same invocation, so ``--select DET001`` never flags a ``PERF001``
comment it had no way to vindicate.  ``--select SUP001`` alone audits
against every registered rule.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    register,
)


@register
class UnusedSuppression(Rule):
    """SUP001: every ``# repro: allow-<RULE>`` must suppress a finding."""

    name = "SUP001"
    description = ("every `# repro: allow-<RULE>` comment must suppress an "
                   "actual finding of a rule that ran (stale suppressions "
                   "hide the next real violation)")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        return ()  # the audit runs inside framework.run_rules
